//! The CaSync plan verifier.
//!
//! Builds a happens-before relation over a [`TaskGraph`] (transitive
//! closure of the dependency edges) plus the fabric's send/recv
//! pairing, then statically replays the interpreter's value-flow
//! rules over every task. Anything the reference interpreter or the
//! concurrent thread engine could trip over at run time — unmatched
//! sends, payloads of the wrong kind, reads of chunks another task
//! may still be writing — becomes a [`Diagnostic`] here, before any
//! engine runs.
//!
//! Beyond single-iteration verification, [`compose`] unrolls a plan
//! into `min(window + 2, iterations)` overlapping pipeline instances
//! joined by per-(node, instance) admission barriers — the static
//! mirror of the runtime's window-`k` admission rule — and
//! [`verify_pipelined`] checks the properties that only exist across
//! iterations: chunk-buffer slot reuse races (`P017`), unbounded
//! channel queue growth (`P018`), and out-of-order admission
//! (`P019`).
//!
//! The diagnostic catalogue (`P001`–`P019`) is documented on
//! [`Code`] and in `DESIGN.md`.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use hipress_core::graph::{task, ChunkId, Primitive, SendSrc, TaskGraph, TaskId, TaskNode};

use crate::diag::{Code, Diagnostic, Report, Site};

/// Graphs beyond this many tasks only get the structural checks; the
/// happens-before closure is quadratic in memory (n²/8 bytes) and the
/// deep checks are quadratic per cell/channel.
pub const DEEP_ANALYSIS_LIMIT: usize = 20_000;

/// A chunk replica: one node's accumulator for one gradient chunk.
type Cell = (usize, u32, u32);

/// What a task does to its cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Access {
    Read,
    Write,
}

/// What travels over a wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Raw,
    Compressed,
}

/// Verifies a task graph against a cluster of `cluster_nodes` nodes.
///
/// Runs every check that does not require dependency edges to be
/// well-formed first; if edges are broken (orphan deps, cycles) the
/// deep happens-before phase is skipped — its diagnostics would be
/// noise on top of the structural ones.
pub fn verify(graph: &TaskGraph, cluster_nodes: usize) -> Report {
    let mut report = Report::new();
    let deps_ok = structural(graph, cluster_nodes, &mut report);
    if !deps_ok {
        return report;
    }
    let Some(topo) = topo_or_cycle(graph, &mut report) else {
        return report;
    };
    if graph.len() > DEEP_ANALYSIS_LIMIT {
        report.push(Diagnostic::new(
            Code::AnalysisSkipped,
            Site::Graph,
            format!(
                "graph has {} tasks (> {DEEP_ANALYSIS_LIMIT}); deep analysis skipped",
                graph.len()
            ),
        ));
        return report;
    }
    let hb = Closure::build(graph, &topo);
    let pairing = Pairing::build(graph);
    value_sources(graph, &hb, &pairing, &mut report);
    races(graph, &hb, &mut report);
    fifo_order(graph, &hb, &pairing, &mut report);
    completion(graph, &hb, &mut report);
    chunk_sizes(graph, &mut report);
    report
}

/// Short human label for a task: `Send(node 2, g0.p1)`.
fn describe(t: &TaskNode) -> String {
    format!(
        "{:?}(node {}, g{}.p{})",
        t.prim, t.node, t.chunk.grad, t.chunk.part
    )
}

/// Node bounds, dependency sanity, peer sanity, send/recv pairing.
/// Returns false when dependency edges themselves are broken.
fn structural(graph: &TaskGraph, cluster_nodes: usize, report: &mut Report) -> bool {
    let n = graph.len();
    let mut deps_ok = true;
    for t in graph.tasks() {
        if t.node >= cluster_nodes {
            report.push(Diagnostic::new(
                Code::UnknownNode,
                Site::Task(t.id),
                format!(
                    "{} placed on node {} of a {cluster_nodes}-node cluster",
                    describe(t),
                    t.node
                ),
            ));
        }
        for d in &t.deps {
            if d.0 as usize >= n || *d == t.id {
                deps_ok = false;
                report.push(Diagnostic::new(
                    Code::OrphanDep,
                    Site::Task(t.id),
                    format!(
                        "{} depends on nonexistent or self task {}",
                        describe(t),
                        d.0
                    ),
                ));
            }
        }
        match t.prim {
            Primitive::Send | Primitive::Recv => match t.peer {
                None => report.push(Diagnostic::new(
                    Code::BadPeer,
                    Site::Task(t.id),
                    format!("{} lacks a peer", describe(t)),
                )),
                Some(p) if p == t.node || p >= cluster_nodes => report.push(Diagnostic::new(
                    Code::BadPeer,
                    Site::Task(t.id),
                    format!("{} has bad peer {p}", describe(t)),
                )),
                Some(_) => {}
            },
            _ => {}
        }
    }
    if !deps_ok {
        return false;
    }
    for t in graph.tasks() {
        if t.prim != Primitive::Recv {
            continue;
        }
        let sends: Vec<&TaskNode> = t
            .deps
            .iter()
            .map(|d| graph.task(*d))
            .filter(|d| d.prim == Primitive::Send)
            .collect();
        match sends.as_slice() {
            [s] => {
                if t.peer.is_some() && (s.node != t.peer.unwrap() || s.peer != Some(t.node)) {
                    report.push(Diagnostic::new(
                        Code::UnpairedRecv,
                        Site::Tasks(t.id, s.id),
                        format!(
                            "{} expects its payload from node {:?} but is wired to {} ({} -> {:?})",
                            describe(t),
                            t.peer,
                            describe(s),
                            s.node,
                            s.peer
                        ),
                    ));
                } else if s.chunk != t.chunk || s.bytes_wire != t.bytes_wire {
                    report.push(Diagnostic::new(
                        Code::PayloadMismatch,
                        Site::Tasks(t.id, s.id),
                        format!(
                            "{} (g{}.p{}, {} wire bytes) disagrees with {} (g{}.p{}, {} wire bytes)",
                            describe(t),
                            t.chunk.grad,
                            t.chunk.part,
                            t.bytes_wire,
                            describe(s),
                            s.chunk.grad,
                            s.chunk.part,
                            s.bytes_wire
                        ),
                    ));
                }
            }
            _ => report.push(Diagnostic::new(
                Code::UnpairedRecv,
                Site::Task(t.id),
                format!(
                    "{} depends on {} sends (want exactly 1)",
                    describe(t),
                    sends.len()
                ),
            )),
        }
    }
    true
}

/// Kahn order, or a cycle diagnostic.
fn topo_or_cycle(graph: &TaskGraph, report: &mut Report) -> Option<Vec<TaskId>> {
    let n = graph.len();
    let mut indeg = vec![0usize; n];
    let mut out: Vec<Vec<u32>> = vec![Vec::new(); n];
    for t in graph.tasks() {
        for d in &t.deps {
            indeg[t.id.0 as usize] += 1;
            out[d.0 as usize].push(t.id.0);
        }
    }
    let mut q: VecDeque<u32> = (0..n as u32).filter(|&i| indeg[i as usize] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(i) = q.pop_front() {
        order.push(TaskId(i));
        for &s in &out[i as usize] {
            indeg[s as usize] -= 1;
            if indeg[s as usize] == 0 {
                q.push_back(s);
            }
        }
    }
    if order.len() != n {
        let stuck = (0..n).filter(|&i| indeg[i] > 0).count();
        let witness = (0..n).find(|&i| indeg[i] > 0).unwrap();
        report.push(Diagnostic::new(
            Code::DependencyCycle,
            Site::Task(TaskId(witness as u32)),
            format!(
                "dependency cycle: {stuck} tasks can never run, e.g. {}",
                describe(graph.task(TaskId(witness as u32)))
            ),
        ));
        return None;
    }
    Some(order)
}

/// Transitive closure of the dependency relation as per-task ancestor
/// bitsets.
struct Closure {
    words: usize,
    rows: Vec<u64>,
}

impl Closure {
    fn build(graph: &TaskGraph, topo: &[TaskId]) -> Self {
        let n = graph.len();
        let words = n.div_ceil(64);
        let mut rows = vec![0u64; n * words];
        for &id in topo {
            let i = id.0 as usize;
            for d in &graph.task(id).deps {
                let di = d.0 as usize;
                let (dst, src) = split_rows(&mut rows, i, di, words);
                for (a, b) in dst.iter_mut().zip(src) {
                    *a |= *b;
                }
                rows[i * words + di / 64] |= 1 << (di % 64);
            }
        }
        Self { words, rows }
    }

    /// True when `anc` happens strictly before `desc` (is an
    /// ancestor).
    fn before(&self, anc: TaskId, desc: TaskId) -> bool {
        let (a, d) = (anc.0 as usize, desc.0 as usize);
        self.rows[d * self.words + a / 64] >> (a % 64) & 1 == 1
    }

    /// True when the two tasks are ordered either way.
    fn ordered(&self, a: TaskId, b: TaskId) -> bool {
        self.before(a, b) || self.before(b, a)
    }
}

/// Borrows row `i` mutably and row `j` immutably from the flat bitset.
fn split_rows(rows: &mut [u64], i: usize, j: usize, words: usize) -> (&mut [u64], &[u64]) {
    debug_assert_ne!(i, j);
    if i < j {
        let (lo, hi) = rows.split_at_mut(j * words);
        (&mut lo[i * words..(i + 1) * words], &hi[..words])
    } else {
        let (lo, hi) = rows.split_at_mut(i * words);
        (&mut hi[..words], &lo[j * words..(j + 1) * words])
    }
}

/// The fabric view: which recvs consume which sends.
struct Pairing {
    /// send id → recvs listing it as a direct dependency.
    consumers: HashMap<TaskId, Vec<TaskId>>,
}

impl Pairing {
    fn build(graph: &TaskGraph) -> Self {
        let mut consumers: HashMap<TaskId, Vec<TaskId>> = HashMap::new();
        for t in graph.tasks() {
            if t.prim != Primitive::Recv {
                continue;
            }
            for d in &t.deps {
                if graph.task(*d).prim == Primitive::Send {
                    consumers.entry(*d).or_default().push(t.id);
                }
            }
        }
        Self { consumers }
    }

    /// The recv consuming this send, when unique.
    fn recv_of(&self, send: TaskId) -> Option<TaskId> {
        match self.consumers.get(&send).map(Vec::as_slice) {
            Some([r]) => Some(*r),
            _ => None,
        }
    }
}

/// Mirrors the interpreter's `find_dep`: depth-first over direct
/// dependencies, looking through `Barrier` pseudo-tasks only.
fn find_dep(graph: &TaskGraph, t: &TaskNode, want: Primitive) -> Option<TaskId> {
    let mut stack: Vec<TaskId> = t.deps.clone();
    while let Some(d) = stack.pop() {
        let dt = graph.task(d);
        if dt.prim == want {
            return Some(d);
        }
        if dt.prim == Primitive::Barrier {
            stack.extend(dt.deps.iter().copied());
        }
    }
    None
}

/// The payload kind a send puts on the wire (`None` when the forward
/// chain is broken — reported elsewhere).
fn send_kind(graph: &TaskGraph, send: TaskId) -> Option<Kind> {
    let t = graph.task(send);
    match t.send_src {
        SendSrc::Raw => Some(Kind::Raw),
        SendSrc::Encoded => Some(Kind::Compressed),
        SendSrc::Forward => {
            let recv = find_dep(graph, t, Primitive::Recv)?;
            let upstream = graph
                .task(recv)
                .deps
                .iter()
                .copied()
                .find(|d| graph.task(*d).prim == Primitive::Send)?;
            send_kind(graph, upstream)
        }
    }
}

/// The payload kind a recv delivers.
fn recv_kind(graph: &TaskGraph, recv: TaskId) -> Option<Kind> {
    let send = graph
        .task(recv)
        .deps
        .iter()
        .copied()
        .find(|d| graph.task(*d).prim == Primitive::Send)?;
    send_kind(graph, send)
}

/// Sources per cell, for initialized-before-read checks.
fn cell_sources(graph: &TaskGraph) -> HashMap<Cell, Vec<TaskId>> {
    let mut m: HashMap<Cell, Vec<TaskId>> = HashMap::new();
    for t in graph.tasks() {
        if t.prim == Primitive::Source {
            m.entry((t.node, t.chunk.grad, t.chunk.part))
                .or_default()
                .push(t.id);
        }
    }
    m
}

/// Statically replays the interpreter's per-primitive value-source
/// resolution: every task must be able to find the data it consumes,
/// of the kind it expects (`P008`, `P009`, `P007`).
fn value_sources(graph: &TaskGraph, hb: &Closure, pairing: &Pairing, report: &mut Report) {
    let sources = cell_sources(graph);
    let initialized = |t: &TaskNode| {
        sources
            .get(&(t.node, t.chunk.grad, t.chunk.part))
            .is_some_and(|ss| ss.iter().any(|s| hb.before(*s, t.id)))
    };
    let missing = |report: &mut Report, t: &TaskNode, what: &str| {
        report.push(Diagnostic::new(
            Code::MissingValueSource,
            Site::Task(t.id),
            format!("{}: {what}", describe(t)),
        ));
    };
    for t in graph.tasks() {
        match t.prim {
            Primitive::Encode => {
                if !initialized(t) {
                    missing(report, t, "encodes a chunk no Source initialized before it");
                }
            }
            Primitive::Decode => match find_dep(graph, t, Primitive::Recv) {
                None => missing(report, t, "decode without a recv dependency"),
                Some(r) => {
                    if recv_kind(graph, r) == Some(Kind::Raw) {
                        report.push(Diagnostic::new(
                            Code::PayloadKindMismatch,
                            Site::Tasks(t.id, r),
                            format!("{} decodes a raw payload", describe(t)),
                        ));
                    }
                }
            },
            Primitive::Merge => {
                if !initialized(t) {
                    missing(
                        report,
                        t,
                        "merges into an accumulator no Source initialized",
                    );
                }
                if find_dep(graph, t, Primitive::Decode).is_none() {
                    match find_dep(graph, t, Primitive::Recv) {
                        None => missing(report, t, "merge with nothing to merge"),
                        Some(r) => {
                            if recv_kind(graph, r) == Some(Kind::Compressed) {
                                report.push(Diagnostic::new(
                                    Code::PayloadKindMismatch,
                                    Site::Tasks(t.id, r),
                                    format!(
                                        "{} raw-merges a compressed payload (missing decode)",
                                        describe(t)
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
            Primitive::Send => {
                match t.send_src {
                    SendSrc::Raw => {
                        if !initialized(t) {
                            missing(report, t, "raw send of a chunk no Source initialized");
                        }
                    }
                    SendSrc::Encoded => {
                        if find_dep(graph, t, Primitive::Encode).is_none() {
                            missing(report, t, "encoded send without an encode dependency");
                        }
                    }
                    SendSrc::Forward => {
                        if find_dep(graph, t, Primitive::Recv).is_none() {
                            missing(report, t, "forward send without a recv dependency");
                        }
                    }
                }
                if !pairing.consumers.contains_key(&t.id) {
                    report.push(Diagnostic::new(
                        Code::UnconsumedSend,
                        Site::Task(t.id),
                        format!("{} is never consumed by a recv", describe(t)),
                    ));
                }
            }
            Primitive::Update => {
                if !sources.contains_key(&(t.node, t.chunk.grad, t.chunk.part)) {
                    missing(report, t, "commits a chunk replica that has no Source");
                } else if find_dep(graph, t, Primitive::Decode).is_some() {
                    // Installs the decoded payload.
                } else if let Some(r) = find_dep(graph, t, Primitive::Recv) {
                    if recv_kind(graph, r) == Some(Kind::Compressed) {
                        report.push(Diagnostic::new(
                            Code::PayloadKindMismatch,
                            Site::Tasks(t.id, r),
                            format!(
                                "{} raw-installs a compressed payload (missing decode)",
                                describe(t)
                            ),
                        ));
                    }
                } else if find_dep(graph, t, Primitive::Encode).is_some() {
                    // Installs the decode∘encode reconstruction.
                } else if !initialized(t) {
                    missing(report, t, "commits an accumulator no Source initialized");
                }
            }
            _ => {}
        }
    }
}

/// How a task touches its cell, if at all. A foreign-valued `Update`
/// (one that installs a decode/recv/encode product) overwrites the
/// accumulator; a fallback `Update` re-installs the accumulator's own
/// value and is a read.
fn access_of(graph: &TaskGraph, t: &TaskNode) -> Option<Access> {
    match t.prim {
        Primitive::Source => Some(Access::Write),
        Primitive::Encode => Some(Access::Read),
        Primitive::Merge => Some(Access::Write),
        Primitive::Send if t.send_src == SendSrc::Raw => Some(Access::Read),
        Primitive::Update => {
            let foreign = find_dep(graph, t, Primitive::Decode).is_some()
                || find_dep(graph, t, Primitive::Recv).is_some()
                || find_dep(graph, t, Primitive::Encode).is_some();
            Some(if foreign { Access::Write } else { Access::Read })
        }
        _ => None,
    }
}

/// Unordered read/write and write/write pairs on one chunk replica
/// (`P010`, `P011`) — the PR-1 dissemination bug class.
fn races(graph: &TaskGraph, hb: &Closure, report: &mut Report) {
    let mut cells: BTreeMap<Cell, Vec<(TaskId, Access)>> = BTreeMap::new();
    for t in graph.tasks() {
        if let Some(a) = access_of(graph, t) {
            cells
                .entry((t.node, t.chunk.grad, t.chunk.part))
                .or_default()
                .push((t.id, a));
        }
    }
    for ((node, grad, part), accs) in cells {
        for (i, &(a, ka)) in accs.iter().enumerate() {
            for &(b, kb) in &accs[i + 1..] {
                if ka == Access::Read && kb == Access::Read {
                    continue;
                }
                if hb.ordered(a, b) {
                    continue;
                }
                let (code, what) = if ka == Access::Write && kb == Access::Write {
                    (Code::DoubleWrite, "both write")
                } else {
                    (Code::DataRace, "read and write")
                };
                report.push(Diagnostic::new(
                    code,
                    Site::Tasks(a, b),
                    format!(
                        "{} and {} {what} node {node}'s replica of g{grad}.p{part} \
                         with no happens-before edge",
                        describe(graph.task(a)),
                        describe(graph.task(b)),
                    ),
                ));
            }
        }
    }
}

/// Per-channel FIFO consistency (`P012`): if two sends on one
/// `from → to` channel are ordered, their receives must complete in
/// the same order, or a FIFO fabric wedges/crosses payloads.
fn fifo_order(graph: &TaskGraph, hb: &Closure, pairing: &Pairing, report: &mut Report) {
    let mut channels: BTreeMap<(usize, usize), Vec<TaskId>> = BTreeMap::new();
    for t in graph.tasks() {
        if t.prim == Primitive::Send {
            if let Some(p) = t.peer {
                channels.entry((t.node, p)).or_default().push(t.id);
            }
        }
    }
    for ((from, to), sends) in channels {
        for (i, &s1) in sends.iter().enumerate() {
            let Some(r1) = pairing.recv_of(s1) else {
                continue;
            };
            for &s2 in &sends[i + 1..] {
                let Some(r2) = pairing.recv_of(s2) else {
                    continue;
                };
                let inverted = (hb.before(s1, s2) && hb.before(r2, r1))
                    || (hb.before(s2, s1) && hb.before(r1, r2));
                if inverted {
                    report.push(Diagnostic::new(
                        Code::FifoInversion,
                        Site::Tasks(s1, s2),
                        format!(
                            "sends {} and {} on channel {from} -> {to} are ordered one way \
                             but their recvs are consumed in the opposite order",
                            s1.0, s2.0
                        ),
                    ));
                }
            }
        }
    }
}

/// Every initialized nonzero chunk replica must be committed by an
/// `Update` (`P013`), and every such `Update` must causally follow
/// every node's `Source` for that chunk (`P014`) — otherwise it
/// commits a partial aggregate.
fn completion(graph: &TaskGraph, hb: &Closure, report: &mut Report) {
    let mut chunk_sources: BTreeMap<(u32, u32), Vec<TaskId>> = BTreeMap::new();
    let mut nonzero: BTreeMap<(u32, u32), bool> = BTreeMap::new();
    for t in graph.tasks() {
        if t.prim == Primitive::Source {
            chunk_sources
                .entry((t.chunk.grad, t.chunk.part))
                .or_default()
                .push(t.id);
            *nonzero.entry((t.chunk.grad, t.chunk.part)).or_default() |= t.bytes_raw > 0;
        }
    }
    let mut updates: BTreeMap<Cell, Vec<TaskId>> = BTreeMap::new();
    for t in graph.tasks() {
        if t.prim == Primitive::Update {
            updates
                .entry((t.node, t.chunk.grad, t.chunk.part))
                .or_default()
                .push(t.id);
        }
    }
    for (&(grad, part), srcs) in &chunk_sources {
        if !nonzero[&(grad, part)] {
            continue;
        }
        for &s in srcs {
            let node = graph.task(s).node;
            match updates.get(&(node, grad, part)) {
                None => report.push(Diagnostic::new(
                    Code::MissingCompletion,
                    Site::Task(s),
                    format!(
                        "node {node}'s replica of g{grad}.p{part} is initialized \
                         but never committed by an Update"
                    ),
                )),
                Some(ups) => {
                    for &u in ups {
                        if let Some(&miss) = srcs.iter().find(|&&other| !hb.before(other, u)) {
                            report.push(Diagnostic::new(
                                Code::IncompleteAggregation,
                                Site::Tasks(u, miss),
                                format!(
                                    "{} commits g{grad}.p{part} without node {}'s \
                                     contribution (Source {} is not an ancestor)",
                                    describe(graph.task(u)),
                                    graph.task(miss).node,
                                    miss.0
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }
}

/// All non-barrier tasks touching one chunk must agree on its raw
/// size (`P015`).
fn chunk_sizes(graph: &TaskGraph, report: &mut Report) {
    let mut sizes: BTreeMap<(u32, u32), Vec<(u64, TaskId)>> = BTreeMap::new();
    for t in graph.tasks() {
        if t.prim != Primitive::Barrier {
            sizes
                .entry((t.chunk.grad, t.chunk.part))
                .or_default()
                .push((t.bytes_raw, t.id));
        }
    }
    for ((grad, part), mut seen) in sizes {
        seen.sort_unstable();
        seen.dedup_by_key(|(b, _)| *b);
        if seen.len() > 1 {
            report.push(Diagnostic::new(
                Code::ChunkSizeMismatch,
                Site::Tasks(seen[0].1, seen[seen.len() - 1].1),
                format!(
                    "tasks on g{grad}.p{part} disagree on its raw size: {:?}",
                    seen.iter().map(|(b, _)| *b).collect::<Vec<_>>()
                ),
            ));
        }
    }
}

/// How a plan is pipelined: how many iterations stream through, how
/// many may overlap, and how many buffer generations each chunk
/// replica cycles through. The runtime allocates fresh per-iteration
/// state (`slots` effectively unbounded); an engine that pools
/// buffers sets `slots` to its pool depth, and the composition then
/// proves the window never lets a reusing iteration overlap the
/// owner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineSpec {
    /// Total iterations the plan will stream (≥ 1).
    pub iterations: u32,
    /// Bound on concurrently in-flight iterations (≥ 1; 1 = serial).
    pub window: u32,
    /// Buffer generations per chunk replica (≥ 1): iteration `j`
    /// reuses iteration `j - slots`'s buffers.
    pub slots: u32,
}

impl PipelineSpec {
    /// A spec that cannot race on buffers: one more generation than
    /// the window ever holds in flight.
    pub fn unshared(iterations: u32, window: u32) -> Self {
        Self {
            iterations,
            window,
            slots: window + 1,
        }
    }
}

/// A pipelined unrolling of a base plan: `instances` copies of the
/// graph plus admission barriers, with enough provenance to check
/// cross-iteration properties.
#[derive(Debug, Clone)]
pub struct Composed {
    /// The unrolled graph (instance copies, then admission barriers
    /// interleaved per instance).
    pub graph: TaskGraph,
    /// The spec this was composed under.
    pub spec: PipelineSpec,
    /// How many instances were materialized:
    /// `min(window + 2, iterations)` — `window + 1` exhibits every
    /// overlap the admission rule permits, and one more instance
    /// materializes two consecutive barriers per node so the
    /// admission *chain* (and its ordering properties) is visible.
    pub instances: u32,
    /// Each task's iteration index, parallel to the graph.
    pub instance: Vec<u32>,
    /// `(instance, node)` → that instance's admission barrier on that
    /// node (instances below `window` start unconditionally and have
    /// none).
    pub admissions: BTreeMap<(u32, usize), TaskId>,
}

/// Unrolls `base` into overlapping pipeline instances.
///
/// Mirrors the runtime's admission rule (`runtime::pipeline`):
/// iteration `j` is admitted on a node once iteration `j - window`
/// has completed *locally* — modelled as a `Barrier` depending on
/// every task of instance `j - window` on that node, gating every
/// instance-`j` task on the node that has no same-node dependency
/// (tasks with local deps are gated transitively; tasks fed only by
/// remote sends model the runtime's stash-until-admission). Barriers
/// chain per node, because the runtime admits in order.
///
/// # Panics
///
/// When any spec field is zero — the runtime rejects those configs
/// before building anything.
pub fn compose(base: &TaskGraph, spec: &PipelineSpec) -> Composed {
    assert!(
        spec.iterations >= 1 && spec.window >= 1 && spec.slots >= 1,
        "pipeline spec fields must all be >= 1, got {spec:?}"
    );
    let instances = spec.window.saturating_add(2).min(spec.iterations);
    let nodes: BTreeSet<usize> = base.tasks().iter().map(|t| t.node).collect();
    let mut graph = TaskGraph::new();
    let mut instance = Vec::new();
    let mut admissions: BTreeMap<(u32, usize), TaskId> = BTreeMap::new();
    // Start ids of each instance's copies, so deps can be remapped.
    let mut offsets = Vec::with_capacity(instances as usize);
    for j in 0..instances {
        // Admission barriers first (they gate this instance's tasks,
        // and only reference earlier instances — no forward edges).
        if j >= spec.window {
            let prev = j - spec.window;
            for &p in &nodes {
                let mut deps: Vec<TaskId> = base
                    .tasks()
                    .iter()
                    .filter(|t| t.node == p)
                    .map(|t| TaskId(offsets[prev as usize] + t.id.0))
                    .collect();
                if let Some(&chain) = admissions.get(&(j - 1, p)) {
                    deps.push(chain);
                }
                let id = graph.add(TaskNode {
                    deps,
                    ..task(p, Primitive::Barrier, ChunkId { grad: 0, part: 0 })
                });
                instance.push(j);
                admissions.insert((j, p), id);
            }
        }
        let offset = graph.len() as u32;
        offsets.push(offset);
        for t in base.tasks() {
            let mut copy = t.clone();
            copy.deps = t.deps.iter().map(|d| TaskId(offset + d.0)).collect();
            let local_dep = t.deps.iter().any(|d| base.task(*d).node == t.node);
            if !local_dep {
                if let Some(&adm) = admissions.get(&(j, t.node)) {
                    copy.deps.push(adm);
                }
            }
            graph.add(copy);
            instance.push(j);
        }
    }
    Composed {
        graph,
        spec: *spec,
        instances,
        instance,
        admissions,
    }
}

/// Verifies a plan under pipelined execution: the single-iteration
/// checks on the base graph, then — if the base is error-free — the
/// cross-iteration checks on its [`compose`]d unrolling (`P017`,
/// `P018`, `P019`). A broken base short-circuits: composing it would
/// only repeat each defect `window + 1` times.
pub fn verify_pipelined(base: &TaskGraph, cluster_nodes: usize, spec: &PipelineSpec) -> Report {
    let mut report = verify(base, cluster_nodes);
    if report.error_count() > 0 {
        return report;
    }
    let composed = compose(base, spec);
    verify_composed_into(&composed, &mut report);
    report
}

/// The cross-iteration checks alone, on an already-composed (and
/// possibly deliberately tampered) unrolling.
pub fn verify_composed(composed: &Composed) -> Report {
    let mut report = Report::new();
    verify_composed_into(composed, &mut report);
    report
}

fn verify_composed_into(c: &Composed, report: &mut Report) {
    let Some(topo) = topo_or_cycle(&c.graph, report) else {
        return;
    };
    if c.graph.len() > DEEP_ANALYSIS_LIMIT {
        report.push(Diagnostic::new(
            Code::AnalysisSkipped,
            Site::Graph,
            format!(
                "composed pipeline has {} tasks (> {DEEP_ANALYSIS_LIMIT}); \
                 cross-iteration analysis skipped",
                c.graph.len()
            ),
        ));
        return;
    }
    let hb = Closure::build(&c.graph, &topo);
    let pairing = Pairing::build(&c.graph);
    cross_iter_races(c, &hb, report);
    queue_growth(c, &hb, &pairing, report);
    admission_order(c, &hb, report);
}

/// `P017`: instances `j` and `j + slots` write the same physical
/// chunk buffer; unless every access pair across them is ordered,
/// the reusing iteration scribbles over one still in flight. With
/// `slots > window` the admission chain orders them by construction;
/// the race class only opens up when `slots <= window` — i.e. never
/// at `window = 1` with per-window buffers, which is why it is a
/// genuinely pipelined defect.
fn cross_iter_races(c: &Composed, hb: &Closure, report: &mut Report) {
    let mut cells: BTreeMap<Cell, Vec<(u32, TaskId, Access)>> = BTreeMap::new();
    for t in c.graph.tasks() {
        if let Some(a) = access_of(&c.graph, t) {
            cells
                .entry((t.node, t.chunk.grad, t.chunk.part))
                .or_default()
                .push((c.instance[t.id.0 as usize], t.id, a));
        }
    }
    for ((node, grad, part), accs) in cells {
        'pair: for (i, &(j1, a, ka)) in accs.iter().enumerate() {
            for &(j2, b, kb) in &accs[i + 1..] {
                if j1 == j2 || (j2.abs_diff(j1)) % c.spec.slots != 0 {
                    continue;
                }
                if ka == Access::Read && kb == Access::Read {
                    continue;
                }
                if hb.ordered(a, b) {
                    continue;
                }
                report.push(Diagnostic::new(
                    Code::CrossIterRace,
                    Site::Tasks(a, b),
                    format!(
                        "iterations {j1} and {j2} share buffer slot {} of node \
                         {node}'s g{grad}.p{part} ({} and {}) with no \
                         happens-before edge — window {} admits both at once",
                        j1 % c.spec.slots,
                        describe(c.graph.task(a)),
                        describe(c.graph.task(b)),
                        c.spec.window,
                    ),
                ));
                break 'pair; // One witness per cell.
            }
        }
    }
}

/// `P018`: every channel's sends must be gated — at *some* lag — by
/// the consumption of their older counterparts, or the receive queue
/// (the runtime's admission stash) grows with the iteration count,
/// not the window.
///
/// Admission is per-node-local, so consumption may legitimately lag
/// production by more than `window` across multi-hop graphs (a PS
/// worker's next push is ordered after the aggregator consumed its
/// reply only two admissions later). The sound bound the unrolling
/// can witness is its own horizon: the oldest and newest instances
/// sit `window + 1` apart — one more than admission ever holds in
/// flight — so a send still not ordered after the consumption that
/// far back is not gated at any lag. Unrollings shorter than the
/// window (`iterations <= window + 1`) cannot outrun their own
/// horizon and are vacuously bounded.
fn queue_growth(c: &Composed, hb: &Closure, pairing: &Pairing, report: &mut Report) {
    let lag = c.instances - 1;
    if lag <= c.spec.window {
        return;
    }
    let mut channels: BTreeMap<(usize, usize), BTreeMap<u32, Vec<TaskId>>> = BTreeMap::new();
    for t in c.graph.tasks() {
        if t.prim == Primitive::Send {
            if let Some(p) = t.peer {
                channels
                    .entry((t.node, p))
                    .or_default()
                    .entry(c.instance[t.id.0 as usize])
                    .or_default()
                    .push(t.id);
            }
        }
    }
    for ((from, to), by_instance) in channels {
        // Instance copies preserve task order, so the k-th send of the
        // first and last instances are the same logical transfer.
        let (Some(first), Some(last)) = (by_instance.get(&0), by_instance.get(&lag)) else {
            continue;
        };
        for (&s1, &s2) in first.iter().zip(last) {
            let Some(r1) = pairing.recv_of(s1) else {
                continue;
            };
            if !hb.before(r1, s2) {
                report.push(Diagnostic::new(
                    Code::QueueGrowth,
                    Site::Tasks(s1, s2),
                    format!(
                        "channel {from} -> {to}: iteration {lag}'s {} can \
                         transmit before iteration 0's payload is consumed \
                         — no admission lag bounds this channel, so the \
                         receive queue grows with the iteration count",
                        describe(c.graph.task(s2)),
                    ),
                ));
                break; // One witness per channel.
            }
        }
    }
}

/// `P019`: each node must admit iterations in ascending order — the
/// runtime increments `next_admit` monotonically, so a composed plan
/// whose admission barriers are inverted or unordered on some node
/// does not model any execution the runtime can produce.
fn admission_order(c: &Composed, hb: &Closure, report: &mut Report) {
    let mut per_node: BTreeMap<usize, Vec<(u32, TaskId)>> = BTreeMap::new();
    for (&(j, p), &id) in &c.admissions {
        per_node.entry(p).or_default().push((j, id));
    }
    for (node, mut adms) in per_node {
        adms.sort_unstable();
        for w in adms.windows(2) {
            let ((j1, a), (j2, b)) = (w[0], w[1]);
            if !hb.before(a, b) {
                report.push(Diagnostic::new(
                    Code::AdmissionInversion,
                    Site::Tasks(a, b),
                    format!(
                        "node {node} does not admit iteration {j1} before \
                         iteration {j2}; the runtime admits strictly in order"
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipress_core::graph::{task, ChunkId, TaskGraph, TaskNode};

    fn chunk() -> ChunkId {
        ChunkId { grad: 0, part: 0 }
    }

    /// A minimal clean two-node exchange: 0 sends its raw chunk, 1
    /// merges it and both commit.
    fn clean_pair() -> TaskGraph {
        let mut g = TaskGraph::new();
        let s0 = g.add(TaskNode {
            bytes_raw: 100,
            bytes_wire: 100,
            ..task(0, Primitive::Source, chunk())
        });
        let s1 = g.add(TaskNode {
            bytes_raw: 100,
            bytes_wire: 100,
            ..task(1, Primitive::Source, chunk())
        });
        let send = g.add(TaskNode {
            peer: Some(1),
            bytes_raw: 100,
            bytes_wire: 100,
            deps: vec![s0],
            ..task(0, Primitive::Send, chunk())
        });
        let recv = g.add(TaskNode {
            peer: Some(0),
            bytes_raw: 100,
            bytes_wire: 100,
            deps: vec![send],
            ..task(1, Primitive::Recv, chunk())
        });
        let merge = g.add(TaskNode {
            bytes_raw: 100,
            bytes_wire: 100,
            deps: vec![recv, s1],
            ..task(1, Primitive::Merge, chunk())
        });
        let back = g.add(TaskNode {
            peer: Some(0),
            bytes_raw: 100,
            bytes_wire: 100,
            deps: vec![merge],
            ..task(1, Primitive::Send, chunk())
        });
        let recv0 = g.add(TaskNode {
            peer: Some(1),
            bytes_raw: 100,
            bytes_wire: 100,
            deps: vec![back],
            ..task(0, Primitive::Recv, chunk())
        });
        g.add(TaskNode {
            bytes_raw: 100,
            bytes_wire: 100,
            deps: vec![recv0],
            ..task(0, Primitive::Update, chunk())
        });
        g.add(TaskNode {
            bytes_raw: 100,
            bytes_wire: 100,
            deps: vec![merge],
            ..task(1, Primitive::Update, chunk())
        });
        g
    }

    #[test]
    fn clean_exchange_passes() {
        let r = verify(&clean_pair(), 2);
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn unknown_node_flagged() {
        let mut g = TaskGraph::new();
        g.add(task(5, Primitive::Source, chunk()));
        assert!(verify(&g, 2).has(Code::UnknownNode));
    }

    #[test]
    fn self_send_flagged() {
        let mut g = TaskGraph::new();
        g.add(TaskNode {
            peer: Some(0),
            ..task(0, Primitive::Send, chunk())
        });
        assert!(verify(&g, 2).has(Code::BadPeer));
    }

    #[test]
    fn recv_without_send_flagged() {
        let mut g = TaskGraph::new();
        g.add(TaskNode {
            peer: Some(0),
            ..task(1, Primitive::Recv, chunk())
        });
        assert!(verify(&g, 2).has(Code::UnpairedRecv));
    }

    #[test]
    fn mismatched_payload_flagged() {
        let mut g = clean_pair();
        g.task_mut(TaskId(3)).bytes_wire = 50;
        assert!(verify(&g, 2).has(Code::PayloadMismatch));
    }

    #[test]
    fn retargeted_recv_flagged() {
        let mut g = clean_pair();
        g.task_mut(TaskId(3)).peer = Some(1);
        let r = verify(&g, 3);
        assert!(
            r.has(Code::UnpairedRecv) || r.has(Code::BadPeer),
            "{}",
            r.render()
        );
    }

    #[test]
    fn cycle_flagged() {
        let mut g = clean_pair();
        // Make the first Source depend on the last Update: a cycle.
        g.task_mut(TaskId(0)).deps.push(TaskId(8));
        assert!(verify(&g, 2).has(Code::DependencyCycle));
    }

    #[test]
    fn orphan_dep_flagged() {
        let mut g = clean_pair();
        g.task_mut(TaskId(2)).deps.push(TaskId(99));
        assert!(verify(&g, 2).has(Code::OrphanDep));
    }

    #[test]
    fn unordered_read_write_flagged_as_race() {
        let mut g = clean_pair();
        // Cut the edge ordering node 1's merge after its own source:
        // Source(1) write now races with nothing ordering it before
        // the merge write.
        g.task_mut(TaskId(4)).deps.retain(|d| *d != TaskId(1));
        let r = verify(&g, 2);
        assert!(
            r.has(Code::DataRace) || r.has(Code::DoubleWrite),
            "{}",
            r.render()
        );
    }

    #[test]
    fn missing_completion_flagged() {
        let mut g = clean_pair();
        // Retarget node 0's update to a different chunk: node 0's
        // replica of g0.p0 is never committed.
        g.task_mut(TaskId(7)).chunk = ChunkId { grad: 1, part: 0 };
        let r = verify(&g, 2);
        assert!(r.has(Code::MissingCompletion), "{}", r.render());
    }

    #[test]
    fn partial_aggregate_flagged() {
        let mut g = clean_pair();
        // Node 1's update no longer waits for the merge — it commits
        // before node 0's contribution arrived.
        let merge = TaskId(4);
        let upd = TaskId(8);
        g.task_mut(upd).deps.retain(|d| *d != merge);
        g.task_mut(upd).deps.push(TaskId(1));
        let r = verify(&g, 2);
        assert!(r.has(Code::IncompleteAggregation), "{}", r.render());
    }

    #[test]
    fn unconsumed_send_warns() {
        let mut g = clean_pair();
        // Depends on node 0's final Update so the extra read races
        // with nothing — the only defect is the dangling payload.
        g.add(TaskNode {
            peer: Some(1),
            bytes_raw: 100,
            bytes_wire: 100,
            deps: vec![TaskId(7)],
            ..task(0, Primitive::Send, chunk())
        });
        let r = verify(&g, 2);
        assert!(r.has(Code::UnconsumedSend));
        assert_eq!(r.error_count(), 0, "{}", r.render());
    }

    #[test]
    fn chunk_size_disagreement_warns() {
        let mut g = clean_pair();
        g.task_mut(TaskId(4)).bytes_raw = 64;
        let r = verify(&g, 2);
        assert!(r.has(Code::ChunkSizeMismatch), "{}", r.render());
    }

    #[test]
    fn decode_of_raw_payload_flagged() {
        let mut g = clean_pair();
        // Insert a decode after node 1's recv of a raw payload.
        g.add(TaskNode {
            bytes_raw: 100,
            bytes_wire: 100,
            deps: vec![TaskId(3)],
            ..task(1, Primitive::Decode, chunk())
        });
        let r = verify(&g, 2);
        assert!(r.has(Code::PayloadKindMismatch), "{}", r.render());
    }

    #[test]
    fn encoded_send_without_encode_flagged() {
        let mut g = clean_pair();
        g.task_mut(TaskId(2)).send_src = SendSrc::Encoded;
        let r = verify(&g, 2);
        assert!(r.has(Code::MissingValueSource), "{}", r.render());
    }

    #[test]
    fn fifo_inversion_flagged() {
        // Two ordered sends 0 -> 1 whose recvs are consumed in the
        // opposite order.
        let mut g = TaskGraph::new();
        let src = g.add(TaskNode {
            bytes_raw: 8,
            bytes_wire: 8,
            ..task(0, Primitive::Source, chunk())
        });
        g.add(TaskNode {
            bytes_raw: 8,
            bytes_wire: 8,
            ..task(1, Primitive::Source, chunk())
        });
        let s1 = g.add(TaskNode {
            peer: Some(1),
            bytes_raw: 8,
            bytes_wire: 8,
            deps: vec![src],
            ..task(0, Primitive::Send, chunk())
        });
        let s2 = g.add(TaskNode {
            peer: Some(1),
            bytes_raw: 8,
            bytes_wire: 8,
            deps: vec![s1],
            ..task(0, Primitive::Send, chunk())
        });
        let r2 = g.add(TaskNode {
            peer: Some(0),
            bytes_raw: 8,
            bytes_wire: 8,
            deps: vec![s2],
            ..task(1, Primitive::Recv, chunk())
        });
        let r1 = g.add(TaskNode {
            peer: Some(0),
            bytes_raw: 8,
            bytes_wire: 8,
            deps: vec![s1, r2],
            ..task(1, Primitive::Recv, chunk())
        });
        let m = g.add(TaskNode {
            bytes_raw: 8,
            bytes_wire: 8,
            deps: vec![r1, TaskId(1)],
            ..task(1, Primitive::Merge, chunk())
        });
        g.add(TaskNode {
            bytes_raw: 8,
            bytes_wire: 8,
            deps: vec![m, src],
            ..task(1, Primitive::Update, chunk())
        });
        g.add(TaskNode {
            bytes_raw: 8,
            bytes_wire: 8,
            deps: vec![s2, src],
            ..task(0, Primitive::Update, chunk())
        });
        let r = verify(&g, 2);
        assert!(r.has(Code::FifoInversion), "{}", r.render());
    }

    /// A one-directional producer: node 0 streams sends node 1
    /// merges, and node 0's completion never waits for node 1 — the
    /// shape whose pipelining outruns its consumer. Zero raw bytes
    /// keeps the aggregation-coverage check out of the picture (a
    /// telemetry stream, not a gradient): the single iteration is
    /// clean, the defect only exists pipelined.
    fn one_way_stream() -> TaskGraph {
        let mut g = TaskGraph::new();
        let s0 = g.add(TaskNode {
            bytes_wire: 8,
            ..task(0, Primitive::Source, chunk())
        });
        let s1 = g.add(TaskNode {
            bytes_wire: 8,
            ..task(1, Primitive::Source, chunk())
        });
        let send = g.add(TaskNode {
            peer: Some(1),
            bytes_wire: 8,
            deps: vec![s0],
            ..task(0, Primitive::Send, chunk())
        });
        let recv = g.add(TaskNode {
            peer: Some(0),
            bytes_wire: 8,
            deps: vec![send],
            ..task(1, Primitive::Recv, chunk())
        });
        let merge = g.add(TaskNode {
            bytes_wire: 8,
            deps: vec![recv, s1],
            ..task(1, Primitive::Merge, chunk())
        });
        g.add(TaskNode {
            bytes_wire: 8,
            deps: vec![merge],
            ..task(1, Primitive::Update, chunk())
        });
        g.add(TaskNode {
            bytes_wire: 8,
            deps: vec![send],
            ..task(0, Primitive::Update, chunk())
        });
        g
    }

    #[test]
    fn composition_shape_matches_spec() {
        let base = clean_pair();
        let spec = PipelineSpec::unshared(6, 2);
        let c = compose(&base, &spec);
        assert_eq!(c.instances, 4);
        // One barrier per node for each instance past the window.
        assert_eq!(c.admissions.len(), 4);
        assert_eq!(c.graph.len(), base.len() * 4 + 4);
        assert_eq!(c.instance.len(), c.graph.len());
        // Composition never invents forward dependencies.
        for t in c.graph.tasks() {
            for d in &t.deps {
                assert!(d.0 < t.id.0, "forward dep {d:?} in composed graph");
            }
        }
        // More iterations than window+2 adds nothing new.
        let deep = compose(&base, &PipelineSpec::unshared(100, 2));
        assert_eq!(deep.graph.len(), c.graph.len());
    }

    #[test]
    fn clean_pipelines_verify_clean() {
        let base = clean_pair();
        for (iterations, window) in [(1, 1), (4, 1), (4, 3), (6, 8)] {
            let r = verify_pipelined(&base, 2, &PipelineSpec::unshared(iterations, window));
            assert!(r.is_clean(), "{iterations}x w{window}: {}", r.render());
        }
        // Single-slot buffers are fine at window 1: the admission
        // barrier orders the reusing iteration after the owner.
        let r = verify_pipelined(
            &base,
            2,
            &PipelineSpec {
                iterations: 4,
                window: 1,
                slots: 1,
            },
        );
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn buffer_reuse_races_only_past_window_one() {
        // The same slots=1 plan that is clean at window 1 races at
        // window 2: iterations j and j+1 are both in flight on one
        // buffer generation.
        let r = verify_pipelined(
            &clean_pair(),
            2,
            &PipelineSpec {
                iterations: 4,
                window: 2,
                slots: 1,
            },
        );
        assert!(r.has(Code::CrossIterRace), "{}", r.render());
    }

    #[test]
    fn one_way_stream_grows_queues() {
        // Clean as a single iteration...
        let base = one_way_stream();
        assert!(verify(&base, 2).is_clean());
        // ...but pipelined, the producer node completes locally
        // without ever waiting for the consumer, so its sends outrun
        // the window.
        let r = verify_pipelined(&base, 2, &PipelineSpec::unshared(4, 2));
        assert!(r.has(Code::QueueGrowth), "{}", r.render());
        // The request-reply pair is bounded: the producer's next
        // round transitively waits on the consumer's recv.
        let r = verify_pipelined(&clean_pair(), 2, &PipelineSpec::unshared(4, 2));
        assert!(!r.has(Code::QueueGrowth), "{}", r.render());
    }

    #[test]
    fn dropped_admission_edges_flagged_as_queue_growth() {
        let base = clean_pair();
        let mut c = compose(&base, &PipelineSpec::unshared(4, 2));
        // Seed the defect: instance 2's admission barriers forget
        // their cross-iteration completion deps (keep only the
        // barrier chain), so iteration 2 no longer waits for 0.
        for (&(_, _), &adm) in c.admissions.clone().iter() {
            let keep: Vec<TaskId> = c
                .graph
                .task(adm)
                .deps
                .iter()
                .copied()
                .filter(|d| c.graph.task(*d).prim == Primitive::Barrier)
                .collect();
            c.graph.task_mut(adm).deps = keep;
        }
        let r = verify_composed(&c);
        assert!(r.has(Code::QueueGrowth), "{}", r.render());
    }

    #[test]
    fn inverted_admission_flagged() {
        // Window 1, 3 instances: barriers for iterations 1 and 2 on
        // each node. Cut everything that orders node 0's second
        // barrier after its first — the node no longer admits in
        // order, an execution the runtime cannot produce.
        let mut c = compose(&clean_pair(), &PipelineSpec::unshared(3, 1));
        assert!(verify_composed(&c).is_clean());
        let a2 = c.admissions[&(2, 0)];
        c.graph.task_mut(a2).deps.clear();
        let r = verify_composed(&c);
        assert!(r.has(Code::AdmissionInversion), "{}", r.render());
    }

    #[test]
    fn strategy_graphs_pipeline_clean() {
        use hipress_core::plan::{CompressionSpec, GradPlan, IterationSpec, SyncGradient};
        use hipress_core::{ClusterConfig, Strategy};
        let spec = IterationSpec {
            gradients: vec![SyncGradient {
                name: "g0".into(),
                bytes: 4096,
                ready_offset_ns: 0,
                plan: GradPlan {
                    compress: true,
                    partitions: 2,
                },
            }],
            compression: Some(CompressionSpec {
                ratio: 1.0 / 32.0,
                metadata_bytes: 8,
                encode_passes: 1.0,
                decode_passes: 1.0,
            }),
        };
        let cluster = ClusterConfig::ec2(3);
        for strat in [Strategy::CaSyncPs, Strategy::CaSyncRing] {
            let graph = strat.build(&cluster, &spec).unwrap();
            for window in [1, 2, 4] {
                let r = verify_pipelined(&graph, 3, &PipelineSpec::unshared(8, window));
                assert!(r.error_count() == 0, "{strat:?} w{window}: {}", r.render());
            }
        }
    }
}

//! The CompLL dataflow analyzer.
//!
//! Layered after `typeck`, this pass answers the questions the type
//! checker cannot: is every variable assigned before it is read, does
//! any store get silently discarded, can an index expression escape
//! its array, can an integer overflow its packed `uintN` cell, and is
//! every lambda handed to a data-parallel operator pure enough to run
//! as thousands of concurrent GPU threads?
//!
//! All value-range reasoning uses a symbolic interval domain whose
//! bounds are integers, `array.size + k` terms, or ±∞. The analyzer
//! only reports *definite* defects (`lo ≥ size`, `hi < 0`,
//! `lo ≥ 2^N`): an unknown interval is never an error, which is what
//! keeps the five shipped algorithms warning-free.
//!
//! The diagnostic catalogue (`D001`–`D005`) is documented on
//! [`Code`] and in `DESIGN.md`.

use std::collections::{BTreeSet, HashMap, HashSet};

use hipress_compll::ast::{BinOp, Expr, Function, Program, ScalarTy, Stmt, Ty, UnOp};

use crate::diag::{Code, Diagnostic, Report, Site};

/// Operators whose second argument is a lambda executed in parallel,
/// once per element.
const LAMBDA_OPS: &[&str] = &["map", "filter", "filter_idx", "sort", "reduce"];

/// Analyzes a type-checked program and reports `D001`–`D005`.
///
/// Entry points (`encode`/`decode`) start with every global
/// unassigned; user-defined functions are analyzed as if all globals
/// were assigned, because their global reads are checked at each call
/// site against what the caller has definitely assigned by then.
pub fn analyze(prog: &Program) -> Report {
    let mut a = Analyzer::new(prog);
    for f in &prog.functions {
        a.function(f);
    }
    a.report
}

/// One bound of a symbolic interval.
#[derive(Debug, Clone, PartialEq)]
enum Bound {
    NegInf,
    Int(i64),
    /// `size(array) + offset` for a named array in scope.
    Size(String, i64),
    PosInf,
}

/// A symbolic interval `[lo, hi]`.
#[derive(Debug, Clone, PartialEq)]
struct Interval {
    lo: Bound,
    hi: Bound,
}

impl Interval {
    fn top() -> Self {
        Self {
            lo: Bound::NegInf,
            hi: Bound::PosInf,
        }
    }

    fn of_int(k: i64) -> Self {
        Self {
            lo: Bound::Int(k),
            hi: Bound::Int(k),
        }
    }

    fn of_size(array: &str) -> Self {
        Self {
            lo: Bound::Size(array.to_string(), 0),
            hi: Bound::Size(array.to_string(), 0),
        }
    }

    /// Whether the interval provably sits at/above zero.
    fn nonneg(&self) -> bool {
        match &self.lo {
            Bound::Int(l) => *l >= 0,
            Bound::Size(_, off) => *off >= 0,
            _ => false,
        }
    }

    fn add(&self, other: &Self) -> Self {
        Self {
            lo: badd(&self.lo, &other.lo, false),
            hi: badd(&self.hi, &other.hi, true),
        }
    }

    fn sub(&self, other: &Self) -> Self {
        self.add(&other.negate())
    }

    fn negate(&self) -> Self {
        Self {
            lo: bneg(&self.hi, false),
            hi: bneg(&self.lo, true),
        }
    }

    fn mul(&self, other: &Self) -> Self {
        if let (Bound::Int(a), Bound::Int(b), Bound::Int(c), Bound::Int(d)) =
            (&self.lo, &self.hi, &other.lo, &other.hi)
        {
            let products = [
                a.saturating_mul(*c),
                a.saturating_mul(*d),
                b.saturating_mul(*c),
                b.saturating_mul(*d),
            ];
            return Self {
                lo: Bound::Int(*products.iter().min().unwrap()),
                hi: Bound::Int(*products.iter().max().unwrap()),
            };
        }
        Self::top()
    }

    fn rem(&self, other: &Self) -> Self {
        if self.nonneg() {
            let hi = match &other.hi {
                Bound::Int(h) if *h > 0 => Bound::Int(h - 1),
                _ => Bound::PosInf,
            };
            return Self {
                lo: Bound::Int(0),
                hi,
            };
        }
        Self::top()
    }

    fn shl(&self, other: &Self) -> Self {
        if let (Bound::Int(a), Bound::Int(b), Bound::Int(c), Bound::Int(d)) =
            (&self.lo, &self.hi, &other.lo, &other.hi)
        {
            if a == b && c == d && (0..63).contains(c) {
                return Self::of_int(a.saturating_mul(1i64 << c));
            }
        }
        Self::top()
    }

    /// Smallest interval containing both (at control-flow joins).
    fn hull(&self, other: &Self) -> Self {
        Self {
            lo: bmin(&self.lo, &other.lo),
            hi: bmax(&self.hi, &other.hi),
        }
    }

    /// Erases any bound that mentions `array` (the array was
    /// reassigned; its size may have changed).
    fn forget(&self, array: &str) -> Self {
        let wipe = |b: &Bound, inf: Bound| match b {
            Bound::Size(a, _) if a == array => inf,
            other => other.clone(),
        };
        Self {
            lo: wipe(&self.lo, Bound::NegInf),
            hi: wipe(&self.hi, Bound::PosInf),
        }
    }
}

fn badd(a: &Bound, b: &Bound, upper: bool) -> Bound {
    let inf = if upper { Bound::PosInf } else { Bound::NegInf };
    match (a, b) {
        (Bound::Int(x), Bound::Int(y)) => Bound::Int(x.saturating_add(*y)),
        (Bound::Size(s, o), Bound::Int(k)) | (Bound::Int(k), Bound::Size(s, o)) => {
            Bound::Size(s.clone(), o.saturating_add(*k))
        }
        _ => inf,
    }
}

fn bneg(b: &Bound, upper: bool) -> Bound {
    match b {
        Bound::Int(x) => Bound::Int(x.saturating_neg()),
        Bound::NegInf => Bound::PosInf,
        Bound::PosInf => Bound::NegInf,
        Bound::Size(..) => {
            if upper {
                Bound::PosInf
            } else {
                Bound::NegInf
            }
        }
    }
}

fn bmin(a: &Bound, b: &Bound) -> Bound {
    match (a, b) {
        (Bound::Int(x), Bound::Int(y)) => Bound::Int(*x.min(y)),
        (Bound::Size(s, o), Bound::Size(t, p)) if s == t => Bound::Size(s.clone(), *o.min(p)),
        (Bound::PosInf, other) | (other, Bound::PosInf) => other.clone(),
        _ => Bound::NegInf,
    }
}

fn bmax(a: &Bound, b: &Bound) -> Bound {
    match (a, b) {
        (Bound::Int(x), Bound::Int(y)) => Bound::Int(*x.max(y)),
        (Bound::Size(s, o), Bound::Size(t, p)) if s == t => Bound::Size(s.clone(), *o.max(p)),
        (Bound::NegInf, other) | (other, Bound::NegInf) => other.clone(),
        _ => Bound::PosInf,
    }
}

/// The globals a function may read or write, transitively through
/// every function it calls or hands to an operator as a lambda.
#[derive(Debug, Clone, Default, PartialEq)]
struct Summary {
    reads: BTreeSet<String>,
    writes: BTreeSet<String>,
}

/// Per-function dataflow state at one program point.
#[derive(Debug, Clone)]
struct Env {
    /// Locals declared so far: type and whether definitely assigned.
    locals: HashMap<String, (Ty, bool)>,
    /// Globals definitely assigned so far (entry points only).
    assigned_globals: HashSet<String>,
    /// Symbolic intervals for integer-typed locals.
    intervals: HashMap<String, Interval>,
    /// Whether control definitely returned already.
    terminated: bool,
}

struct Analyzer<'a> {
    prog: &'a Program,
    globals: HashMap<String, Ty>,
    param_fields: HashMap<String, Ty>,
    summaries: HashMap<String, Summary>,
    report: Report,
    /// (function, variable) pairs already reported, to avoid a
    /// cascade per read.
    reported: HashSet<(String, String)>,
}

impl<'a> Analyzer<'a> {
    fn new(prog: &'a Program) -> Self {
        let globals = prog.globals.iter().cloned().collect();
        let param_fields = prog
            .params
            .iter()
            .flat_map(|p| p.fields.iter().cloned())
            .collect();
        let mut a = Self {
            prog,
            globals,
            param_fields,
            summaries: HashMap::new(),
            report: Report::new(),
            reported: HashSet::new(),
        };
        a.summaries = a.build_summaries();
        a
    }

    /// Fixpoint over the call graph (direct calls and lambda
    /// references): each function's transitive global reads/writes.
    fn build_summaries(&self) -> HashMap<String, Summary> {
        let mut direct: HashMap<String, Summary> = HashMap::new();
        let mut callees: HashMap<String, BTreeSet<String>> = HashMap::new();
        for f in &self.prog.functions {
            let mut locals: HashSet<String> = f.params.iter().map(|(n, _)| n.clone()).collect();
            collect_decls(&f.body, &mut locals);
            let mut s = Summary::default();
            let mut called = BTreeSet::new();
            scan_stmts(&f.body, &mut |e| {
                match e {
                    Expr::Var(n) => {
                        if self.globals.contains_key(n) && !locals.contains(n) {
                            s.reads.insert(n.clone());
                        }
                        if self.prog.function(n).is_some() {
                            called.insert(n.clone());
                        }
                    }
                    Expr::Call { name, .. } => {
                        if self.prog.function(name).is_some() {
                            called.insert(name.clone());
                        }
                    }
                    _ => {}
                }
                true
            });
            for st in all_stmts(&f.body) {
                if let Stmt::Assign(n, _) = st {
                    if self.globals.contains_key(n) && !locals.contains(n) {
                        s.writes.insert(n.clone());
                    }
                }
            }
            direct.insert(f.name.clone(), s);
            callees.insert(f.name.clone(), called);
        }
        let mut summaries = direct.clone();
        loop {
            let mut changed = false;
            for f in &self.prog.functions {
                let mut s = summaries[&f.name].clone();
                for c in &callees[&f.name] {
                    if c == &f.name {
                        continue;
                    }
                    if let Some(cs) = summaries.get(c).cloned() {
                        s.reads.extend(cs.reads);
                        s.writes.extend(cs.writes);
                    }
                }
                if s != summaries[&f.name] {
                    summaries.insert(f.name.clone(), s);
                    changed = true;
                }
            }
            if !changed {
                return summaries;
            }
        }
    }

    fn site(&self, f: &Function) -> Site {
        Site::Dsl {
            function: f.name.clone(),
            line: f.line,
        }
    }

    fn diag(&mut self, code: Code, f: &Function, msg: String) {
        self.report.push(Diagnostic::new(code, self.site(f), msg));
    }

    fn diag_once(&mut self, code: Code, f: &Function, var: &str, msg: String) {
        if self.reported.insert((f.name.clone(), var.to_string())) {
            self.diag(code, f, msg);
        }
    }

    fn function(&mut self, f: &Function) {
        let is_entry = f.name == "encode" || f.name == "decode";
        let mut env = Env {
            locals: HashMap::new(),
            assigned_globals: if is_entry {
                HashSet::new()
            } else {
                // A udf's global reads are checked at its call sites;
                // standalone, assume everything is available.
                self.globals.keys().cloned().collect()
            },
            intervals: HashMap::new(),
            terminated: false,
        };
        self.block(f, &f.body, &mut env);
        self.dead_stores(f);
    }

    fn block(&mut self, f: &Function, stmts: &[Stmt], env: &mut Env) {
        for st in stmts {
            if env.terminated {
                break;
            }
            self.stmt(f, st, env);
        }
    }

    fn stmt(&mut self, f: &Function, st: &Stmt, env: &mut Env) {
        match st {
            Stmt::Decl(name, ty, init) => {
                let assigned = if let Some(e) = init {
                    let (ety, iv) = self.eval(f, e, env);
                    self.overflow_check(f, name, *ty, ety, &iv);
                    if matches!(ty, Ty::UInt(_) | Ty::Int32) {
                        env.intervals.insert(name.clone(), iv);
                    }
                    true
                } else {
                    false
                };
                env.locals.insert(name.clone(), (*ty, assigned));
            }
            Stmt::Assign(name, e) => {
                let (ety, iv) = self.eval(f, e, env);
                let target_ty = self.target_ty(f, name, env);
                if let Some(ty) = target_ty {
                    self.overflow_check(f, name, ty, ety, &iv);
                    if matches!(ty, Ty::Arr(_) | Ty::Bytes) {
                        // The array's size may have changed; bounds
                        // derived from it are stale.
                        for v in env.intervals.values_mut() {
                            *v = v.forget(name);
                        }
                    }
                }
                if let Some(entry) = env.locals.get_mut(name) {
                    entry.1 = true;
                    if matches!(entry.0, Ty::UInt(_) | Ty::Int32) {
                        env.intervals.insert(name.clone(), iv);
                    }
                } else if self.globals.contains_key(name)
                    && !f.params.iter().any(|(p, _)| p == name)
                {
                    env.assigned_globals.insert(name.clone());
                }
            }
            Stmt::Return(e) => {
                if let Some(e) = e {
                    let (ety, iv) = self.eval(f, e, env);
                    self.overflow_check(f, "return value", f.ret, ety, &iv);
                }
                env.terminated = true;
            }
            Stmt::If(cond, then_b, else_b) => {
                self.eval(f, cond, env);
                let pre_locals: HashSet<String> = env.locals.keys().cloned().collect();
                let mut then_env = env.clone();
                self.block(f, then_b, &mut then_env);
                let mut else_env = env.clone();
                self.block(f, else_b, &mut else_env);
                *env = merge(then_env, else_env, &pre_locals);
            }
            Stmt::Expr(e) => {
                self.eval(f, e, env);
            }
        }
    }

    /// The declared type of an assignment target, if known.
    fn target_ty(&self, f: &Function, name: &str, env: &Env) -> Option<Ty> {
        if let Some((ty, _)) = env.locals.get(name) {
            return Some(*ty);
        }
        if let Some((_, ty)) = f.params.iter().find(|(p, _)| p == name) {
            return Some(*ty);
        }
        self.globals.get(name).copied()
    }

    /// Evaluates an expression for diagnostics, returning its type
    /// (when scalar and known) and value interval.
    fn eval(&mut self, f: &Function, e: &Expr, env: &Env) -> (Option<Ty>, Interval) {
        match e {
            Expr::Int(k) => (Some(Ty::Int32), Interval::of_int(*k)),
            Expr::Float(_) => (Some(Ty::Float), Interval::top()),
            Expr::Var(name) => self.eval_var(f, name, env),
            Expr::Member(base, field) => {
                let (bty, _) = self.eval(f, base, env);
                if field == "size" {
                    if let (Expr::Var(array), Some(Ty::Arr(_) | Ty::Bytes)) = (base.as_ref(), bty) {
                        return (Some(Ty::Int32), Interval::of_size(array));
                    }
                    return (Some(Ty::Int32), Interval::top());
                }
                if bty == Some(Ty::ParamStruct) {
                    return (self.param_fields.get(field).copied(), Interval::top());
                }
                (None, Interval::top())
            }
            Expr::Index(base, idx) => {
                let (bty, _) = self.eval(f, base, env);
                let (_, iv) = self.eval(f, idx, env);
                if let (Expr::Var(array), Some(Ty::Arr(_) | Ty::Bytes)) = (base.as_ref(), bty) {
                    self.oob_check(f, array, &iv);
                }
                let elem = match bty {
                    Some(Ty::Arr(ScalarTy::UInt(b))) => Some(Ty::UInt(b)),
                    Some(Ty::Arr(ScalarTy::Int32)) => Some(Ty::Int32),
                    Some(Ty::Arr(ScalarTy::Float)) => Some(Ty::Float),
                    Some(Ty::Bytes) => Some(Ty::UInt(8)),
                    _ => None,
                };
                (elem, Interval::top())
            }
            Expr::Call { name, args, .. } => self.eval_call(f, name, args, env),
            Expr::Unary(UnOp::Neg, inner) => {
                let (ty, iv) = self.eval(f, inner, env);
                (ty, iv.negate())
            }
            Expr::Unary(UnOp::Not, inner) => {
                self.eval(f, inner, env);
                (
                    Some(Ty::Int32),
                    Interval {
                        lo: Bound::Int(0),
                        hi: Bound::Int(1),
                    },
                )
            }
            Expr::Bin(op, a, b) => {
                let (ta, ia) = self.eval(f, a, env);
                let (tb, ib) = self.eval(f, b, env);
                let float = ta == Some(Ty::Float) || tb == Some(Ty::Float);
                let iv = if float {
                    Interval::top()
                } else {
                    match op {
                        BinOp::Add => ia.add(&ib),
                        BinOp::Sub => ia.sub(&ib),
                        BinOp::Mul => ia.mul(&ib),
                        BinOp::Rem => ia.rem(&ib),
                        BinOp::Shl => ia.shl(&ib),
                        BinOp::Eq
                        | BinOp::Ne
                        | BinOp::Lt
                        | BinOp::Gt
                        | BinOp::Le
                        | BinOp::Ge
                        | BinOp::And
                        | BinOp::Or => Interval {
                            lo: Bound::Int(0),
                            hi: Bound::Int(1),
                        },
                        BinOp::Div | BinOp::Shr => Interval::top(),
                    }
                };
                let ty = match op {
                    BinOp::Eq
                    | BinOp::Ne
                    | BinOp::Lt
                    | BinOp::Gt
                    | BinOp::Le
                    | BinOp::Ge
                    | BinOp::And
                    | BinOp::Or => Some(Ty::Int32),
                    _ if float => Some(Ty::Float),
                    _ => Some(Ty::Int32),
                };
                (ty, iv)
            }
        }
    }

    fn eval_var(&mut self, f: &Function, name: &str, env: &Env) -> (Option<Ty>, Interval) {
        if let Some((ty, assigned)) = env.locals.get(name) {
            if !assigned {
                self.diag_once(
                    Code::UseBeforeDef,
                    f,
                    name,
                    format!("local '{name}' may be read before it is assigned"),
                );
            }
            let iv = env
                .intervals
                .get(name)
                .cloned()
                .unwrap_or_else(Interval::top);
            return (Some(*ty), iv);
        }
        if let Some((_, ty)) = f.params.iter().find(|(p, _)| p == name) {
            return (Some(*ty), Interval::top());
        }
        if let Some(ty) = self.globals.get(name).copied() {
            if !env.assigned_globals.contains(name) {
                self.diag_once(
                    Code::UseBeforeDef,
                    f,
                    name,
                    format!("global '{name}' is read before this entry point assigns it"),
                );
            }
            return (Some(ty), Interval::top());
        }
        // A function reference (lambda argument) or a name typeck
        // already rejected.
        (None, Interval::top())
    }

    fn eval_call(
        &mut self,
        f: &Function,
        name: &str,
        args: &[Expr],
        env: &Env,
    ) -> (Option<Ty>, Interval) {
        for a in args {
            self.eval(f, a, env);
        }
        if LAMBDA_OPS.contains(&name) {
            if let Some(Expr::Var(lambda)) = args.get(1) {
                if self.prog.function(lambda).is_some() {
                    self.lambda_checks(f, name, lambda, env);
                }
            }
        }
        if let Some(callee) = self.prog.function(name) {
            let summary = self.summaries.get(name).cloned().unwrap_or_default();
            self.require_globals(f, name, &summary.reads, env);
            return (Some(callee.ret), Interval::top());
        }
        match name {
            "floor" | "ceil" | "abs" | "sqrt" | "min" | "max" | "random" | "reduce" => {
                (Some(Ty::Float), Interval::top())
            }
            _ => (None, Interval::top()),
        }
    }

    /// A lambda run once per element must not write globals (two
    /// instances would race), and may only read globals the caller
    /// has assigned.
    fn lambda_checks(&mut self, f: &Function, op: &str, lambda: &str, env: &Env) {
        let summary = self.summaries.get(lambda).cloned().unwrap_or_default();
        if !summary.writes.is_empty() {
            let written: Vec<&str> = summary.writes.iter().map(String::as_str).collect();
            self.diag(
                Code::ImpureLambda,
                f,
                format!(
                    "lambda '{lambda}' passed to {op} writes global(s) {}: \
                     parallel instances race on them",
                    written.join(", ")
                ),
            );
        }
        self.require_globals(f, lambda, &summary.reads, env);
    }

    /// Every global the callee (transitively) reads must be
    /// definitely assigned at this call site.
    fn require_globals(&mut self, f: &Function, callee: &str, reads: &BTreeSet<String>, env: &Env) {
        for g in reads {
            if !env.assigned_globals.contains(g) {
                self.diag_once(
                    Code::UseBeforeDef,
                    f,
                    g,
                    format!(
                        "'{callee}' reads global '{g}', which this entry point \
                         has not assigned yet"
                    ),
                );
            }
        }
    }

    /// `D004`: a definitely-too-large (or definitely negative)
    /// integer stored where only `N` bits fit.
    fn overflow_check(
        &mut self,
        f: &Function,
        target: &str,
        target_ty: Ty,
        expr_ty: Option<Ty>,
        iv: &Interval,
    ) {
        let Ty::UInt(bits) = target_ty else {
            return;
        };
        if !matches!(expr_ty, Some(Ty::Int32 | Ty::UInt(_))) {
            return;
        }
        let cap = 1i64 << bits;
        if let Bound::Int(lo) = iv.lo {
            if lo >= cap {
                self.diag(
                    Code::UintOverflow,
                    f,
                    format!("{target}: value is at least {lo}, which cannot fit in uint{bits}"),
                );
                return;
            }
        }
        if let Bound::Int(hi) = iv.hi {
            if hi < 0 {
                self.diag(
                    Code::UintOverflow,
                    f,
                    format!("{target}: value is negative (at most {hi}); uint{bits} is unsigned"),
                );
            }
        }
    }

    /// `D003`: an index provably negative or provably at/past the end
    /// of the array it indexes.
    fn oob_check(&mut self, f: &Function, array: &str, iv: &Interval) {
        if let Bound::Int(hi) = iv.hi {
            if hi < 0 {
                self.diag(
                    Code::IndexOutOfBounds,
                    f,
                    format!("index into '{array}' is at most {hi} (negative)"),
                );
                return;
            }
        }
        if let Bound::Size(a, off) = &iv.lo {
            if a == array && *off >= 0 {
                self.diag(
                    Code::IndexOutOfBounds,
                    f,
                    format!(
                        "index into '{array}' is at least {array}.size{}",
                        if *off > 0 {
                            format!(" + {off}")
                        } else {
                            String::new()
                        }
                    ),
                );
            }
        }
    }

    /// `D002`: pure stores that are never read — either the local is
    /// never read at all, or the store is overwritten before any read
    /// within one straight-line block. Stores whose right-hand side
    /// contains a call are exempt: `extract` advances the stream
    /// cursor, and calls in general may have effects worth keeping.
    fn dead_stores(&mut self, f: &Function) {
        let mut locals: HashSet<String> = HashSet::new();
        collect_decls(&f.body, &mut locals);
        let params: HashSet<String> = f.params.iter().map(|(n, _)| n.clone()).collect();
        let mut reads: HashSet<String> = HashSet::new();
        scan_stmts(&f.body, &mut |e| {
            if let Expr::Var(n) = e {
                reads.insert(n.clone());
            }
            true
        });
        let is_trackable = |n: &String| locals.contains(n) && !params.contains(n);
        // Never read at all.
        let mut never_read_flagged: HashSet<String> = HashSet::new();
        for st in all_stmts(&f.body) {
            let (name, rhs) = match st {
                Stmt::Decl(n, _, Some(e)) => (n, e),
                Stmt::Assign(n, e) => (n, e),
                _ => continue,
            };
            if is_trackable(name)
                && !reads.contains(name)
                && is_pure(rhs)
                && never_read_flagged.insert(name.clone())
            {
                self.diag(
                    Code::DeadStore,
                    f,
                    format!("local '{name}' is assigned but never read"),
                );
            }
        }
        // Overwritten before any read, per straight-line block.
        self.overwrites(f, &f.body, &|n: &String| {
            is_trackable(n) && reads.contains(n)
        });
    }

    fn overwrites(&mut self, f: &Function, block: &[Stmt], trackable: &dyn Fn(&String) -> bool) {
        let mut pending: HashSet<String> = HashSet::new();
        for st in block {
            let mut stmt_reads = HashSet::new();
            scan_stmts(std::slice::from_ref(st), &mut |e| {
                if let Expr::Var(n) = e {
                    stmt_reads.insert(n.clone());
                }
                true
            });
            for r in &stmt_reads {
                pending.remove(r);
            }
            match st {
                Stmt::Decl(n, _, Some(e)) | Stmt::Assign(n, e) if trackable(n) => {
                    if pending.contains(n) {
                        self.diag(
                            Code::DeadStore,
                            f,
                            format!("'{n}' is overwritten before the previous store is read"),
                        );
                    }
                    if is_pure(e) {
                        pending.insert(n.clone());
                    } else {
                        pending.remove(n);
                    }
                }
                Stmt::If(_, then_b, else_b) => {
                    // Conditional stores invalidate tracking.
                    let mut written = HashSet::new();
                    for inner in all_stmts(then_b).chain(all_stmts(else_b)) {
                        match inner {
                            Stmt::Decl(n, _, _) | Stmt::Assign(n, _) => {
                                written.insert(n.clone());
                            }
                            _ => {}
                        }
                    }
                    for w in &written {
                        pending.remove(w);
                    }
                    self.overwrites(f, then_b, trackable);
                    self.overwrites(f, else_b, trackable);
                }
                _ => {}
            }
        }
    }
}

/// Joins the two branch states after an `if`.
fn merge(then_env: Env, else_env: Env, pre_locals: &HashSet<String>) -> Env {
    if then_env.terminated && !else_env.terminated {
        return restrict(else_env, pre_locals);
    }
    if else_env.terminated && !then_env.terminated {
        return restrict(then_env, pre_locals);
    }
    if then_env.terminated && else_env.terminated {
        let mut env = restrict(then_env, pre_locals);
        env.terminated = true;
        return env;
    }
    let mut env = restrict(then_env, pre_locals);
    // Definitely-assigned = assigned on both paths.
    for (name, entry) in env.locals.iter_mut() {
        let else_assigned = else_env.locals.get(name).map(|(_, a)| *a).unwrap_or(false);
        entry.1 = entry.1 && else_assigned;
    }
    env.assigned_globals = env
        .assigned_globals
        .intersection(&else_env.assigned_globals)
        .cloned()
        .collect();
    let mut intervals = HashMap::new();
    for (name, iv) in &env.intervals {
        if let Some(other) = else_env.intervals.get(name) {
            intervals.insert(name.clone(), iv.hull(other));
        }
    }
    env.intervals = intervals;
    env
}

/// Drops locals declared inside a branch (they go out of scope).
fn restrict(mut env: Env, pre_locals: &HashSet<String>) -> Env {
    env.locals.retain(|n, _| pre_locals.contains(n));
    env.intervals.retain(|n, _| pre_locals.contains(n));
    env
}

/// All statements in a block, recursing into `if` branches.
fn all_stmts(block: &[Stmt]) -> Box<dyn Iterator<Item = &Stmt> + '_> {
    Box::new(block.iter().flat_map(|st| {
        let nested: Box<dyn Iterator<Item = &Stmt>> = match st {
            Stmt::If(_, t, e) => Box::new(all_stmts(t).chain(all_stmts(e))),
            _ => Box::new(std::iter::empty()),
        };
        std::iter::once(st).chain(nested)
    }))
}

/// Collects every `Decl`ed name in a block (recursively).
fn collect_decls(block: &[Stmt], out: &mut HashSet<String>) {
    for st in all_stmts(block) {
        if let Stmt::Decl(n, _, _) = st {
            out.insert(n.clone());
        }
    }
}

/// Visits every expression in a block (recursively), including
/// subexpressions.
fn scan_stmts(block: &[Stmt], visit: &mut dyn FnMut(&Expr) -> bool) {
    fn walk(e: &Expr, visit: &mut dyn FnMut(&Expr) -> bool) {
        if !visit(e) {
            return;
        }
        match e {
            Expr::Member(b, _) => walk(b, visit),
            Expr::Index(b, i) => {
                walk(b, visit);
                walk(i, visit);
            }
            Expr::Call { args, .. } => {
                for a in args {
                    walk(a, visit);
                }
            }
            Expr::Unary(_, inner) => walk(inner, visit),
            Expr::Bin(_, a, b) => {
                walk(a, visit);
                walk(b, visit);
            }
            Expr::Int(_) | Expr::Float(_) | Expr::Var(_) => {}
        }
    }
    for st in all_stmts(block) {
        match st {
            Stmt::Decl(_, _, Some(e)) | Stmt::Assign(_, e) | Stmt::Expr(e) => walk(e, visit),
            Stmt::Return(Some(e)) => walk(e, visit),
            Stmt::If(c, _, _) => walk(c, visit),
            _ => {}
        }
    }
}

/// An expression with no calls: safe to drop without losing effects.
fn is_pure(e: &Expr) -> bool {
    let mut pure = true;
    fn walk(e: &Expr, pure: &mut bool) {
        match e {
            Expr::Call { .. } => *pure = false,
            Expr::Member(b, _) => walk(b, pure),
            Expr::Index(b, i) => {
                walk(b, pure);
                walk(i, pure);
            }
            Expr::Unary(_, inner) => walk(inner, pure),
            Expr::Bin(_, a, b) => {
                walk(a, pure);
                walk(b, pure);
            }
            Expr::Int(_) | Expr::Float(_) | Expr::Var(_) => {}
        }
    }
    walk(e, &mut pure);
    pure
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(src: &str) -> Report {
        let prog = hipress_compll::compile(src).expect("counterexamples must still type-check");
        analyze(&prog)
    }

    #[test]
    fn shipped_programs_are_clean() {
        use hipress_compll::algorithms as algs;
        let sources = [
            ("onebit", algs::ONEBIT_DSL.to_string()),
            ("tbq", algs::TBQ_DSL.to_string()),
            ("dgc", algs::DGC_DSL.to_string()),
            ("graddrop", algs::GRADDROP_DSL.to_string()),
            ("adacomp", algs::ADACOMP_DSL.to_string()),
            (
                "terngrad1",
                algs::TERNGRAD_DSL_TEMPLATE.replace("{U}", "uint1"),
            ),
            (
                "terngrad2",
                algs::TERNGRAD_DSL_TEMPLATE.replace("{U}", "uint2"),
            ),
            (
                "terngrad4",
                algs::TERNGRAD_DSL_TEMPLATE.replace("{U}", "uint4"),
            ),
            (
                "terngrad8",
                algs::TERNGRAD_DSL_TEMPLATE.replace("{U}", "uint8"),
            ),
        ];
        for (name, src) in sources {
            let r = check(&src);
            assert!(r.is_clean(), "{name}:\n{}", r.render());
        }
    }

    #[test]
    fn index_past_end_flagged() {
        let r = check(
            "void encode(float* gradient, uint8* compressed) {
                float x = gradient[gradient.size];
                compressed = concat(x);
            }",
        );
        assert!(r.has(Code::IndexOutOfBounds), "{}", r.render());
    }

    #[test]
    fn negative_index_flagged() {
        let r = check(
            "void encode(float* gradient, uint8* compressed) {
                float x = gradient[0 - 1];
                compressed = concat(x);
            }",
        );
        assert!(r.has(Code::IndexOutOfBounds), "{}", r.render());
    }

    #[test]
    fn in_bounds_last_element_not_flagged() {
        let r = check(
            "void encode(float* gradient, uint8* compressed) {
                float x = gradient[gradient.size - 1];
                compressed = concat(x);
            }",
        );
        assert!(!r.has(Code::IndexOutOfBounds), "{}", r.render());
    }

    #[test]
    fn uint_overflow_flagged() {
        let r = check(
            "void encode(float* gradient, uint8* compressed) {
                uint2 q = 7;
                compressed = concat(q);
            }",
        );
        assert!(r.has(Code::UintOverflow), "{}", r.render());
    }

    #[test]
    fn uint_overflow_on_return_flagged() {
        let r = check(
            "uint2 three(float x) { return 5; }
            void encode(float* gradient, uint8* compressed) {
                uint2* Q = map(gradient, three);
                compressed = concat(Q);
            }",
        );
        assert!(r.has(Code::UintOverflow), "{}", r.render());
    }

    #[test]
    fn impure_lambda_flagged() {
        let r = check(
            "float acc;
            uint1 markAndKeep(float x) { acc = x; return 1; }
            void encode(float* gradient, uint8* compressed) {
                acc = 0.0;
                uint1* Q = map(gradient, markAndKeep);
                compressed = concat(Q);
            }",
        );
        assert!(r.has(Code::ImpureLambda), "{}", r.render());
    }

    #[test]
    fn local_use_before_def_flagged() {
        let r = check(
            "void encode(float* gradient, uint8* compressed) {
                float x;
                float y = x + 1.0;
                compressed = concat(y);
            }",
        );
        assert!(r.has(Code::UseBeforeDef), "{}", r.render());
        assert!(r.error_count() > 0);
    }

    #[test]
    fn global_read_before_assign_warns() {
        let r = check(
            "float scale;
            float scaled(float x) { return x * scale; }
            void encode(float* gradient, uint8* compressed) {
                float* S = map(gradient, scaled);
                compressed = concat(S);
            }",
        );
        assert!(r.has(Code::UseBeforeDef), "{}", r.render());
    }

    #[test]
    fn conditional_assignment_not_definite() {
        let r = check(
            "float scale;
            float scaled(float x) { return x * scale; }
            void encode(float* gradient, uint8* compressed) {
                if (gradient.size > 10) { scale = 2.0; }
                float* S = map(gradient, scaled);
                compressed = concat(S);
            }",
        );
        assert!(r.has(Code::UseBeforeDef), "{}", r.render());
    }

    #[test]
    fn early_return_branch_keeps_other_path_definite() {
        let r = check(
            "float scale;
            float scaled(float x) { return x * scale; }
            void encode(float* gradient, uint8* compressed) {
                if (gradient.size == 0) {
                    compressed = concat(0);
                    return;
                }
                scale = 2.0;
                float* S = map(gradient, scaled);
                compressed = concat(S);
            }",
        );
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn dead_store_never_read_flagged() {
        let r = check(
            "void encode(float* gradient, uint8* compressed) {
                float unused = 3.0;
                compressed = concat(gradient.size);
            }",
        );
        assert!(r.has(Code::DeadStore), "{}", r.render());
        assert_eq!(r.error_count(), 0, "{}", r.render());
    }

    #[test]
    fn dead_store_overwrite_flagged() {
        let r = check(
            "void encode(float* gradient, uint8* compressed) {
                float x = 1.0;
                x = 2.0;
                compressed = concat(x);
            }",
        );
        assert!(r.has(Code::DeadStore), "{}", r.render());
    }

    #[test]
    fn effectful_store_exempt_from_dead_store() {
        // Mirrors TernGrad's decode, which extracts stream fields it
        // never reads (params carry the authoritative values): the
        // extract must still run to advance the cursor.
        let r = check(
            "void decode(uint8* compressed, float* gradient) {
                uint8 skipped = extract(compressed);
                gradient = extract(compressed, gradient.size);
            }",
        );
        assert!(!r.has(Code::DeadStore), "{}", r.render());
    }
}

//! Regression: the pre-fix ring dissemination bug must be caught
//! statically.
//!
//! Both ring strategies once emitted every uncompressed dissemination
//! hop as `SendSrc::Raw`. Hop 0 legitimately ships the owner's
//! accumulator, but hops ≥ 1 run on nodes whose accumulator holds
//! only a local partial — and whose `Update` (installing the received
//! aggregate into that same accumulator) is *unordered* with the
//! onward send. The reference interpreter masked the bug by running
//! tasks in topological insertion order; a concurrent executor owes
//! no such ordering. These tests reconstruct that graph by mutating
//! the fixed builders' output back to `Raw` and assert the plan
//! verifier reports the race.

use hipress_compress::Algorithm;
use hipress_core::graph::{Primitive, SendSrc};
use hipress_core::{
    ClusterConfig, CompressionSpec, GradPlan, IterationSpec, Strategy, SyncGradient, TaskGraph,
};
use hipress_lint::{verify_graph, Code};

fn spec(sizes: &[u64], algorithm: Option<Algorithm>, partitions: usize) -> IterationSpec {
    let compressor = algorithm.and_then(|a| a.build());
    IterationSpec {
        gradients: sizes
            .iter()
            .enumerate()
            .map(|(g, &bytes)| SyncGradient {
                name: format!("g{g}"),
                bytes,
                ready_offset_ns: (sizes.len() - g) as u64 * 1000,
                plan: GradPlan {
                    compress: compressor.is_some(),
                    partitions,
                },
            })
            .collect(),
        compression: compressor.as_deref().map(CompressionSpec::of),
    }
}

fn build(strategy: Strategy, nodes: usize, iter: &IterationSpec) -> TaskGraph {
    strategy
        .build(&ClusterConfig::ec2(nodes), iter)
        .expect("builders produce valid graphs")
}

/// Reintroduces the bug: every `Forward` dissemination send reverted
/// to `Raw` (what the builders emitted before the fix). Returns how
/// many sends were flipped.
fn revert_forward_sends_to_raw(graph: &mut TaskGraph) -> usize {
    let targets: Vec<_> = graph
        .tasks()
        .iter()
        .filter(|t| t.prim == Primitive::Send && t.send_src == SendSrc::Forward)
        .map(|t| t.id)
        .collect();
    for id in &targets {
        graph.task_mut(*id).send_src = SendSrc::Raw;
    }
    targets.len()
}

#[test]
fn fixed_ring_graphs_are_clean() {
    for nodes in [4usize, 5] {
        for strategy in [Strategy::CaSyncRing, Strategy::HorovodRing] {
            let graph = build(strategy, nodes, &spec(&[1 << 16], None, 1));
            let report = verify_graph(&graph, nodes);
            assert!(report.is_clean(), "{strategy:?}:\n{}", report.render());
        }
    }
}

#[test]
fn casync_ring_raw_dissemination_race_is_flagged() {
    let nodes = 4;
    let mut graph = build(Strategy::CaSyncRing, nodes, &spec(&[1 << 16], None, 1));
    let flipped = revert_forward_sends_to_raw(&mut graph);
    // n-1 dissemination hops per chunk; hops >= 1 forward.
    assert!(flipped > 0, "expected Forward dissemination sends to flip");
    let report = verify_graph(&graph, nodes);
    assert!(
        report.has(Code::DataRace),
        "raw re-send must race with the concurrent Update:\n{}",
        report.render()
    );
}

#[test]
fn horovod_ring_raw_dissemination_race_is_flagged() {
    let nodes = 5;
    let mut graph = build(Strategy::HorovodRing, nodes, &spec(&[1 << 20], None, 1));
    let flipped = revert_forward_sends_to_raw(&mut graph);
    assert!(flipped > 0, "expected Forward dissemination sends to flip");
    let report = verify_graph(&graph, nodes);
    assert!(
        report.has(Code::DataRace),
        "raw re-send must race with the concurrent Update:\n{}",
        report.render()
    );
}

#[test]
fn partitioned_compressed_ring_still_clean() {
    // The race detector must not fire on the legitimate compressed
    // path, where dissemination forwards encoded payloads.
    let nodes = 5;
    let graph = build(
        Strategy::CaSyncRing,
        nodes,
        &spec(&[1 << 16, 260], Some(Algorithm::OneBit), 3),
    );
    let report = verify_graph(&graph, nodes);
    assert!(report.is_clean(), "{}", report.render());
}

//! Mutation-style property test for the plan verifier.
//!
//! Valid graphs come from the real strategy builders across the full
//! algorithm x strategy x cluster-size x partitioning matrix; defects
//! are injected with seeded mutations. The verifier must flag every
//! mutated graph (100% defect detection) and pass every unmutated
//! graph with zero diagnostics (zero false positives).

use hipress_chaos::Wire;
use hipress_compress::Algorithm;
use hipress_core::graph::{Primitive, SendSrc};
use hipress_core::{
    ClusterConfig, CompressionSpec, GradPlan, IterationSpec, Strategy, SyncGradient, TaskGraph,
    TaskId,
};
use hipress_lint::{compose, verify_composed, verify_graph, verify_pipelined, Code, PipelineSpec};
use hipress_runtime::protocol::{Envelope, LinkRx, LinkTx, RxVerdict};
use hipress_runtime::Payload;
use hipress_util::rng::{Rng64, Xoshiro256};
use std::sync::Arc;
use std::time::{Duration, Instant};

const ALGORITHMS: [Option<Algorithm>; 6] = [
    None,
    Some(Algorithm::OneBit),
    Some(Algorithm::Tbq { tau: 0.05 }),
    Some(Algorithm::TernGrad { bitwidth: 2 }),
    Some(Algorithm::Dgc { rate: 0.001 }),
    Some(Algorithm::GradDrop { rate: 0.01 }),
];
const NODE_COUNTS: [usize; 3] = [2, 3, 5];
const PARTITIONS: [usize; 2] = [1, 3];

fn spec(algorithm: Option<Algorithm>, partitions: usize) -> IterationSpec {
    let compressor = algorithm.and_then(|a| a.build());
    // Large, medium, and tiny (zero-chunk-producing at K=3 on small
    // element counts) gradients.
    let sizes = [4096u64, 65536, 260];
    IterationSpec {
        gradients: sizes
            .iter()
            .enumerate()
            .map(|(g, &bytes)| SyncGradient {
                name: format!("g{g}"),
                bytes,
                ready_offset_ns: (sizes.len() - g) as u64 * 1000,
                plan: GradPlan {
                    compress: compressor.is_some(),
                    partitions,
                },
            })
            .collect(),
        compression: compressor.as_deref().map(CompressionSpec::of),
    }
}

fn build(strategy: Strategy, nodes: usize, iter: &IterationSpec) -> TaskGraph {
    strategy
        .build(&ClusterConfig::ec2(nodes), iter)
        .expect("builders produce valid graphs")
}

#[derive(Debug, Clone, Copy)]
enum Mutation {
    /// Remove one dependency edge (every builder edge is
    /// load-bearing).
    DropDep,
    /// Flip a Send's source to a different `SendSrc` variant.
    SwapSendSrc,
    /// Point a Recv at a different peer node.
    RetargetRecv,
    /// Corrupt a Recv's wire size so it disagrees with its Send.
    CorruptWire,
}

const MUTATIONS: [Mutation; 4] = [
    Mutation::DropDep,
    Mutation::SwapSendSrc,
    Mutation::RetargetRecv,
    Mutation::CorruptWire,
];

/// Applies the mutation to a random eligible task; returns a
/// description, or `None` when the graph has no eligible task.
fn apply(graph: &mut TaskGraph, m: Mutation, nodes: usize, rng: &mut Xoshiro256) -> Option<String> {
    let pick =
        |graph: &TaskGraph, rng: &mut Xoshiro256, f: &dyn Fn(&&_) -> bool| -> Option<TaskId> {
            let ids: Vec<TaskId> = graph.tasks().iter().filter(f).map(|t| t.id).collect();
            (!ids.is_empty()).then(|| ids[rng.index(ids.len())])
        };
    match m {
        Mutation::DropDep => {
            let id = pick(graph, rng, &|t| !t.deps.is_empty())?;
            let t = graph.task_mut(id);
            let victim = rng.index(t.deps.len());
            let dropped = t.deps.remove(victim);
            Some(format!("dropped dep {dropped:?} of {id:?}"))
        }
        Mutation::SwapSendSrc => {
            let id = pick(graph, rng, &|t| t.prim == Primitive::Send)?;
            let t = graph.task_mut(id);
            let others: [SendSrc; 2] = match t.send_src {
                SendSrc::Raw => [SendSrc::Encoded, SendSrc::Forward],
                SendSrc::Encoded => [SendSrc::Raw, SendSrc::Forward],
                SendSrc::Forward => [SendSrc::Raw, SendSrc::Encoded],
            };
            let new = others[rng.index(2)];
            let old = t.send_src;
            t.send_src = new;
            Some(format!("swapped {id:?} send_src {old:?} -> {new:?}"))
        }
        Mutation::RetargetRecv => {
            let id = pick(graph, rng, &|t| t.prim == Primitive::Recv)?;
            let t = graph.task_mut(id);
            let old = t.peer.expect("builders set recv peers");
            let new = (old + 1) % nodes;
            t.peer = Some(new);
            Some(format!("retargeted {id:?} peer {old} -> {new}"))
        }
        Mutation::CorruptWire => {
            let id = pick(graph, rng, &|t| t.prim == Primitive::Recv)?;
            let t = graph.task_mut(id);
            t.bytes_wire += 4;
            Some(format!("corrupted {id:?} wire size"))
        }
    }
}

/// Every unmutated builder graph across the whole matrix is
/// diagnostic-free — warnings included.
#[test]
fn unmutated_graphs_are_clean_across_matrix() {
    for strategy in Strategy::all() {
        for algorithm in ALGORITHMS {
            for nodes in NODE_COUNTS {
                for partitions in PARTITIONS {
                    let graph = build(strategy, nodes, &spec(algorithm, partitions));
                    let report = verify_graph(&graph, nodes);
                    assert!(
                        report.is_clean(),
                        "{strategy:?} x {algorithm:?} x {nodes} nodes x K={partitions}:\n{}",
                        report.render()
                    );
                }
            }
        }
    }
}

/// Every seeded defect injection on every CaSync configuration is
/// detected as at least one error.
#[test]
fn every_seeded_defect_is_detected() {
    let mut rng = Xoshiro256::new(0x11BE55);
    let mut injections = 0usize;
    for strategy in [Strategy::CaSyncPs, Strategy::CaSyncRing] {
        for algorithm in ALGORITHMS {
            for nodes in NODE_COUNTS {
                for partitions in PARTITIONS {
                    let iter = spec(algorithm, partitions);
                    for mutation in MUTATIONS {
                        // Several random picks per mutation kind, so
                        // the eligible-task sampling covers different
                        // primitives and pipeline stages.
                        for _ in 0..3 {
                            let mut graph = build(strategy, nodes, &iter);
                            let Some(what) = apply(&mut graph, mutation, nodes, &mut rng) else {
                                continue;
                            };
                            let report = verify_graph(&graph, nodes);
                            assert!(
                                report.error_count() >= 1,
                                "{strategy:?} x {algorithm:?} x {nodes} nodes x K={partitions}: \
                                 undetected defect ({what})\n{}",
                                report.render()
                            );
                            injections += 1;
                        }
                    }
                }
            }
        }
    }
    // 2 strategies x 6 algorithm settings x 3 node counts x
    // 2 partitionings x 4 mutations x 3 trials.
    assert_eq!(
        injections,
        2 * 6 * 3 * 2 * 4 * 3,
        "matrix not fully covered"
    );
}

// -------------------------------------------------------------------
// Pipelined-plan mutations: defects that only exist when iterations
// overlap. Each class is injected into the pipelined composition of a
// real strategy graph — either by declaring an unsafe buffer pool
// (slots <= window) or by tampering with the admission barriers the
// composition synthesizes — and the cross-iteration checks (P017,
// P018, P019) must flag every injection while the untampered
// composition stays clean at every window.
// -------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum PipelineMutation {
    /// Reuse one buffer generation per chunk under window 2: two
    /// in-flight iterations share every slot. Must race (P017) — and
    /// the *same* single-slot pool must stay clean at window 1, where
    /// admission orders the reuse; the defect exists only pipelined.
    ReuseBufferSlot,
    /// Strip the cross-iteration completion deps from every admission
    /// barrier (keep only the barrier chain): iteration j no longer
    /// waits for j - window, so sends outrun consumption (P018).
    DropAdmissionEdges,
    /// Disconnect one node's later admission barrier entirely: the
    /// node no longer admits iterations in order (P019).
    ScrambleAdmission,
}

const PIPELINE_MUTATIONS: [PipelineMutation; 3] = [
    PipelineMutation::ReuseBufferSlot,
    PipelineMutation::DropAdmissionEdges,
    PipelineMutation::ScrambleAdmission,
];

/// The compact strategy matrix the pipelined checks sweep; smaller
/// than the single-iteration matrix because each cell composes and
/// re-verifies several unrollings.
fn pipeline_matrix() -> Vec<(Strategy, usize, TaskGraph)> {
    let mut out = Vec::new();
    for strategy in [Strategy::CaSyncPs, Strategy::CaSyncRing] {
        for algorithm in [None, Some(Algorithm::OneBit)] {
            for nodes in [2usize, 3] {
                for partitions in PARTITIONS {
                    let graph = build(strategy, nodes, &spec(algorithm, partitions));
                    out.push((strategy, nodes, graph));
                }
            }
        }
    }
    out
}

/// Every strategy graph pipelines clean at windows 1, 2, and 4 with
/// per-window buffering — zero false positives from the
/// cross-iteration checks across the matrix.
#[test]
fn unmutated_pipelines_are_clean_across_windows() {
    for (strategy, nodes, graph) in pipeline_matrix() {
        for window in [1u32, 2, 4] {
            let report = verify_pipelined(&graph, nodes, &PipelineSpec::unshared(8, window));
            assert!(
                report.is_clean(),
                "{strategy:?} x {nodes} nodes x window {window}:\n{}",
                report.render()
            );
        }
    }
}

/// Every pipelined defect class is detected on every matrix cell with
/// the diagnostic code that names it.
#[test]
fn every_pipelined_defect_is_detected() {
    let mut rng = Xoshiro256::new(0x9199_11E5);
    let mut injections = 0usize;
    for (strategy, nodes, graph) in pipeline_matrix() {
        for mutation in PIPELINE_MUTATIONS {
            let (report, code) = match mutation {
                PipelineMutation::ReuseBufferSlot => {
                    let serial = PipelineSpec {
                        iterations: 4,
                        window: 1,
                        slots: 1,
                    };
                    let clean = verify_pipelined(&graph, nodes, &serial);
                    assert!(
                        !clean.has(Code::CrossIterRace),
                        "{strategy:?} x {nodes}: single-slot pool raced at window 1\n{}",
                        clean.render()
                    );
                    let shared = PipelineSpec {
                        iterations: 4,
                        window: 2,
                        slots: 1,
                    };
                    (
                        verify_pipelined(&graph, nodes, &shared),
                        Code::CrossIterRace,
                    )
                }
                PipelineMutation::DropAdmissionEdges => {
                    let mut c = compose(&graph, &PipelineSpec::unshared(4, 2));
                    for &adm in c.admissions.clone().values() {
                        let keep: Vec<TaskId> = c
                            .graph
                            .task(adm)
                            .deps
                            .iter()
                            .copied()
                            .filter(|d| c.graph.task(*d).prim == Primitive::Barrier)
                            .collect();
                        c.graph.task_mut(adm).deps = keep;
                    }
                    (verify_composed(&c), Code::QueueGrowth)
                }
                PipelineMutation::ScrambleAdmission => {
                    let mut c = compose(&graph, &PipelineSpec::unshared(3, 1));
                    // A random node's second barrier loses every
                    // ordering edge.
                    let victim = rng.index(nodes);
                    let adm = c.admissions[&(2, victim)];
                    c.graph.task_mut(adm).deps.clear();
                    (verify_composed(&c), Code::AdmissionInversion)
                }
            };
            assert!(
                report.has(code),
                "{strategy:?} x {nodes} nodes: {mutation:?} undetected (want {code:?})\n{}",
                report.render()
            );
            injections += 1;
        }
    }
    // 2 strategies x 2 algorithm settings x 2 node counts x
    // 2 partitionings x 3 mutation classes.
    assert_eq!(injections, 2 * 2 * 2 * 2 * 3, "matrix not fully covered");
}

// -------------------------------------------------------------------
// Fault-envelope mutations: the wire-integrity analogue of the plan
// mutations above. Instead of seeding defects into task graphs and
// asking the verifier to flag them, these seed defects into the
// runtime's fault-tolerant envelopes and ask the protocol layer
// (checksum verify, sequence dedup, retry budget) to catch them.
// -------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum EnvMutation {
    /// Flip one bit of the carried checksum; the envelope must fail
    /// verification and be nacked, never delivered.
    CorruptChecksum,
    /// Flip one bit of the payload (raw f32 words or compressed
    /// bytes); the digest must no longer match.
    CorruptPayloadBit,
    /// Deliver the same sequence number twice (a late
    /// retransmission); the second arrival must be classified as a
    /// duplicate, not re-delivered.
    ReplaySeq,
    /// Suppress every acknowledgement; the sender must retransmit
    /// with backoff and then declare the link dead, naming the task.
    DropAck,
}

const ENV_MUTATIONS: [EnvMutation; 4] = [
    EnvMutation::CorruptChecksum,
    EnvMutation::CorruptPayloadBit,
    EnvMutation::ReplaySeq,
    EnvMutation::DropAck,
];

/// The payload shapes an envelope can carry: plain completions, raw
/// gradients (odd element count), compressed bitstreams (length not a
/// multiple of the 8-byte digest word), and degradation holes.
fn payload_variants(rng: &mut Xoshiro256) -> [Option<Arc<Payload>>; 4] {
    let raw: Vec<f32> = (0..97).map(|_| rng.next_f32() * 8.0 - 4.0).collect();
    let compressed: Vec<u8> = (0..61).map(|_| rng.next_u32() as u8).collect();
    [
        None,
        Some(Arc::new(Payload::Raw(raw))),
        Some(Arc::new(Payload::Compressed(compressed))),
        Some(Arc::new(Payload::Skipped)),
    ]
}

/// Unmutated envelopes are clean across every payload shape: they
/// verify, deliver exactly once, and an acknowledged link goes idle
/// with nothing left to retransmit — zero false positives.
#[test]
fn unmutated_envelopes_are_clean() {
    let mut rng = Xoshiro256::new(0xC1EA);
    for (seq, payload) in payload_variants(&mut rng).into_iter().enumerate() {
        let now = Instant::now();
        let mut tx = LinkTx::new(3, Duration::from_millis(1), Duration::from_millis(8));
        let mut rx = LinkRx::new();
        let env = tx.prepare(1, TaskId(40 + seq as u32), payload, now);
        assert!(env.verify(), "sealed envelope must verify");
        assert_eq!(rx.accept(&env), RxVerdict::Deliver);
        assert!(tx.on_ack(env.seq), "ack must retire the envelope");
        assert!(tx.idle(), "acked link must hold no in-flight state");
        assert!(
            tx.due(now + Duration::from_secs(60)).unwrap().is_empty(),
            "nothing to retransmit after the ack"
        );
    }
}

/// Every seeded envelope defect across payload shapes and seeds is
/// caught by the integrity layer: corruption is detected (and the
/// clean retransmission still delivers), replays dedup, and dropped
/// acks end in a dead link naming the task.
#[test]
fn every_seeded_envelope_mutation_is_caught() {
    let mut rng = Xoshiro256::new(0xE77E10);
    let mut injections = 0usize;
    for round in 0..4u64 {
        for (pi, payload) in payload_variants(&mut rng).into_iter().enumerate() {
            for mutation in ENV_MUTATIONS {
                let task = TaskId((round * 10 + pi as u64) as u32);
                let env = Envelope::data(pi, round, task, payload.clone());
                let mut rx = LinkRx::new();
                match mutation {
                    EnvMutation::CorruptChecksum => {
                        let mut bad = env.clone();
                        bad.checksum ^= 1u64 << rng.index(64);
                        assert!(!bad.verify(), "corrupt checksum went undetected");
                        assert_eq!(rx.accept(&bad), RxVerdict::Corrupt);
                        // The clean retransmission must still deliver:
                        // corrupt arrivals are not marked seen.
                        assert_eq!(rx.accept(&env), RxVerdict::Deliver);
                    }
                    EnvMutation::CorruptPayloadBit => {
                        let bits = env.payload_bits();
                        if bits == 0 {
                            // No corruptible bits (no payload, or a
                            // degradation hole): not eligible.
                            continue;
                        }
                        let mut bad = env.clone();
                        bad.flip_bit(rng.next_below(bits));
                        assert!(!bad.verify(), "payload bitflip went undetected");
                        assert_eq!(rx.accept(&bad), RxVerdict::Corrupt);
                        assert_eq!(rx.accept(&env), RxVerdict::Deliver);
                    }
                    EnvMutation::ReplaySeq => {
                        assert_eq!(rx.accept(&env), RxVerdict::Deliver);
                        // A late retransmission carries a bumped
                        // attempt but the original digest.
                        let mut replay = env.clone();
                        replay.attempt += 1;
                        assert!(replay.verify(), "retransmission digest must hold");
                        assert_eq!(
                            rx.accept(&replay),
                            RxVerdict::Duplicate,
                            "replayed seq was delivered twice"
                        );
                    }
                    EnvMutation::DropAck => {
                        let base = Duration::from_millis(1);
                        let budget = 3u32;
                        let mut tx = LinkTx::new(budget, base, Duration::from_millis(8));
                        let now = Instant::now();
                        let sent = tx.prepare(pi, task, payload.clone(), now);
                        // With every ack dropped, each expiry bumps
                        // the attempt until the budget is exhausted.
                        let mut clock = now;
                        for expected in 1..=budget {
                            clock += Duration::from_millis(20);
                            let resent = tx.due(clock).expect("within the retry budget");
                            assert_eq!(resent.len(), 1);
                            assert_eq!(resent[0].attempt, expected);
                            assert!(resent[0].verify());
                        }
                        clock += Duration::from_millis(20);
                        let dead = tx.due(clock).expect_err("budget exhausted");
                        assert_eq!(dead.seq, sent.seq);
                        assert_eq!(dead.task, Some(task), "dead link must name the task");
                        assert_eq!(dead.attempts, budget + 1);
                    }
                }
                injections += 1;
            }
        }
    }
    // 4 rounds x 4 payload shapes x 4 mutations, minus the
    // payload-bitflip cells with nothing to flip (None and Skipped).
    assert_eq!(injections, 4 * 4 * 4 - 4 * 2, "matrix not fully covered");
}

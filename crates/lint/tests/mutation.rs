//! Mutation-style property test for the plan verifier.
//!
//! Valid graphs come from the real strategy builders across the full
//! algorithm x strategy x cluster-size x partitioning matrix; defects
//! are injected with seeded mutations. The verifier must flag every
//! mutated graph (100% defect detection) and pass every unmutated
//! graph with zero diagnostics (zero false positives).

use hipress_compress::Algorithm;
use hipress_core::graph::{Primitive, SendSrc};
use hipress_core::{
    ClusterConfig, CompressionSpec, GradPlan, IterationSpec, Strategy, SyncGradient, TaskGraph,
    TaskId,
};
use hipress_lint::verify_graph;
use hipress_util::rng::{Rng64, Xoshiro256};

const ALGORITHMS: [Option<Algorithm>; 6] = [
    None,
    Some(Algorithm::OneBit),
    Some(Algorithm::Tbq { tau: 0.05 }),
    Some(Algorithm::TernGrad { bitwidth: 2 }),
    Some(Algorithm::Dgc { rate: 0.001 }),
    Some(Algorithm::GradDrop { rate: 0.01 }),
];
const NODE_COUNTS: [usize; 3] = [2, 3, 5];
const PARTITIONS: [usize; 2] = [1, 3];

fn spec(algorithm: Option<Algorithm>, partitions: usize) -> IterationSpec {
    let compressor = algorithm.and_then(|a| a.build());
    // Large, medium, and tiny (zero-chunk-producing at K=3 on small
    // element counts) gradients.
    let sizes = [4096u64, 65536, 260];
    IterationSpec {
        gradients: sizes
            .iter()
            .enumerate()
            .map(|(g, &bytes)| SyncGradient {
                name: format!("g{g}"),
                bytes,
                ready_offset_ns: (sizes.len() - g) as u64 * 1000,
                plan: GradPlan {
                    compress: compressor.is_some(),
                    partitions,
                },
            })
            .collect(),
        compression: compressor.as_deref().map(CompressionSpec::of),
    }
}

fn build(strategy: Strategy, nodes: usize, iter: &IterationSpec) -> TaskGraph {
    strategy
        .build(&ClusterConfig::ec2(nodes), iter)
        .expect("builders produce valid graphs")
}

#[derive(Debug, Clone, Copy)]
enum Mutation {
    /// Remove one dependency edge (every builder edge is
    /// load-bearing).
    DropDep,
    /// Flip a Send's source to a different `SendSrc` variant.
    SwapSendSrc,
    /// Point a Recv at a different peer node.
    RetargetRecv,
    /// Corrupt a Recv's wire size so it disagrees with its Send.
    CorruptWire,
}

const MUTATIONS: [Mutation; 4] = [
    Mutation::DropDep,
    Mutation::SwapSendSrc,
    Mutation::RetargetRecv,
    Mutation::CorruptWire,
];

/// Applies the mutation to a random eligible task; returns a
/// description, or `None` when the graph has no eligible task.
fn apply(graph: &mut TaskGraph, m: Mutation, nodes: usize, rng: &mut Xoshiro256) -> Option<String> {
    let pick =
        |graph: &TaskGraph, rng: &mut Xoshiro256, f: &dyn Fn(&&_) -> bool| -> Option<TaskId> {
            let ids: Vec<TaskId> = graph.tasks().iter().filter(f).map(|t| t.id).collect();
            (!ids.is_empty()).then(|| ids[rng.index(ids.len())])
        };
    match m {
        Mutation::DropDep => {
            let id = pick(graph, rng, &|t| !t.deps.is_empty())?;
            let t = graph.task_mut(id);
            let victim = rng.index(t.deps.len());
            let dropped = t.deps.remove(victim);
            Some(format!("dropped dep {dropped:?} of {id:?}"))
        }
        Mutation::SwapSendSrc => {
            let id = pick(graph, rng, &|t| t.prim == Primitive::Send)?;
            let t = graph.task_mut(id);
            let others: [SendSrc; 2] = match t.send_src {
                SendSrc::Raw => [SendSrc::Encoded, SendSrc::Forward],
                SendSrc::Encoded => [SendSrc::Raw, SendSrc::Forward],
                SendSrc::Forward => [SendSrc::Raw, SendSrc::Encoded],
            };
            let new = others[rng.index(2)];
            let old = t.send_src;
            t.send_src = new;
            Some(format!("swapped {id:?} send_src {old:?} -> {new:?}"))
        }
        Mutation::RetargetRecv => {
            let id = pick(graph, rng, &|t| t.prim == Primitive::Recv)?;
            let t = graph.task_mut(id);
            let old = t.peer.expect("builders set recv peers");
            let new = (old + 1) % nodes;
            t.peer = Some(new);
            Some(format!("retargeted {id:?} peer {old} -> {new}"))
        }
        Mutation::CorruptWire => {
            let id = pick(graph, rng, &|t| t.prim == Primitive::Recv)?;
            let t = graph.task_mut(id);
            t.bytes_wire += 4;
            Some(format!("corrupted {id:?} wire size"))
        }
    }
}

/// Every unmutated builder graph across the whole matrix is
/// diagnostic-free — warnings included.
#[test]
fn unmutated_graphs_are_clean_across_matrix() {
    for strategy in Strategy::all() {
        for algorithm in ALGORITHMS {
            for nodes in NODE_COUNTS {
                for partitions in PARTITIONS {
                    let graph = build(strategy, nodes, &spec(algorithm, partitions));
                    let report = verify_graph(&graph, nodes);
                    assert!(
                        report.is_clean(),
                        "{strategy:?} x {algorithm:?} x {nodes} nodes x K={partitions}:\n{}",
                        report.render()
                    );
                }
            }
        }
    }
}

/// Every seeded defect injection on every CaSync configuration is
/// detected as at least one error.
#[test]
fn every_seeded_defect_is_detected() {
    let mut rng = Xoshiro256::new(0x11BE55);
    let mut injections = 0usize;
    for strategy in [Strategy::CaSyncPs, Strategy::CaSyncRing] {
        for algorithm in ALGORITHMS {
            for nodes in NODE_COUNTS {
                for partitions in PARTITIONS {
                    let iter = spec(algorithm, partitions);
                    for mutation in MUTATIONS {
                        // Several random picks per mutation kind, so
                        // the eligible-task sampling covers different
                        // primitives and pipeline stages.
                        for _ in 0..3 {
                            let mut graph = build(strategy, nodes, &iter);
                            let Some(what) = apply(&mut graph, mutation, nodes, &mut rng) else {
                                continue;
                            };
                            let report = verify_graph(&graph, nodes);
                            assert!(
                                report.error_count() >= 1,
                                "{strategy:?} x {algorithm:?} x {nodes} nodes x K={partitions}: \
                                 undetected defect ({what})\n{}",
                                report.render()
                            );
                            injections += 1;
                        }
                    }
                }
            }
        }
    }
    // 2 strategies x 6 algorithm settings x 3 node counts x
    // 2 partitionings x 4 mutations x 3 trials.
    assert_eq!(
        injections,
        2 * 6 * 3 * 2 * 4 * 3,
        "matrix not fully covered"
    );
}

//! End-to-end tests of the bounded model checker: the unmutated
//! matrix must exhaust clean (zero false positives), the sleep-set
//! reduction must demonstrably prune without changing any verdict,
//! and every seeded protocol defect must be refuted on every
//! configuration where it can physically manifest — and *only*
//! there.

use hipress_verify::{check_config, matrix, Mutation, Violation};

#[test]
fn unmutated_matrix_is_clean() {
    for s in matrix() {
        let out = check_config(&s.cfg, None, true);
        assert!(
            out.clean(),
            "{}: unmutated protocol violated {:?}",
            s.name,
            out.violation
        );
        assert!(out.stats.states > 1, "{}: did not explore", s.name);
        assert!(
            out.stats.terminals >= 1,
            "{}: no execution reached a terminal",
            s.name
        );
    }
}

/// The reduction is sound (every reachable state is still visited —
/// state counts match with it on and off) and effective on every
/// 3-node scenario, where actions on disjoint channel pairs commute.
/// Two-node scenarios share their single channel pair across all
/// actions, so nothing is independent and nothing may be pruned.
#[test]
fn reduction_prunes_without_changing_verdicts() {
    let mut reduced_somewhere = false;
    for s in matrix() {
        let with = check_config(&s.cfg, None, true);
        let without = check_config(&s.cfg, None, false);
        assert_eq!(
            with.stats.states, without.stats.states,
            "{}: reduction changed the set of reachable states",
            s.name
        );
        assert_eq!(
            with.stats.terminals, without.stats.terminals,
            "{}: reduction changed the terminal count",
            s.name
        );
        assert!(
            with.clean() && without.clean(),
            "{}: verdict flipped",
            s.name
        );
        assert!(
            with.stats.transitions <= without.stats.transitions,
            "{}: reduction explored more transitions ({} > {})",
            s.name,
            with.stats.transitions,
            without.stats.transitions
        );
        if s.cfg.nodes >= 3 || s.cfg.crash.is_some() {
            // 3-node scenarios have disjoint channel pairs; crash
            // scenarios have the crash action itself, which commutes
            // with traffic not touching the victim's local state.
            assert!(
                with.stats.pruned > 0 && with.stats.transitions < without.stats.transitions,
                "{}: reduction had no effect",
                s.name
            );
            reduced_somewhere = true;
        } else {
            assert_eq!(
                with.stats.pruned, 0,
                "{}: pruned on a 2-node scenario where nothing commutes",
                s.name
            );
        }
    }
    assert!(
        reduced_somewhere,
        "matrix has no scenario demonstrating the reduction"
    );
}

/// The violation each defect class must surface as.
fn expected(m: Mutation, v: &Violation) -> bool {
    matches!(
        (m, v),
        (Mutation::SkipDedup, Violation::DuplicateApply { .. })
            | (Mutation::DedupBeforeVerify, Violation::CorruptMissed { .. })
            | (Mutation::ApplyBeforeVerify, Violation::CorruptMissed { .. })
            | (
                Mutation::RetryWithoutBound,
                Violation::UnboundedRetry { .. }
            )
            | (Mutation::DropHeartbeat, Violation::Deadlock { .. })
            | (Mutation::ForgetRescale, Violation::MissingRescale { .. })
    )
}

/// The full defect sweep: 6 mutations × 16 scenarios. On every
/// eligible cell the checker must produce a counterexample of the
/// defect's signature violation; on every ineligible cell the
/// (present but latent) defect must stay silent — a report there
/// would be a false positive.
#[test]
fn every_defect_is_refuted_exactly_where_it_can_manifest() {
    let mut eligible_cells = 0usize;
    for m in Mutation::ALL {
        for s in matrix() {
            let out = check_config(&s.cfg, Some(m), true);
            if m.eligible(&s.cfg) {
                eligible_cells += 1;
                let Some((v, trace)) = &out.violation else {
                    panic!("{} on {}: defect not detected", m.name(), s.name);
                };
                assert!(
                    expected(m, v),
                    "{} on {}: wrong violation kind {v}",
                    m.name(),
                    s.name
                );
                assert!(
                    !trace.is_empty() && trace.last().unwrap().starts_with("=>"),
                    "{} on {}: counterexample lacks a trace",
                    m.name(),
                    s.name
                );
            } else {
                assert!(
                    out.clean(),
                    "{} on {}: false positive {:?}",
                    m.name(),
                    s.name,
                    out.violation
                );
            }
        }
    }
    // The detection floor: every defect class manifests on multiple
    // configurations. Grows only deliberately, never shrinks.
    assert_eq!(
        eligible_cells, 23,
        "eligible mutation×scenario cells drifted"
    );
}

/// Same configuration, same exploration: the checker is
/// deterministic, so CI failures reproduce locally.
#[test]
fn exploration_is_deterministic() {
    for s in matrix().into_iter().take(4) {
        let a = check_config(&s.cfg, None, true);
        let b = check_config(&s.cfg, None, true);
        assert_eq!(a.stats, b.stats, "{}: stats differ across runs", s.name);
    }
    let s = &matrix()[2]; // 2n-drop, SkipDedup-eligible
    let a = check_config(&s.cfg, Some(Mutation::SkipDedup), true);
    let b = check_config(&s.cfg, Some(Mutation::SkipDedup), true);
    let (va, ta) = a.violation.expect("detects");
    let (vb, tb) = b.violation.expect("detects");
    assert_eq!(format!("{va}"), format!("{vb}"));
    assert_eq!(ta, tb, "counterexample traces differ across runs");
}

/// CLI names round-trip, so `hipress verify --mutant <name>` can
/// name every defect class.
#[test]
fn mutation_names_round_trip() {
    for m in Mutation::ALL {
        assert_eq!(Mutation::from_name(m.name()), Some(m));
    }
    assert_eq!(Mutation::from_name("no-such-defect"), None);
}

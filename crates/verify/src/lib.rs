//! hipress-verify: a zero-dependency bounded explicit-state model
//! checker for the CaSync-RT wire/fault-tolerance protocol.
//!
//! The runtime's protocol logic lives in pure transition functions
//! and side-effect-free link state machines
//! (`hipress_runtime::protocol`); this crate drives *those same
//! implementations* through every interleaving of a small-scope
//! configuration — 2–3 nodes, 1–2 chunks, window 1–2, under the
//! chaos fault alphabet (drop / duplicate / reorder / bit-flip /
//! crash) — and proves, for the explored scope:
//!
//! - **No deadlock**: every non-terminal state has an enabled
//!   transition.
//! - **No duplicate apply**: no sequence number lands in a
//!   receiver's apply ledger twice.
//! - **Corruption detected**: a bit-flipped envelope is always
//!   classified `Corrupt` before the protocol acts on it.
//! - **Retransmits bounded**: no envelope is transmitted more than
//!   `1 + retry_budget` times.
//! - **Structured endings**: every execution terminates with each
//!   node `Done`, crashed (by injection), or in a structured
//!   failure naming its peer.
//! - **Degrade rescales**: a completion carrying `Payload::Skipped`
//!   holes has a rescaled merge.
//!
//! Exploration uses state hashing plus a sleep-set partial-order
//! reduction ([`check`]); the mutation harness ([`mutate`]) seeds
//! six protocol defect classes that the same matrix must refute with
//! zero false positives.

pub mod check;
pub mod elastic;
pub mod model;
pub mod mutate;

pub use check::{explore, Limits, Outcome, Stats};
pub use elastic::{
    check_elastic, elastic_matrix, ElasticConfig, ElasticMutation, ElasticOutcome, ElasticScenario,
    ElasticViolation,
};
pub use model::{Config, Faults, Model, Pattern, Policy, Violation};
pub use mutate::Mutation;

/// One named small-scope configuration of the checker matrix.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Stable name (shown in the `hipress verify` table).
    pub name: &'static str,
    /// The configuration to exhaust.
    pub cfg: Config,
}

fn cfg(
    nodes: usize,
    chunks: u32,
    window: u32,
    retry_budget: u32,
    pattern: Pattern,
    faults: Faults,
    fault_budget: u32,
    policy: Policy,
    crash: Option<usize>,
) -> Config {
    Config {
        nodes,
        chunks,
        window,
        retry_budget,
        pattern,
        faults,
        fault_budget,
        policy,
        crash,
    }
}

const DROP: Faults = Faults {
    drop: true,
    duplicate: false,
    corrupt: false,
};
const DUP: Faults = Faults {
    drop: false,
    duplicate: true,
    corrupt: false,
};
const FLIP: Faults = Faults {
    drop: false,
    duplicate: false,
    corrupt: true,
};
const DROP_DUP: Faults = Faults {
    drop: true,
    duplicate: true,
    corrupt: false,
};
const DUP_FLIP: Faults = Faults {
    drop: false,
    duplicate: true,
    corrupt: true,
};
const DROP_FLIP: Faults = Faults {
    drop: true,
    duplicate: false,
    corrupt: true,
};

/// The small-scope matrix `hipress verify` exhausts: every fault
/// letter appears, windows 1 and 2 are both exercised, and the
/// crash scenarios cover both degrade policies and both traffic
/// patterns (all-to-all senders die as dead links; gather roots
/// must detect silence and degrade).
pub fn matrix() -> Vec<Scenario> {
    use Pattern::{AllToAll, Gather};
    use Policy::{Partial, Wait};
    vec![
        Scenario {
            name: "2n-clean-w1",
            cfg: cfg(2, 1, 1, 2, AllToAll, Faults::NONE, 0, Wait, None),
        },
        Scenario {
            name: "2n-clean-w2",
            cfg: cfg(2, 2, 2, 2, AllToAll, Faults::NONE, 0, Wait, None),
        },
        Scenario {
            name: "2n-drop",
            cfg: cfg(2, 1, 1, 3, AllToAll, DROP, 2, Wait, None),
        },
        Scenario {
            name: "2n-dup-w2",
            cfg: cfg(2, 2, 2, 2, AllToAll, DUP, 1, Wait, None),
        },
        Scenario {
            name: "2n-flip",
            cfg: cfg(2, 1, 1, 2, AllToAll, FLIP, 1, Wait, None),
        },
        Scenario {
            name: "2n-dup-flip",
            cfg: cfg(2, 1, 1, 2, AllToAll, DUP_FLIP, 2, Wait, None),
        },
        Scenario {
            name: "2n-drop-flip",
            cfg: cfg(2, 1, 1, 3, AllToAll, DROP_FLIP, 2, Wait, None),
        },
        Scenario {
            name: "2n-drop-dup-w2",
            cfg: cfg(2, 2, 2, 2, AllToAll, DROP_DUP, 2, Wait, None),
        },
        Scenario {
            name: "3n-drop",
            cfg: cfg(3, 1, 1, 2, AllToAll, DROP, 1, Wait, None),
        },
        Scenario {
            name: "3n-gather-w2",
            cfg: cfg(3, 2, 2, 2, Gather, Faults::NONE, 0, Wait, None),
        },
        Scenario {
            name: "3n-gather-drop-w2",
            cfg: cfg(3, 2, 2, 2, Gather, DROP, 1, Wait, None),
        },
        Scenario {
            name: "2n-crash-wait",
            cfg: cfg(2, 1, 1, 2, AllToAll, Faults::NONE, 0, Wait, Some(1)),
        },
        Scenario {
            name: "2n-crash-partial",
            cfg: cfg(2, 1, 1, 2, AllToAll, Faults::NONE, 0, Partial, Some(1)),
        },
        Scenario {
            name: "3n-gather-crash-partial",
            cfg: cfg(3, 1, 1, 2, Gather, Faults::NONE, 0, Partial, Some(2)),
        },
        Scenario {
            name: "3n-gather-crash-wait",
            cfg: cfg(3, 1, 1, 2, Gather, Faults::NONE, 0, Wait, Some(2)),
        },
        Scenario {
            name: "3n-gather-crash-w2",
            cfg: cfg(3, 2, 2, 2, Gather, Faults::NONE, 0, Partial, Some(1)),
        },
    ]
}

/// Checks one configuration: builds the model (optionally seeded
/// with a defect) and exhausts it.
pub fn check_config(cfg: &Config, mutation: Option<Mutation>, por: bool) -> Outcome {
    let model = Model::new(cfg.clone(), mutation);
    explore(&model, por, Limits::default())
}

//! The protocol mutation harness: each [`Mutation`] seeds one
//! realistic defect into the modelled protocol — the checker must
//! refute every one of them on every configuration where the defect
//! can physically manifest, and must stay silent everywhere else.
//! This mirrors the lint crate's mutation methodology: exact
//! expectations, 100% detection, zero false positives.

use crate::model::{Config, Faults, Policy};

/// One seeded protocol defect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// The receiver's dedup check is deleted: retransmissions and
    /// duplicated envelopes apply twice.
    SkipDedup,
    /// Dedup runs before checksum verification: a corrupted
    /// retransmission of a delivered seq passes as a duplicate.
    DedupBeforeVerify,
    /// The payload is applied before the checksum is verified at
    /// all: corrupt data lands in the merge.
    ApplyBeforeVerify,
    /// The sender ignores the retry budget and retransmits forever.
    RetryWithoutBound,
    /// The heartbeat/straggler silence detection is dropped: a node
    /// waiting on a crashed peer waits forever.
    DropHeartbeat,
    /// A Partial-degrade skip records holes but forgets to rescale
    /// the merge.
    ForgetRescale,
}

impl Mutation {
    /// Every protocol defect class, in a stable order.
    pub const ALL: [Mutation; 6] = [
        Mutation::SkipDedup,
        Mutation::DedupBeforeVerify,
        Mutation::ApplyBeforeVerify,
        Mutation::RetryWithoutBound,
        Mutation::DropHeartbeat,
        Mutation::ForgetRescale,
    ];

    /// Stable CLI name (`hipress verify --mutant <name>`).
    pub fn name(&self) -> &'static str {
        match self {
            Mutation::SkipDedup => "skip-dedup",
            Mutation::DedupBeforeVerify => "dedup-before-verify",
            Mutation::ApplyBeforeVerify => "apply-before-verify",
            Mutation::RetryWithoutBound => "retry-without-bound",
            Mutation::DropHeartbeat => "drop-heartbeat",
            Mutation::ForgetRescale => "forget-rescale",
        }
    }

    /// Parses a CLI name.
    pub fn from_name(name: &str) -> Option<Mutation> {
        Mutation::ALL.iter().copied().find(|m| m.name() == name)
    }

    /// Whether this defect can manifest at all under `cfg` — the
    /// physics of the scenario, not the checker's cleverness. On
    /// eligible configurations detection must be 100%; on ineligible
    /// ones the checker must report nothing (the defect is present
    /// but latent, and flagging it would be a false positive).
    pub fn eligible(&self, cfg: &Config) -> bool {
        let Faults {
            drop,
            duplicate,
            corrupt,
        } = cfg.faults;
        // Someone expects data from the crash victim. There is then
        // always an interleaving where the victim acks everything it
        // received *before* crashing, leaving the waiter with no
        // dead-link escape — only silence detection can save it.
        let victim_owes_data = cfg
            .crash
            .is_some_and(|v| (0..cfg.nodes).any(|i| i != v && cfg.sends(v, i) > 0));
        match self {
            // A second delivery of one seq needs a duplicated
            // envelope or a retransmission after a lost ack.
            Mutation::SkipDedup => duplicate || drop,
            // Needs a *corrupted* copy of an already-delivered seq:
            // one fault to re-materialise the seq (dup, or drop its
            // ack), one to corrupt.
            Mutation::DedupBeforeVerify => corrupt && (duplicate || drop) && cfg.fault_budget >= 2,
            // Any corrupt arrival manifests it.
            Mutation::ApplyBeforeVerify => corrupt,
            // The budget only matters on a link whose receiver can
            // die mid-protocol: the crash victim itself, or — under
            // Wait degrade — a waiter on the victim, which turns
            // into a structured failure that stops acking.
            Mutation::RetryWithoutBound => cfg.crash.is_some_and(|v| {
                let can_die = |r: usize| {
                    r == v || (cfg.policy == Policy::Wait && r != v && cfg.sends(v, r) > 0)
                };
                (0..cfg.nodes).any(|s| {
                    s != v && (0..cfg.nodes).any(|r| r != s && cfg.sends(s, r) > 0 && can_die(r))
                })
            }),
            Mutation::DropHeartbeat => victim_owes_data,
            // Holes only appear when a waiter skips the victim under
            // Partial degrade.
            Mutation::ForgetRescale => victim_owes_data && cfg.policy == Policy::Partial,
        }
    }
}

//! The small-scope protocol model: N nodes exchanging checksummed,
//! sequence-numbered data envelopes over unreliable directed links,
//! driven through the *real* runtime state machines
//! ([`LinkTx`]/[`LinkRx`]) and the pure transition functions in
//! `hipress_runtime::protocol` — the checker owns no protocol logic
//! of its own.
//!
//! # Abstractions (and what stands behind them)
//!
//! - **Untimed timers.** A retransmission timer "may fire whenever
//!   the in-flight copy is genuinely gone": the `Timeout` action is
//!   enabled only when neither the data envelope nor its ack/nack is
//!   anywhere in the network, and it drives the same
//!   attempt/budget/backoff bookkeeping through [`LinkTx::on_nack`].
//!   The real-time rto arithmetic is pinned by the delegation tests
//!   in `protocol.rs`, not explored here.
//! - **Reorder is free.** Each directed link is a message *multiset*;
//!   any in-flight message may deliver next. Reordering is therefore
//!   always part of the explored alphabet and needs no fault budget.
//! - **Silence detection.** The heartbeat/EWMA straggler machinery
//!   collapses to a `DetectSilence` action, enabled once a peer has
//!   actually crashed while the observer still waits on it — the
//!   untimed shadow of "the straggler threshold elapsed with no
//!   ping". Removing it (the drop-heartbeat mutation) must deadlock
//!   pure waiters, which is exactly what the checker proves.
//! - **Apply = ledger.** Delivering a data envelope appends its seq
//!   to the receiver's apply ledger; the merge itself is the
//!   engine's business. Degrade holes and the shared
//!   [`protocol::degrade_rescale`] factor are modelled explicitly.

use hipress_chaos::Wire;
use hipress_core::graph::TaskId;
use hipress_runtime::engine::Payload;
use hipress_runtime::protocol::{self, Body, Envelope, LinkRx, LinkTx, RxVerdict};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::mutate::Mutation;

/// Who sends data to whom.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// Every node sends `chunks` envelopes to every other node
    /// (gossip / all-reduce shape).
    AllToAll,
    /// Every non-root node sends `chunks` envelopes to node 0
    /// (parameter-server push shape). Pure receivers exist here,
    /// which is what exercises straggler skip + degraded rescale.
    Gather,
}

/// Which fault letters of the chaos alphabet the explorer may inject
/// (reorder is always on — the network is a multiset).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Faults {
    /// Remove any in-flight message.
    pub drop: bool,
    /// Duplicate any in-flight message.
    pub duplicate: bool,
    /// Flip one payload bit of an in-flight data envelope.
    pub corrupt: bool,
}

impl Faults {
    /// No fault injection at all.
    pub const NONE: Faults = Faults {
        drop: false,
        duplicate: false,
        corrupt: false,
    };

    /// Short human label, e.g. `"drop+dup"`.
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if self.drop {
            parts.push("drop");
        }
        if self.duplicate {
            parts.push("dup");
        }
        if self.corrupt {
            parts.push("flip");
        }
        if parts.is_empty() {
            parts.push("none");
        }
        parts.join("+")
    }
}

/// What a waiting node does about a peer gone silent — the model's
/// view of `DegradePolicy` (Abort is Wait with a different label and
/// adds no distinct protocol behaviour worth exploring).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Keep waiting until the hard deadline fails the sync.
    Wait,
    /// Skip the silent peer: record holes and rescale the merge.
    Partial,
}

/// One small-scope configuration for the checker to exhaust.
#[derive(Debug, Clone)]
pub struct Config {
    /// Cluster size (2–3 for exhaustive exploration).
    pub nodes: usize,
    /// Data envelopes per active directed link (1–2).
    pub chunks: u32,
    /// Max unacknowledged envelopes in flight per link (1–2).
    pub window: u32,
    /// Retransmissions allowed past the first before a link dies.
    pub retry_budget: u32,
    /// Traffic shape.
    pub pattern: Pattern,
    /// Enabled fault letters.
    pub faults: Faults,
    /// Total faults the explorer may inject along one execution.
    pub fault_budget: u32,
    /// Degrade policy for silent peers.
    pub policy: Policy,
    /// A node the explorer may crash (at any point, once).
    pub crash: Option<usize>,
}

impl Config {
    /// Data envelopes `src` sends to `dst` in this configuration.
    pub fn sends(&self, src: usize, dst: usize) -> u32 {
        if src == dst {
            return 0;
        }
        match self.pattern {
            Pattern::AllToAll => self.chunks,
            Pattern::Gather => {
                if dst == 0 {
                    self.chunks
                } else {
                    0
                }
            }
        }
    }
}

/// How a node's participation ended when it did not end in `Done`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// A send link exhausted its retry budget (structured
    /// `SyncFailure` in the runtime).
    LinkDead {
        /// The unresponsive peer.
        peer: usize,
    },
    /// The hard receive deadline fired on a silent peer.
    RecvTimeout {
        /// The silent peer.
        peer: usize,
    },
    /// A peer hit an error and broadcast `Abort`; this node unwound
    /// with it (the runtime's cluster-wide poison).
    PeerAbort {
        /// The aborting peer.
        peer: usize,
    },
}

/// Per-node protocol state. `tx`/`rx` are the *runtime's* link state
/// machines; everything else is the model's ledger around them.
#[derive(Clone)]
pub struct NodeState {
    /// The node stopped executing entirely (fault injection).
    pub crashed: bool,
    /// Structured failure, if the node gave up.
    pub failed: Option<FailureKind>,
    /// Data envelopes not yet originated, per destination.
    pub remaining: Vec<u32>,
    /// Sender-side reliability state, per destination.
    pub tx: Vec<LinkTx>,
    /// Receiver-side integrity + dedup state, per source.
    pub rx: Vec<LinkRx>,
    /// Envelopes applied, per source.
    pub got: Vec<u32>,
    /// The apply ledger: every seq applied, per source. This is the
    /// monitor for the no-duplicate-apply property, independent of
    /// the dedup machinery under test.
    pub applied: Vec<BTreeSet<u64>>,
    /// Contributions written off to a degradation skip, per source.
    pub holes: Vec<u32>,
    /// Peers this node has skipped (late arrivals are acked and
    /// ignored, as in the runtime).
    pub skipped: Vec<bool>,
    /// Whether the degraded merge has been rescaled.
    pub rescaled: bool,
}

impl NodeState {
    fn alive(&self) -> bool {
        !self.crashed && self.failed.is_none()
    }
}

/// One in-flight message. `corrupted` is the ground-truth bit the
/// corruption-detection property checks against — the envelope's own
/// checksum is what the protocol under test gets to look at.
#[derive(Clone)]
pub struct Flight {
    /// The message itself.
    pub env: Envelope,
    /// Ground truth: a fault mangled this copy.
    pub corrupted: bool,
}

/// One global protocol state.
#[derive(Clone)]
pub struct State {
    /// Per-node state.
    pub nodes: Vec<NodeState>,
    /// Directed link multisets, indexed `src * n + dst`.
    pub net: Vec<Vec<Flight>>,
    /// Fault injections still allowed on this execution.
    pub faults_left: u32,
}

/// One enabled protocol or fault transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Originate the next data envelope on `src → dst`.
    Send {
        /// Sender.
        src: usize,
        /// Receiver.
        dst: usize,
    },
    /// Deliver in-flight message `idx` on `src → dst`.
    Deliver {
        /// Link source.
        src: usize,
        /// Link destination.
        dst: usize,
        /// Index into the link multiset.
        idx: usize,
    },
    /// A retransmission timer fires for `seq` on `src → dst`
    /// (enabled only when every copy is genuinely lost).
    Timeout {
        /// Sender.
        src: usize,
        /// Receiver.
        dst: usize,
        /// The in-flight sequence number.
        seq: u64,
    },
    /// Fault: remove in-flight message `idx` on `src → dst`.
    Drop {
        /// Link source.
        src: usize,
        /// Link destination.
        dst: usize,
        /// Index into the link multiset.
        idx: usize,
    },
    /// Fault: duplicate in-flight message `idx` on `src → dst`.
    Duplicate {
        /// Link source.
        src: usize,
        /// Link destination.
        dst: usize,
        /// Index into the link multiset.
        idx: usize,
    },
    /// Fault: flip a payload bit of data message `idx` on
    /// `src → dst`.
    Corrupt {
        /// Link source.
        src: usize,
        /// Link destination.
        dst: usize,
        /// Index into the link multiset.
        idx: usize,
    },
    /// Fault: node stops executing.
    Crash {
        /// The victim.
        node: usize,
    },
    /// The straggler detector at `node` concludes crashed `peer` is
    /// gone (heartbeat silence passed the threshold).
    DetectSilence {
        /// The observer.
        node: usize,
        /// The silent peer.
        peer: usize,
    },
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Send { src, dst } => write!(f, "send {src}->{dst}"),
            Action::Deliver { src, dst, idx } => write!(f, "deliver {src}->{dst}[{idx}]"),
            Action::Timeout { src, dst, seq } => write!(f, "timeout {src}->{dst} seq {seq}"),
            Action::Drop { src, dst, idx } => write!(f, "drop {src}->{dst}[{idx}]"),
            Action::Duplicate { src, dst, idx } => write!(f, "dup {src}->{dst}[{idx}]"),
            Action::Corrupt { src, dst, idx } => write!(f, "flip {src}->{dst}[{idx}]"),
            Action::Crash { node } => write!(f, "crash {node}"),
            Action::DetectSilence { node, peer } => write!(f, "silence {node} on {peer}"),
        }
    }
}

/// A property violation: the trace that led here refutes one of the
/// protocol's claimed invariants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A node is neither finished nor failed nor crashed, yet no
    /// transition is enabled — the protocol is stuck.
    Deadlock {
        /// The stuck node.
        node: usize,
    },
    /// A sequence number was applied twice on the same link.
    DuplicateApply {
        /// The receiver.
        node: usize,
        /// The link source.
        src: usize,
        /// The twice-applied sequence number.
        seq: u64,
    },
    /// A corrupted envelope was not classified `Corrupt` before the
    /// protocol acted on it.
    CorruptMissed {
        /// The receiver.
        node: usize,
        /// The link source.
        src: usize,
        /// The corrupted sequence number.
        seq: u64,
    },
    /// An envelope was transmitted more times than the retry budget
    /// allows.
    UnboundedRetry {
        /// The sender.
        node: usize,
        /// The peer.
        peer: usize,
        /// The transmission count that exceeded the budget.
        attempts: u32,
    },
    /// A node completed with degrade holes but never rescaled its
    /// merge.
    MissingRescale {
        /// The hole-carrying node.
        node: usize,
    },
    /// The scenario outgrew the state budget (a checker
    /// configuration error, not a protocol bug).
    StateSpaceExceeded {
        /// States visited when the limit tripped.
        states: usize,
    },
    /// The scenario outgrew the depth budget.
    DepthExceeded {
        /// The depth reached.
        depth: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Deadlock { node } => {
                write!(f, "deadlock: node {node} is stuck, not done and not failed")
            }
            Violation::DuplicateApply { node, src, seq } => {
                write!(f, "node {node} applied seq {seq} from {src} twice")
            }
            Violation::CorruptMissed { node, src, seq } => write!(
                f,
                "node {node} accepted corrupted seq {seq} from {src} without detecting it"
            ),
            Violation::UnboundedRetry {
                node,
                peer,
                attempts,
            } => write!(
                f,
                "node {node} transmitted to {peer} {attempts} times, past the retry budget"
            ),
            Violation::MissingRescale { node } => write!(
                f,
                "node {node} finished with degrade holes but an unrescaled merge"
            ),
            Violation::StateSpaceExceeded { states } => {
                write!(f, "state budget exceeded after {states} states")
            }
            Violation::DepthExceeded { depth } => write!(f, "depth budget exceeded at {depth}"),
        }
    }
}

/// The model: a configuration, an optional seeded defect, and the
/// machinery to enumerate/execute transitions over [`State`].
pub struct Model {
    cfg: Config,
    mutation: Option<Mutation>,
    /// Anchor for the `Instant` parameters the runtime link API
    /// takes; the checker is untimed, so one fixed instant serves
    /// every call and never influences exploration.
    base: Instant,
}

impl Model {
    /// A model for `cfg`, optionally with a seeded protocol defect.
    pub fn new(cfg: Config, mutation: Option<Mutation>) -> Self {
        Self {
            cfg,
            mutation,
            base: Instant::now(),
        }
    }

    /// The checked configuration.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// The initial state: nothing sent, network empty.
    pub fn initial(&self) -> State {
        let n = self.cfg.nodes;
        let backoff = Duration::from_millis(1);
        let nodes = (0..n)
            .map(|i| NodeState {
                crashed: false,
                failed: None,
                remaining: (0..n).map(|j| self.cfg.sends(i, j)).collect(),
                tx: (0..n)
                    .map(|_| LinkTx::new(self.cfg.retry_budget, backoff, backoff * 64))
                    .collect(),
                rx: (0..n).map(|_| LinkRx::new()).collect(),
                got: vec![0; n],
                applied: vec![BTreeSet::new(); n],
                holes: vec![0; n],
                skipped: vec![false; n],
                rescaled: false,
            })
            .collect();
        State {
            nodes,
            net: vec![Vec::new(); n * n],
            faults_left: self.cfg.fault_budget,
        }
    }

    fn link(&self, src: usize, dst: usize) -> usize {
        src * self.cfg.nodes + dst
    }

    /// True when some copy of data `seq` on `src → dst` — the data
    /// itself, or its ack/nack on the reverse path — is still in
    /// flight, i.e. the sender's timer firing now would be spurious.
    fn copy_in_flight(&self, state: &State, src: usize, dst: usize, seq: u64) -> bool {
        let forward = &state.net[self.link(src, dst)];
        if forward
            .iter()
            .any(|fl| fl.env.seq == seq && matches!(fl.env.body, Body::Data { .. }))
        {
            return true;
        }
        let reverse = &state.net[self.link(dst, src)];
        reverse.iter().any(
            |fl| matches!(fl.env.body, Body::Ack { seq: s } | Body::Nack { seq: s } if s == seq),
        )
    }

    /// Every transition enabled in `state`.
    pub fn enabled(&self, state: &State) -> Vec<Action> {
        let n = self.cfg.nodes;
        let mut out = Vec::new();
        for src in 0..n {
            let node = &state.nodes[src];
            for dst in 0..n {
                if src == dst {
                    continue;
                }
                if node.alive()
                    && node.remaining[dst] > 0
                    && (node.tx[dst].inflight_meta().len() as u32) < self.cfg.window
                {
                    out.push(Action::Send { src, dst });
                }
                if node.alive() {
                    for (seq, _) in node.tx[dst].inflight_meta() {
                        if !self.copy_in_flight(state, src, dst, seq) {
                            out.push(Action::Timeout { src, dst, seq });
                        }
                    }
                }
                let link = &state.net[self.link(src, dst)];
                for idx in 0..link.len() {
                    out.push(Action::Deliver { src, dst, idx });
                    // Aborts are control-plane: the fault model never
                    // touches them (mirrors the runtime's direct,
                    // chaos-free abort channel).
                    let faultable = !matches!(link[idx].env.body, Body::Abort);
                    if state.faults_left > 0 && faultable {
                        if self.cfg.faults.drop {
                            out.push(Action::Drop { src, dst, idx });
                        }
                        if self.cfg.faults.duplicate {
                            out.push(Action::Duplicate { src, dst, idx });
                        }
                        if self.cfg.faults.corrupt
                            && !link[idx].corrupted
                            && matches!(
                                link[idx].env.body,
                                Body::Data {
                                    payload: Some(_),
                                    ..
                                }
                            )
                        {
                            out.push(Action::Corrupt { src, dst, idx });
                        }
                    }
                }
            }
        }
        if let Some(v) = self.cfg.crash {
            if state.nodes[v].alive() {
                out.push(Action::Crash { node: v });
            }
        }
        if self.mutation != Some(Mutation::DropHeartbeat) {
            for node in 0..n {
                for peer in 0..n {
                    if node == peer || !state.nodes[node].alive() {
                        continue;
                    }
                    let ns = &state.nodes[node];
                    let expected = self.cfg.sends(peer, node);
                    if state.nodes[peer].crashed
                        && !ns.skipped[peer]
                        && ns.got[peer] + ns.holes[peer] < expected
                    {
                        out.push(Action::DetectSilence { node, peer });
                    }
                }
            }
        }
        out
    }

    /// Executes `action` on a copy of `state`. `Err` is a property
    /// violation observed while executing it.
    pub fn step(&self, state: &State, action: &Action) -> Result<State, Violation> {
        let mut s = state.clone();
        match *action {
            Action::Send { src, dst } => {
                let node = &mut s.nodes[src];
                node.remaining[dst] -= 1;
                // The payload value is arbitrary; one word keeps the
                // checksum honest and the state space small.
                let payload = Some(Arc::new(Payload::Raw(vec![(src * 8 + dst) as f32])));
                let task = TaskId((dst as u32) << 8 | node.remaining[dst]);
                let env = node.tx[dst].prepare(src, task, payload, self.base);
                s.net[self.link(src, dst)].push(Flight {
                    env,
                    corrupted: false,
                });
            }
            Action::Deliver { src, dst, idx } => {
                let flight = s.net[self.link(src, dst)].remove(idx);
                if !s.nodes[dst].alive() {
                    return Ok(s); // drained at a crashed/failed node
                }
                match flight.env.body {
                    Body::Data { .. } => self.deliver_data(&mut s, src, dst, flight)?,
                    Body::Ack { seq } => {
                        s.nodes[dst].tx[src].on_ack(seq);
                    }
                    Body::Nack { seq } => {
                        self.retransmit(&mut s, dst, src, seq)?;
                    }
                    // A peer's failure reaches us: unwind with it.
                    // (No rebroadcast — the original failure already
                    // aborted every peer directly, as the runtime's
                    // broadcast_abort does.)
                    Body::Abort => {
                        s.nodes[dst].failed = Some(FailureKind::PeerAbort { peer: src });
                    }
                    // The model never originates Done/Ping wake-ups;
                    // tolerate and drain.
                    Body::Done | Body::Ping => {}
                }
            }
            Action::Timeout { src, dst, seq } => {
                // Untimed timer fire: drives the identical
                // attempt/budget path the runtime uses.
                self.retransmit(&mut s, src, dst, seq)?;
            }
            Action::Drop { src, dst, idx } => {
                s.net[self.link(src, dst)].remove(idx);
                s.faults_left -= 1;
            }
            Action::Duplicate { src, dst, idx } => {
                let copy = s.net[self.link(src, dst)][idx].clone();
                s.net[self.link(src, dst)].push(copy);
                s.faults_left -= 1;
            }
            Action::Corrupt { src, dst, idx } => {
                let flight = &mut s.net[self.link(src, dst)][idx];
                let bits = flight.env.payload_bits().max(1);
                let bit = (flight.env.seq * 7 + 3) % bits;
                flight.env.flip_bit(bit);
                flight.corrupted = true;
                s.faults_left -= 1;
            }
            Action::Crash { node } => {
                s.nodes[node].crashed = true;
            }
            Action::DetectSilence { node, peer } => {
                match self.cfg.policy {
                    Policy::Wait => {
                        // The hard receive deadline: a structured
                        // SyncFailure naming the silent peer.
                        self.fail_node(&mut s, node, FailureKind::RecvTimeout { peer });
                    }
                    Policy::Partial => {
                        let expected = self.cfg.sends(peer, node);
                        let ns = &mut s.nodes[node];
                        ns.holes[peer] = expected - ns.got[peer];
                        ns.skipped[peer] = true;
                        if self.mutation != Some(Mutation::ForgetRescale) {
                            // The shared rescale rule; merged counts
                            // the peers still contributing (self is
                            // the +1 inside degrade_rescale).
                            let merged = (0..self.cfg.nodes)
                                .filter(|&p| p != node && !ns.skipped[p])
                                .count();
                            let f = protocol::degrade_rescale(self.cfg.nodes, merged);
                            debug_assert!(f > 1.0, "skip with no holes");
                            ns.rescaled = true;
                        }
                    }
                }
            }
        }
        Ok(s)
    }

    /// Data arrival at an alive node: classify, apply, reply.
    fn deliver_data(
        &self,
        s: &mut State,
        src: usize,
        dst: usize,
        flight: Flight,
    ) -> Result<(), Violation> {
        let env = flight.env;
        let seq = env.seq;
        let node = &mut s.nodes[dst];
        let verdict = match self.mutation {
            // The real receiver: verify-then-dedup through LinkRx,
            // which itself delegates to protocol::classify.
            None
            | Some(Mutation::RetryWithoutBound)
            | Some(Mutation::DropHeartbeat)
            | Some(Mutation::ForgetRescale) => node.rx[src].accept(&env),
            // Seeded defect: the dedup check was deleted.
            Some(Mutation::SkipDedup) => protocol::classify(env.verify(), false),
            // Seeded defect: dedup runs before verification, so a
            // corrupted retransmission of a delivered seq is waved
            // through as a harmless duplicate.
            Some(Mutation::DedupBeforeVerify) => {
                if node.applied[src].contains(&seq) {
                    RxVerdict::Duplicate
                } else {
                    protocol::classify(env.verify(), false)
                }
            }
            // Seeded defect: the payload is applied before the
            // checksum is checked at all.
            Some(Mutation::ApplyBeforeVerify) => {
                if node.applied[src].contains(&seq) {
                    RxVerdict::Duplicate
                } else {
                    RxVerdict::Deliver
                }
            }
        };
        // Property: corruption is always detected before the
        // protocol acts on the envelope.
        if flight.corrupted && verdict != RxVerdict::Corrupt {
            return Err(Violation::CorruptMissed {
                node: dst,
                src,
                seq,
            });
        }
        match verdict {
            RxVerdict::Corrupt => {
                let reply = Envelope::control(dst, Body::Nack { seq });
                s.net[self.link(dst, src)].push(Flight {
                    env: reply,
                    corrupted: false,
                });
            }
            RxVerdict::Duplicate => {
                let reply = Envelope::control(dst, Body::Ack { seq });
                s.net[self.link(dst, src)].push(Flight {
                    env: reply,
                    corrupted: false,
                });
            }
            RxVerdict::Deliver => {
                if node.skipped[src] {
                    // Late arrival from a skipped peer: ack and
                    // ignore, exactly as the runtime does.
                } else {
                    // Property: no seq is ever applied twice.
                    if !node.applied[src].insert(seq) {
                        return Err(Violation::DuplicateApply {
                            node: dst,
                            src,
                            seq,
                        });
                    }
                    node.got[src] += 1;
                }
                let reply = Envelope::control(dst, Body::Ack { seq });
                s.net[self.link(dst, src)].push(Flight {
                    env: reply,
                    corrupted: false,
                });
            }
        }
        Ok(())
    }

    /// Another transmission of `seq` on `src → dst` (timer fire or
    /// nack), through the runtime's bounded-retry bookkeeping.
    fn retransmit(&self, s: &mut State, src: usize, dst: usize, seq: u64) -> Result<(), Violation> {
        match s.nodes[src].tx[dst].on_nack(seq, self.base) {
            Ok(Some(env)) => {
                s.net[self.link(src, dst)].push(Flight {
                    env,
                    corrupted: false,
                });
            }
            Ok(None) => {}
            Err(dead) => {
                if self.mutation == Some(Mutation::RetryWithoutBound) {
                    // Seeded defect: the mutated sender would ignore
                    // the budget and transmit again — which is
                    // exactly what the bounded-retransmit property
                    // observes and rejects.
                    return Err(Violation::UnboundedRetry {
                        node: src,
                        peer: dst,
                        attempts: dead.attempts,
                    });
                }
                self.fail_node(s, src, FailureKind::LinkDead { peer: dst });
            }
        }
        Ok(())
    }

    /// A structured failure: record it and broadcast `Abort` to
    /// every peer (control-plane, never fault-injected), exactly as
    /// the runtime's `broadcast_abort` unwinds the cluster — without
    /// it, a failed node's silence would deadlock peers still
    /// waiting on its data.
    fn fail_node(&self, s: &mut State, node: usize, kind: FailureKind) {
        s.nodes[node].failed = Some(kind);
        for peer in 0..self.cfg.nodes {
            if peer != node {
                s.net[self.link(node, peer)].push(Flight {
                    env: Envelope::control(node, Body::Abort),
                    corrupted: false,
                });
            }
        }
    }

    /// True when node `i` has finished cleanly: everything sent and
    /// acknowledged, everything expected applied or written off to
    /// rescaled holes.
    pub fn done(&self, state: &State, i: usize) -> bool {
        let node = &state.nodes[i];
        node.alive()
            && node.remaining.iter().all(|&r| r == 0)
            && node.tx.iter().all(|tx| tx.idle())
            && (0..self.cfg.nodes).all(|j| node.got[j] + node.holes[j] >= self.cfg.sends(j, i))
    }

    /// Checks the terminal-state properties once no transition is
    /// enabled: every node ended `Done`, crashed, or in a structured
    /// failure, and degraded completions rescaled their merge.
    pub fn terminal_violation(&self, state: &State) -> Option<Violation> {
        for i in 0..self.cfg.nodes {
            let node = &state.nodes[i];
            if node.crashed || node.failed.is_some() {
                continue;
            }
            if !self.done(state, i) {
                return Some(Violation::Deadlock { node: i });
            }
            if node.holes.iter().any(|&h| h > 0) && !node.rescaled {
                return Some(Violation::MissingRescale { node: i });
            }
        }
        None
    }

    /// A 64-bit fingerprint of `state` for the visited set. Timer
    /// deadlines are excluded (the checker is untimed) and each
    /// link's multiset is folded commutatively, so two states that
    /// differ only in queue order hash — and are — identical.
    pub fn fingerprint(&self, state: &State) -> u64 {
        let mut h = FP_OFFSET;
        h = fp(h, state.faults_left as u64);
        for node in &state.nodes {
            h = fp(h, node.crashed as u64);
            h = fp(
                h,
                match node.failed {
                    None => 0,
                    Some(FailureKind::LinkDead { peer }) => 0x10 | peer as u64,
                    Some(FailureKind::RecvTimeout { peer }) => 0x20 | peer as u64,
                    Some(FailureKind::PeerAbort { peer }) => 0x40 | peer as u64,
                },
            );
            h = fp(h, node.rescaled as u64);
            for j in 0..self.cfg.nodes {
                h = fp(h, node.remaining[j] as u64);
                h = fp(h, node.got[j] as u64);
                h = fp(h, node.holes[j] as u64);
                h = fp(h, node.skipped[j] as u64);
                h = fp(h, node.tx[j].next_seq());
                for (seq, attempt) in node.tx[j].inflight_meta() {
                    h = fp(h, 0xA000 | seq << 8 | attempt as u64);
                }
                for seq in node.rx[j].seen_seqs() {
                    h = fp(h, 0xB000 | seq);
                }
                for &seq in &node.applied[j] {
                    h = fp(h, 0xC000 | seq);
                }
            }
        }
        for link in &state.net {
            let mut fold: u64 = 0x9E37_79B9_7F4A_7C15;
            for flight in link {
                fold = fold.wrapping_add(flight_hash(flight));
            }
            h = fp(h, fold);
        }
        h
    }
}

const FP_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FP_PRIME: u64 = 0x0100_0000_01B3;

fn fp(h: u64, word: u64) -> u64 {
    (h ^ word).wrapping_mul(FP_PRIME)
}

fn flight_hash(flight: &Flight) -> u64 {
    let e = &flight.env;
    let mut h = FP_OFFSET;
    h = fp(h, e.src as u64);
    h = fp(h, e.seq);
    h = fp(h, e.attempt as u64);
    h = fp(h, e.checksum);
    h = fp(
        h,
        match e.body {
            Body::Data { .. } => 1,
            Body::Ack { seq } => 0x200 | seq,
            Body::Nack { seq } => 0x300 | seq,
            Body::Abort => 4,
            Body::Done => 5,
            Body::Ping => 6,
        },
    );
    fp(h, flight.corrupted as u64)
}

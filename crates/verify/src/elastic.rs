//! Bounded model checking of the elastic-membership layer: the
//! drain → evict → re-plan → resume epoch transition, plus mid-run
//! joins.
//!
//! The model drives the *actual* transition rules the runtime uses —
//! [`epoch_accepts`], [`drain_boundary`], [`member_slot`] from
//! `hipress_runtime::protocol` — through every interleaving of a
//! small-scope elastic run: workers advance with bounded pipeline
//! skew, a scripted victim crashes, survivors notice at any later
//! point (so every drain-time completion vector the skew allows is
//! reached), the coordinator drains and bumps, zombie frames from
//! the dead epoch chase the survivors, and a restarted worker asks
//! to join claiming any epoch it likes.
//!
//! Properties, checked on every reachable state:
//!
//! - **No deadlock**: every non-terminal state has an enabled
//!   transition — in particular, re-planned chunk ownership never
//!   references an evicted rank, so the next segment can always run.
//! - **No missed iteration**: the drain boundary never commits an
//!   iteration some survivor has not executed.
//! - **No double apply**: a global iteration is committed by exactly
//!   one epoch segment.
//! - **Stale-epoch rejection**: a data frame stamped with a dead
//!   epoch is never applied.
//! - **Join admission**: a joiner claiming an epoch the run has not
//!   reached is never admitted.
//!
//! The mutation harness seeds one defect per rule — skip the drain
//! minimum, accept stale frames, reuse the dead rank's chunk
//! ownership, admit future-epoch joins — and the same matrix must
//! refute each with a concrete counterexample trace.

use hipress_runtime::protocol::{drain_boundary, epoch_accepts, member_slot};
use std::collections::HashSet;
use std::fmt;

/// One small-scope elastic configuration.
#[derive(Debug, Clone)]
pub struct ElasticConfig {
    /// Worker count before any crash (2–4).
    pub nodes: usize,
    /// Total global iterations (2–4).
    pub iters: u32,
    /// Pipeline skew bound: how far one worker may run ahead of the
    /// slowest.
    pub window: u32,
    /// Scripted whole-rank loss: `(victim, global_iter)`.
    pub crash: Option<(usize, u32)>,
    /// The victim restarts and asks to join at the bump boundary.
    pub rejoin: bool,
}

/// One seeded elastic-protocol defect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElasticMutation {
    /// The drain uses the *maximum* survivor completion instead of
    /// the minimum: slower survivors get iterations committed that
    /// they never executed.
    SkipDrain,
    /// The epoch gate on data frames is deleted: a zombie frame from
    /// the dead epoch is applied after the bump.
    AcceptStaleEpoch,
    /// Chunk ownership is not recomputed at the bump: the evicted
    /// rank still owns its chunks, so the next segment cannot make
    /// progress.
    ReuseDeadOwner,
    /// The coordinator admits a joiner claiming an epoch the run has
    /// not reached.
    AdmitFutureJoin,
}

impl ElasticMutation {
    /// Every elastic defect class, in a stable order.
    pub const ALL: [ElasticMutation; 4] = [
        ElasticMutation::SkipDrain,
        ElasticMutation::AcceptStaleEpoch,
        ElasticMutation::ReuseDeadOwner,
        ElasticMutation::AdmitFutureJoin,
    ];

    /// Stable CLI name (`hipress verify --mutant <name>`).
    pub fn name(&self) -> &'static str {
        match self {
            ElasticMutation::SkipDrain => "skip-drain",
            ElasticMutation::AcceptStaleEpoch => "accept-stale-epoch",
            ElasticMutation::ReuseDeadOwner => "reuse-dead-owner",
            ElasticMutation::AdmitFutureJoin => "admit-future-join",
        }
    }

    /// Parses a CLI name.
    pub fn from_name(name: &str) -> Option<ElasticMutation> {
        ElasticMutation::ALL
            .iter()
            .copied()
            .find(|m| m.name() == name)
    }

    /// Whether this defect can manifest under `cfg` at all. Every
    /// elastic defect needs an epoch bump, hence a crash; a future
    /// join additionally needs a joiner. On eligible configurations
    /// detection must be 100%; elsewhere the checker must stay
    /// silent.
    pub fn eligible(&self, cfg: &ElasticConfig) -> bool {
        match self {
            ElasticMutation::AdmitFutureJoin => cfg.crash.is_some() && cfg.rejoin,
            // SkipDrain needs a drain whose min and max can differ:
            // at least two survivors and room for skew.
            ElasticMutation::SkipDrain => cfg.crash.is_some() && cfg.nodes >= 3 && cfg.window >= 1,
            _ => cfg.crash.is_some(),
        }
    }
}

/// A property violation found in the elastic model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElasticViolation {
    /// A non-terminal state with no enabled transition.
    Deadlock {
        /// The membership epoch the run wedged in.
        epoch: u8,
    },
    /// The drain committed an iteration a survivor never executed.
    MissedIteration {
        /// The survivor that was skipped past.
        node: usize,
        /// The global iteration committed on its behalf.
        iter: u32,
    },
    /// A global iteration was committed by two epoch segments.
    DoubleApply {
        /// The twice-committed global iteration.
        iter: u32,
    },
    /// A frame stamped with a dead epoch was applied after the bump.
    StaleApply {
        /// The survivor that applied it.
        node: usize,
        /// The dead epoch the frame was stamped with.
        frame_epoch: u8,
        /// The membership epoch at the time of the apply.
        epoch: u8,
    },
    /// A joiner claiming an epoch the run has not reached was let in.
    FutureJoinAdmitted {
        /// The epoch the joiner claimed.
        claimed: u8,
        /// The coordinator's actual epoch.
        epoch: u8,
    },
}

impl fmt::Display for ElasticViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElasticViolation::Deadlock { epoch } => {
                write!(f, "deadlock at epoch {epoch}: no transition enabled")
            }
            ElasticViolation::MissedIteration { node, iter } => write!(
                f,
                "iteration {iter} committed but node {node} never executed it"
            ),
            ElasticViolation::DoubleApply { iter } => {
                write!(f, "iteration {iter} committed by two epoch segments")
            }
            ElasticViolation::StaleApply {
                node,
                frame_epoch,
                epoch,
            } => write!(
                f,
                "node {node} applied a frame from dead epoch {frame_epoch} at epoch {epoch}"
            ),
            ElasticViolation::FutureJoinAdmitted { claimed, epoch } => write!(
                f,
                "join claiming future epoch {claimed} admitted at epoch {epoch}"
            ),
        }
    }
}

/// The result of exhausting (or refuting) one elastic scenario.
#[derive(Debug, Clone)]
pub struct ElasticOutcome {
    /// Distinct states explored.
    pub states: usize,
    /// Transitions taken.
    pub transitions: usize,
    /// Terminal (completed-run) states reached.
    pub terminals: usize,
    /// The first violation with the transition trace reaching it.
    pub violation: Option<(ElasticViolation, Vec<String>)>,
}

impl ElasticOutcome {
    /// True when the scope was exhausted with no violation.
    pub fn clean(&self) -> bool {
        self.violation.is_none()
    }
}

/// One worker's condition within the current epoch segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Node {
    /// Participating: `completed` segment-local iterations retired.
    Live { completed: u32 },
    /// Survivor that noticed the death and froze at its count.
    Halted { completed: u32 },
    /// Crashed (or not yet joined).
    Dead,
}

/// One explicit model state. Everything is small-scope, so the whole
/// struct hashes cheaply for the visited set.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct St {
    epoch: u8,
    /// Global iteration number of the current segment's start.
    base: u32,
    nodes: Vec<Node>,
    /// Whether the scripted crash has fired yet.
    crashed: bool,
    /// A death happened in the current epoch and has not been drained
    /// yet — survivors may notice and halt only while this holds.
    dead_pending: bool,
    /// Which epoch segment committed each global iteration
    /// (`None` = not yet committed). The double-apply ledger.
    committed: Vec<Option<u8>>,
    /// One zombie data frame per survivor may chase it across the
    /// bump, stamped with the epoch it was sent in.
    zombies: Vec<Option<u8>>,
    /// Per-chunk owner rank for the current segment (one chunk per
    /// original rank keeps the scope small but the rule visible).
    owners: Vec<usize>,
    done: bool,
}

struct Explorer<'a> {
    cfg: &'a ElasticConfig,
    mutation: Option<ElasticMutation>,
    visited: HashSet<St>,
    states: usize,
    transitions: usize,
    terminals: usize,
    violation: Option<(ElasticViolation, Vec<String>)>,
}

/// The sorted live-member rank list (the runtime's `members` vector).
fn live_ranks(nodes: &[Node]) -> Vec<u32> {
    nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| !matches!(n, Node::Dead))
        .map(|(r, _)| r as u32)
        .collect()
}

/// Recomputes chunk ownership for a member set exactly as the
/// runtime's dispatch does: chunk `c` goes to slot `c mod n_live`,
/// and [`member_slot`] inverts slot → rank over the sorted members.
fn replan_owners(members: &[u32], chunks: usize) -> Vec<usize> {
    (0..chunks)
        .map(|c| {
            let slot = (c % members.len()) as u32;
            let rank = members
                .iter()
                .copied()
                .find(|&r| member_slot(members, r) == Some(slot))
                .expect("every slot has a member");
            rank as usize
        })
        .collect()
}

impl Explorer<'_> {
    fn fail(&mut self, v: ElasticViolation, trail: &[String]) {
        let mut trace = trail.to_vec();
        trace.push(format!("=> {v}"));
        self.violation = Some((v, trace));
    }

    /// The segment length from `base` (elastic segments always run to
    /// the configured end; boundaries are created by drains).
    fn seg_len(&self, base: u32) -> u32 {
        self.cfg.iters - base
    }

    /// Depth-first exhaustion. Returns false once a violation is
    /// recorded so the unwind is immediate.
    fn dfs(&mut self, st: &St, trail: &mut Vec<String>) -> bool {
        if self.violation.is_some() {
            return false;
        }
        if !self.visited.insert(st.clone()) {
            return true;
        }
        self.states += 1;

        if st.done {
            self.terminals += 1;
            return true;
        }

        let mut enabled = 0usize;

        // ---- advance(r): one worker retires one iteration ---------
        let live = live_ranks(&st.nodes);
        let seg = self.seg_len(st.base);
        let min_completed = st
            .nodes
            .iter()
            .filter_map(|n| match n {
                Node::Live { completed } | Node::Halted { completed } => Some(*completed),
                Node::Dead => None,
            })
            .min()
            .unwrap_or(0);
        for &r in &live {
            let r = r as usize;
            let Node::Live { completed } = st.nodes[r] else {
                continue;
            };
            if completed >= seg || completed >= min_completed + self.cfg.window {
                continue;
            }
            // An iteration only retires when every chunk's owner is
            // alive to serve its share — the ownership re-plan rule.
            if st.owners.iter().any(|&o| matches!(st.nodes[o], Node::Dead)) {
                continue;
            }
            // The scripted victim cannot run past its crash point.
            if let Some((victim, at)) = self.cfg.crash {
                if r == victim && !st.crashed && st.base + completed >= at {
                    continue;
                }
            }
            enabled += 1;
            let mut next = st.clone();
            next.nodes[r] = Node::Live {
                completed: completed + 1,
            };
            trail.push(format!("advance(n{r} -> {})", completed + 1));
            let ok = self.dfs(&next, trail);
            trail.pop();
            if !ok {
                return false;
            }
        }

        // ---- crash: the scripted victim dies ----------------------
        if let Some((victim, at)) = self.cfg.crash {
            if !st.crashed {
                if let Node::Live { completed } = st.nodes[victim] {
                    if st.base + completed >= at {
                        enabled += 1;
                        let mut next = st.clone();
                        next.nodes[victim] = Node::Dead;
                        next.crashed = true;
                        next.dead_pending = true;
                        // Its last-breath frames are now zombies of
                        // this epoch, one per survivor.
                        for (r, z) in next.zombies.iter_mut().enumerate() {
                            if r != victim && !matches!(st.nodes[r], Node::Dead) {
                                *z = Some(st.epoch);
                            }
                        }
                        trail.push(format!("crash(n{victim} at iter {})", st.base + completed));
                        let ok = self.dfs(&next, trail);
                        trail.pop();
                        if !ok {
                            return false;
                        }
                    }
                }
            }
        }

        // ---- notice(r): a survivor notices the death and halts ----
        if st.dead_pending {
            for &r in &live {
                let r = r as usize;
                let Node::Live { completed } = st.nodes[r] else {
                    continue;
                };
                enabled += 1;
                let mut next = st.clone();
                next.nodes[r] = Node::Halted { completed };
                trail.push(format!("halt(n{r} at {completed})"));
                let ok = self.dfs(&next, trail);
                trail.pop();
                if !ok {
                    return false;
                }
            }
        }

        // ---- zombie(r): a dead-epoch frame reaches a survivor -----
        for (r, z) in st.zombies.iter().enumerate() {
            let Some(frame_epoch) = *z else { continue };
            if matches!(st.nodes[r], Node::Dead) {
                continue;
            }
            enabled += 1;
            let accepted = if self.mutation == Some(ElasticMutation::AcceptStaleEpoch) {
                true
            } else {
                epoch_accepts(u64::from(st.epoch), u64::from(frame_epoch))
            };
            let mut next = st.clone();
            next.zombies[r] = None;
            trail.push(format!(
                "deliver(zombie epoch {frame_epoch} -> n{r}, {})",
                if accepted { "applied" } else { "rejected" }
            ));
            if accepted && frame_epoch != st.epoch {
                self.fail(
                    ElasticViolation::StaleApply {
                        node: r,
                        frame_epoch,
                        epoch: st.epoch,
                    },
                    trail,
                );
                trail.pop();
                return false;
            }
            let ok = self.dfs(&next, trail);
            trail.pop();
            if !ok {
                return false;
            }
        }

        // ---- drain: every survivor halted → evict, bump, resume ---
        let survivors_all_halted = st.dead_pending
            && st
                .nodes
                .iter()
                .all(|n| matches!(n, Node::Halted { .. } | Node::Dead));
        if survivors_all_halted {
            enabled += 1;
            let completions: Vec<u32> = st
                .nodes
                .iter()
                .filter_map(|n| match n {
                    Node::Halted { completed } => Some(*completed),
                    _ => None,
                })
                .collect();
            let local = if self.mutation == Some(ElasticMutation::SkipDrain) {
                completions.iter().copied().max().unwrap_or(0)
            } else {
                drain_boundary(&completions)
            };
            let boundary = st.base + local;
            // Commit [base, boundary) — each survivor must actually
            // have executed everything committed on its behalf.
            let mut next = st.clone();
            trail.push(format!("drain(boundary {boundary})"));
            for (r, n) in st.nodes.iter().enumerate() {
                let Node::Halted { completed } = n else {
                    continue;
                };
                if *completed < local {
                    self.fail(
                        ElasticViolation::MissedIteration {
                            node: r,
                            iter: st.base + completed,
                        },
                        trail,
                    );
                    trail.pop();
                    return false;
                }
            }
            for i in st.base..boundary {
                if next.committed[i as usize].is_some() {
                    self.fail(ElasticViolation::DoubleApply { iter: i }, trail);
                    trail.pop();
                    return false;
                }
                next.committed[i as usize] = Some(st.epoch);
            }
            // Evict, bump, re-plan ownership over the survivors.
            next.epoch += 1;
            next.base = boundary;
            next.dead_pending = false;
            let members = live_ranks(&next.nodes);
            for n in next.nodes.iter_mut() {
                if let Node::Halted { .. } = n {
                    *n = Node::Live { completed: 0 };
                }
            }
            if self.mutation != Some(ElasticMutation::ReuseDeadOwner) {
                next.owners = replan_owners(&members, next.owners.len());
            }
            // A restarted victim dials in claiming some epoch; every
            // claim the wire allows is explored.
            if self.cfg.rejoin {
                if let Some((victim, _)) = self.cfg.crash {
                    for claimed in [0, next.epoch, next.epoch + 1] {
                        let admit = if self.mutation == Some(ElasticMutation::AdmitFutureJoin) {
                            true
                        } else {
                            claimed <= next.epoch
                        };
                        let mut joined = next.clone();
                        trail.push(format!(
                            "join(n{victim} claims epoch {claimed}, {})",
                            if admit { "admitted" } else { "refused" }
                        ));
                        if admit {
                            if claimed > next.epoch {
                                self.fail(
                                    ElasticViolation::FutureJoinAdmitted {
                                        claimed,
                                        epoch: next.epoch,
                                    },
                                    trail,
                                );
                                trail.pop();
                                trail.pop();
                                return false;
                            }
                            joined.nodes[victim] = Node::Live { completed: 0 };
                            let members = live_ranks(&joined.nodes);
                            if self.mutation != Some(ElasticMutation::ReuseDeadOwner) {
                                joined.owners = replan_owners(&members, joined.owners.len());
                            }
                        }
                        let ok = self.dfs(&joined, trail);
                        trail.pop();
                        if !ok {
                            trail.pop();
                            return false;
                        }
                    }
                    trail.pop();
                    // The join transitions covered this drain.
                    self.transitions += 3;
                    return self.check_stuck(st, enabled, trail);
                }
            }
            let ok = self.dfs(&next, trail);
            trail.pop();
            if !ok {
                return false;
            }
        }

        // ---- finish: every member retired the whole segment -------
        let all_finished = !live.is_empty()
            && !st.dead_pending
            && st.nodes.iter().all(|n| {
                matches!(n, Node::Live { completed } if *completed >= seg)
                    || matches!(n, Node::Dead)
            });
        if all_finished {
            enabled += 1;
            let mut next = st.clone();
            trail.push(format!("finish(epoch {})", st.epoch));
            for i in st.base..self.cfg.iters {
                if next.committed[i as usize].is_some() {
                    self.fail(ElasticViolation::DoubleApply { iter: i }, trail);
                    trail.pop();
                    return false;
                }
                next.committed[i as usize] = Some(st.epoch);
            }
            next.done = true;
            let ok = self.dfs(&next, trail);
            trail.pop();
            if !ok {
                return false;
            }
        }

        self.transitions += enabled;
        self.check_stuck(st, enabled, trail)
    }

    /// Deadlock property: a non-terminal state must enable something.
    fn check_stuck(&mut self, st: &St, enabled: usize, trail: &[String]) -> bool {
        if enabled == 0 && !st.done {
            self.fail(ElasticViolation::Deadlock { epoch: st.epoch }, trail);
            return false;
        }
        true
    }
}

/// Exhausts one elastic scenario, optionally with a seeded defect.
pub fn check_elastic(cfg: &ElasticConfig, mutation: Option<ElasticMutation>) -> ElasticOutcome {
    let initial = St {
        epoch: 0,
        base: 0,
        nodes: vec![Node::Live { completed: 0 }; cfg.nodes],
        crashed: false,
        dead_pending: false,
        committed: vec![None; cfg.iters as usize],
        zombies: vec![None; cfg.nodes],
        owners: (0..cfg.nodes).collect(),
        done: false,
    };
    let mut ex = Explorer {
        cfg,
        mutation,
        visited: HashSet::new(),
        states: 0,
        transitions: 0,
        terminals: 0,
        violation: None,
    };
    let mut trail = Vec::new();
    ex.dfs(&initial, &mut trail);
    ElasticOutcome {
        states: ex.states,
        transitions: ex.transitions,
        terminals: ex.terminals,
        violation: ex.violation,
    }
}

/// One named elastic scenario of the verification matrix.
#[derive(Debug, Clone)]
pub struct ElasticScenario {
    /// Stable name (shown in the `hipress verify` table).
    pub name: &'static str,
    /// The configuration to exhaust.
    pub cfg: ElasticConfig,
}

/// The elastic small-scope matrix `hipress verify` exhausts: a clean
/// run (one segment, no bump), crashes at the first, middle, and
/// last iteration, a crash with a rejoin, and a wider cluster where
/// drain-time skew is largest.
pub fn elastic_matrix() -> Vec<ElasticScenario> {
    vec![
        ElasticScenario {
            name: "el-2n-clean",
            cfg: ElasticConfig {
                nodes: 2,
                iters: 3,
                window: 2,
                crash: None,
                rejoin: false,
            },
        },
        ElasticScenario {
            name: "el-3n-crash-early",
            cfg: ElasticConfig {
                nodes: 3,
                iters: 3,
                window: 1,
                crash: Some((1, 0)),
                rejoin: false,
            },
        },
        ElasticScenario {
            name: "el-3n-crash-mid-w2",
            cfg: ElasticConfig {
                nodes: 3,
                iters: 3,
                window: 2,
                crash: Some((2, 1)),
                rejoin: false,
            },
        },
        ElasticScenario {
            name: "el-3n-crash-last",
            cfg: ElasticConfig {
                nodes: 3,
                iters: 3,
                window: 1,
                crash: Some((0, 2)),
                rejoin: false,
            },
        },
        ElasticScenario {
            name: "el-3n-crash-rejoin",
            cfg: ElasticConfig {
                nodes: 3,
                iters: 3,
                window: 1,
                crash: Some((1, 1)),
                rejoin: true,
            },
        },
        ElasticScenario {
            name: "el-4n-crash-w2",
            cfg: ElasticConfig {
                nodes: 4,
                iters: 3,
                window: 2,
                crash: Some((3, 1)),
                rejoin: false,
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_exhausted_clean() {
        for s in elastic_matrix() {
            let out = check_elastic(&s.cfg, None);
            assert!(
                out.clean(),
                "{}: {:?}",
                s.name,
                out.violation.map(|(v, _)| v)
            );
            assert!(out.terminals > 0, "{}: no run ever completed", s.name);
        }
    }

    #[test]
    fn every_mutation_is_refuted_where_eligible() {
        for m in ElasticMutation::ALL {
            let mut caught = 0usize;
            for s in elastic_matrix() {
                let out = check_elastic(&s.cfg, Some(m));
                if m.eligible(&s.cfg) {
                    assert!(
                        !out.clean(),
                        "{}: seeded {} went undetected",
                        s.name,
                        m.name()
                    );
                    let (_, trace) = out.violation.expect("violation");
                    assert!(
                        trace.len() > 1,
                        "{}: counterexample for {} has no steps",
                        s.name,
                        m.name()
                    );
                    caught += 1;
                } else {
                    assert!(
                        out.clean(),
                        "{}: {} flagged where it cannot manifest (false positive)",
                        s.name,
                        m.name()
                    );
                }
            }
            assert!(caught > 0, "{} never eligible anywhere", m.name());
        }
    }

    #[test]
    fn skip_drain_names_the_missed_iteration() {
        let cfg = ElasticConfig {
            nodes: 3,
            iters: 3,
            window: 2,
            crash: Some((2, 1)),
            rejoin: false,
        };
        let out = check_elastic(&cfg, Some(ElasticMutation::SkipDrain));
        let (v, _) = out.violation.expect("skip-drain must be refuted");
        assert!(
            matches!(v, ElasticViolation::MissedIteration { .. }),
            "got {v}"
        );
    }

    #[test]
    fn stale_epoch_mutant_applies_a_dead_frame() {
        let cfg = ElasticConfig {
            nodes: 3,
            iters: 3,
            window: 1,
            crash: Some((1, 1)),
            rejoin: false,
        };
        let out = check_elastic(&cfg, Some(ElasticMutation::AcceptStaleEpoch));
        let (v, _) = out.violation.expect("accept-stale-epoch must be refuted");
        assert!(matches!(v, ElasticViolation::StaleApply { .. }), "got {v}");
    }

    #[test]
    fn dead_owner_wedges_the_next_segment() {
        let cfg = ElasticConfig {
            nodes: 3,
            iters: 3,
            window: 1,
            crash: Some((1, 1)),
            rejoin: false,
        };
        let out = check_elastic(&cfg, Some(ElasticMutation::ReuseDeadOwner));
        let (v, _) = out.violation.expect("reuse-dead-owner must be refuted");
        assert!(matches!(v, ElasticViolation::Deadlock { .. }), "got {v}");
    }
}

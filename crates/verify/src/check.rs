//! The bounded explicit-state explorer: depth-first search over
//! [`Model`](crate::model::Model) states with hash-compacted visited
//! tracking and sleep-set partial-order reduction.
//!
//! # Reduction
//!
//! Two transitions are *independent* when their resource footprints
//! are disjoint: each action touches a set of nodes (both endpoints
//! for link actions) and fault-injecting actions additionally share
//! a global budget token. Independent actions commute and never
//! enable or disable one another, so of the two orders `a·b` and
//! `b·a` only one needs exploring. Sleep sets implement exactly
//! that: after exploring `a` from a state, `a` enters the sleep set
//! of its siblings' subtrees and stays there until some dependent
//! action wakes it. Sleep sets prune *transitions*, never states, so
//! every reachable state (and every property violation) is still
//! visited — the savings show up in the `pruned` statistic, which
//! `hipress verify` prints per scenario.
//!
//! # Visited states
//!
//! States are fingerprinted to 64 bits ([`Model::fingerprint`]) —
//! classic hash compaction. A state is re-explored only when it is
//! reached with a sleep set that is not a superset of one it was
//! already explored under (a smaller sleep set means more outgoing
//! transitions would be considered).

use crate::model::{Action, Model, Policy, State, Violation};
use std::collections::HashMap;

/// Exploration budgets: tripping either is reported as a violation
/// (the scenario must be tuned, never silently truncated).
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Max distinct state fingerprints.
    pub max_states: usize,
    /// Max DFS depth (trace length).
    pub max_depth: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Self {
            max_states: 2_000_000,
            max_depth: 100_000,
        }
    }
}

/// Exploration statistics — the evidence that the scope was actually
/// exhausted and the reduction actually reduced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Distinct states visited.
    pub states: usize,
    /// Transitions executed.
    pub transitions: usize,
    /// Transitions pruned by the sleep-set reduction.
    pub pruned: usize,
    /// Arrivals at an already-explored state.
    pub revisits: usize,
    /// Deepest trace explored.
    pub max_depth: usize,
    /// Terminal states reached.
    pub terminals: usize,
}

/// The result of exhausting (or refuting) one scenario.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Exploration statistics.
    pub stats: Stats,
    /// The first property violation, with the action trace that
    /// reaches it. `None` means the scope was exhausted violation
    /// free.
    pub violation: Option<(Violation, Vec<String>)>,
}

impl Outcome {
    /// True when the scope was exhausted with no violation.
    pub fn clean(&self) -> bool {
        self.violation.is_none()
    }
}

/// An action's reduction identity: a stable key plus a resource
/// bitmask. Resources distinguish a node's *local* protocol state
/// `N(i)` (bits 0–3: remaining/tx/rx/ledger/holes) from the *channel
/// pair* `C{a,b}` (bits from 4: both directed queues between `a` and
/// `b` — one resource, because replies travel the reverse path and
/// the timeout guard reads both). Bit 31 is the global fault-budget
/// token every injecting action consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Footprint {
    key: u64,
    mask: u32,
}

const FAULT_TOKEN: u32 = 1 << 31;

fn node_bit(i: usize) -> u32 {
    1 << i
}

fn chan_bit(a: usize, b: usize) -> u32 {
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    1 << (4 + lo * 4 + hi)
}

/// Every channel pair touching node `i` — the resources a
/// structured failure's abort broadcast writes to.
fn all_chans(i: usize, n: usize) -> u32 {
    (0..n)
        .filter(|&o| o != i)
        .fold(0, |m, o| m | chan_bit(i, o))
}

/// The footprint is state-aware: an in-flight message's body decides
/// what delivering it *can* do (a nack can kill the link, and a dead
/// link broadcasts aborts onto every channel of the failing node).
/// Bodies never change while queued and index-addressed messages are
/// only disturbed by channel-sharing (dependent) actions, so a
/// footprint computed where the action was first seen stays valid.
fn footprint(model: &Model, state: &State, action: &Action) -> Footprint {
    use hipress_runtime::protocol::Body;
    let n = model.config().nodes;
    let (tag, mask, detail): (u64, u32, u64) = match *action {
        // Originating touches the sender's local state and the pair.
        Action::Send { src, dst } => (
            1,
            node_bit(src) | chan_bit(src, dst),
            (src as u64) << 8 | dst as u64,
        ),
        // Delivery touches the *receiver's* local state and the pair
        // (replies travel the reverse queue of the same pair); a
        // nack additionally reaches the retry bookkeeping, whose
        // dead-link path aborts every channel of the receiver.
        Action::Deliver { src, dst, idx } => {
            let body = &state.net[src * n + dst][idx].env.body;
            let extra = match body {
                Body::Nack { .. } => all_chans(dst, n),
                _ => 0,
            };
            (
                2,
                node_bit(dst) | chan_bit(src, dst) | extra,
                (src as u64) << 24 | (dst as u64) << 16 | idx as u64,
            )
        }
        // Timer fire touches the sender's tx, its guard reads both
        // directed queues of the pair, and budget exhaustion aborts
        // every channel of the sender.
        Action::Timeout { src, dst, seq } => (
            3,
            node_bit(src) | chan_bit(src, dst) | all_chans(src, n),
            (src as u64) << 24 | (dst as u64) << 16 | seq,
        ),
        Action::Drop { src, dst, idx } => (
            4,
            chan_bit(src, dst) | FAULT_TOKEN,
            (src as u64) << 24 | (dst as u64) << 16 | idx as u64,
        ),
        Action::Duplicate { src, dst, idx } => (
            5,
            chan_bit(src, dst) | FAULT_TOKEN,
            (src as u64) << 24 | (dst as u64) << 16 | idx as u64,
        ),
        Action::Corrupt { src, dst, idx } => (
            6,
            chan_bit(src, dst) | FAULT_TOKEN,
            (src as u64) << 24 | (dst as u64) << 16 | idx as u64,
        ),
        // Crashing changes the victim's behaviour (and delivery
        // drains at it): its node resource, plus the fault token.
        Action::Crash { node } => (7, node_bit(node) | FAULT_TOKEN, node as u64),
        // Silence detection reads the peer's crashed flag and writes
        // the observer's ledger; under Wait it fails the observer,
        // which aborts every channel the observer touches.
        Action::DetectSilence { node, peer } => {
            let extra = match model.config().policy {
                Policy::Wait => all_chans(node, n),
                Policy::Partial => 0,
            };
            (
                8,
                node_bit(node) | node_bit(peer) | extra,
                (node as u64) << 8 | peer as u64,
            )
        }
    };
    Footprint {
        key: tag << 56 | detail,
        mask,
    }
}

/// Disjoint resource masks commute and cannot enable/disable each
/// other — only one interleaving order needs exploring.
fn independent(a: &Footprint, b: &Footprint) -> bool {
    a.mask & b.mask == 0
}

struct Explorer<'m> {
    model: &'m Model,
    por: bool,
    limits: Limits,
    /// fingerprint → the sleep-set keys the state has been explored
    /// under (intersected across visits: the stored set shrinks as
    /// more of the state's transitions get explored).
    visited: HashMap<u64, Vec<u64>>,
    stats: Stats,
    violation: Option<(Violation, Vec<String>)>,
    trail: Vec<String>,
}

impl Explorer<'_> {
    fn fail(&mut self, v: Violation) {
        let mut trace = self.trail.clone();
        trace.push(format!("=> {v}"));
        self.violation = Some((v, trace));
    }

    /// Returns false to abort the whole search (violation recorded).
    ///
    /// State caching with sleep sets follows the classic revisit
    /// rule: a state stored with sleep set `T` has had every
    /// transition outside `T` explored. Arriving again with sleep
    /// `S ⊇ T` there is nothing new to do; arriving with a smaller
    /// `S` re-awakens exactly `T \ S` — those transitions run with
    /// everything else treated as already explored, and the stored
    /// set shrinks to `T ∩ S`.
    fn dfs(&mut self, state: &State, sleep: &[Footprint], depth: usize) -> bool {
        if depth > self.limits.max_depth {
            self.fail(Violation::DepthExceeded { depth });
            return false;
        }
        self.stats.max_depth = self.stats.max_depth.max(depth);

        let h = self.model.fingerprint(state);
        let sleep_keys: Vec<u64> = sleep.iter().map(|f| f.key).collect();
        // Keys whose transitions are newly awake on a revisit; None
        // on a first visit (everything outside `sleep` runs).
        let mut awaken: Option<Vec<u64>> = None;
        match self.visited.get_mut(&h) {
            None => {
                self.visited.insert(h, sleep_keys);
            }
            Some(stored) => {
                if stored.iter().all(|k| sleep_keys.contains(k)) {
                    self.stats.revisits += 1;
                    return true;
                }
                let wake: Vec<u64> = stored
                    .iter()
                    .copied()
                    .filter(|k| !sleep_keys.contains(k))
                    .collect();
                stored.retain(|k| sleep_keys.contains(k));
                awaken = Some(wake);
            }
        }
        self.stats.states = self.visited.len();
        if self.stats.states > self.limits.max_states {
            self.fail(Violation::StateSpaceExceeded {
                states: self.stats.states,
            });
            return false;
        }

        let enabled = self.model.enabled(state);
        if enabled.is_empty() {
            self.stats.terminals += 1;
            if let Some(v) = self.model.terminal_violation(state) {
                self.fail(v);
                return false;
            }
            return true;
        }

        // The working sleep set: the inherited one, plus — on a
        // revisit — every transition already explored on an earlier
        // visit (anything not newly awakened).
        let mut working: Vec<Footprint> = sleep.to_vec();
        let feet: Vec<Footprint> = enabled
            .iter()
            .map(|a| footprint(self.model, state, a))
            .collect();
        if let Some(wake) = &awaken {
            for f in &feet {
                if !wake.contains(&f.key) && !working.iter().any(|w| w.key == f.key) {
                    working.push(*f);
                }
            }
        }

        // Sleep-set DFS: siblings already explored join the sleep
        // set of later subtrees until a dependent action wakes them.
        for (action, foot) in enabled.iter().zip(&feet) {
            if self.por && working.iter().any(|s| s.key == foot.key) {
                self.stats.pruned += 1;
                continue;
            }
            self.stats.transitions += 1;
            let next = match self.model.step(state, action) {
                Ok(next) => next,
                Err(v) => {
                    self.trail.push(action.to_string());
                    self.fail(v);
                    return false;
                }
            };
            let child_sleep: Vec<Footprint> = if self.por {
                working
                    .iter()
                    .filter(|s| independent(s, foot))
                    .copied()
                    .collect()
            } else {
                Vec::new()
            };
            self.trail.push(action.to_string());
            let go_on = self.dfs(&next, &child_sleep, depth + 1);
            self.trail.pop();
            if !go_on {
                return false;
            }
            working.push(*foot);
        }
        true
    }
}

/// Exhausts `model`'s state space (or refutes a property). `por`
/// toggles the sleep-set reduction — exploration is exhaustive
/// either way; the toggle exists so tests can demonstrate the
/// reduction reduces.
pub fn explore(model: &Model, por: bool, limits: Limits) -> Outcome {
    let mut ex = Explorer {
        model,
        por,
        limits,
        visited: HashMap::new(),
        stats: Stats::default(),
        violation: None,
        trail: Vec::new(),
    };
    let initial = model.initial();
    ex.dfs(&initial, &[], 0);
    Outcome {
        stats: ex.stats,
        violation: ex.violation,
    }
}

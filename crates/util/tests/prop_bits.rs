//! Randomized tests for the bit-level reader/writer duality, driven
//! by the workspace's own deterministic PRNGs.

use hipress_util::bits::{packed_len, BitReader, BitWriter};
use hipress_util::rng::{Rng64, Xoshiro256};

const CASES: usize = 256;

/// A sequence of (value, width) pairs where each value fits its width.
fn codes(rng: &mut impl Rng64) -> Vec<(u64, u32)> {
    let n = rng.index(200);
    (0..n)
        .map(|_| {
            let w = rng.range_u64(1, 65) as u32;
            let v = if w == 64 {
                rng.next_u64()
            } else {
                rng.next_below(1u64 << w)
            };
            (v, w)
        })
        .collect()
}

/// Every sequence of writes reads back identically.
#[test]
fn roundtrip() {
    let mut rng = Xoshiro256::new(0xB175_0001);
    for _ in 0..CASES {
        let codes = codes(&mut rng);
        let mut w = BitWriter::new();
        let mut total_bits = 0usize;
        for &(v, width) in &codes {
            w.write(v, width);
            total_bits += width as usize;
        }
        assert_eq!(w.bit_len(), total_bits);
        let bytes = w.finish();
        assert_eq!(bytes.len(), total_bits.div_ceil(8));
        let mut r = BitReader::new(&bytes);
        for &(v, width) in &codes {
            assert_eq!(r.read(width), Some(v));
        }
        // Anything left is only zero padding within the final byte.
        assert!(r.remaining_bits() < 8);
        while let Some(bit) = r.read_bit() {
            assert!(!bit, "padding bits must be zero");
        }
    }
}

/// Fixed-width packing density matches `packed_len`.
#[test]
fn fixed_width_density() {
    let mut rng = Xoshiro256::new(0xB175_0002);
    for _ in 0..CASES {
        let count = rng.index(500);
        let width = rng.range_u64(1, 17) as u32;
        let mut w = BitWriter::new();
        for i in 0..count {
            let mask = if width == 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
            w.write(i as u64 & mask, width);
        }
        assert_eq!(w.finish().len(), packed_len(count, width));
    }
}

/// Skipping n bits is equivalent to reading and discarding them.
#[test]
fn skip_equals_read() {
    let mut rng = Xoshiro256::new(0xB175_0003);
    for _ in 0..CASES {
        let bytes: Vec<u8> = (0..rng.range_u64(1, 64))
            .map(|_| rng.next_u64() as u8)
            .collect();
        let skip = rng.index(256);
        let mut r1 = BitReader::new(&bytes);
        let mut r2 = BitReader::new(&bytes);
        let available = r1.remaining_bits();
        let did_skip = r1.skip(skip).is_some();
        assert_eq!(did_skip, skip <= available);
        if did_skip {
            for _ in 0..skip {
                r2.read_bit();
            }
            assert_eq!(r1.bit_pos(), r2.bit_pos());
            // Remaining streams agree.
            loop {
                let (a, b) = (r1.read_bit(), r2.read_bit());
                assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
        }
    }
}

//! Property-based tests for the bit-level reader/writer duality.

use hipress_util::bits::{packed_len, BitReader, BitWriter};
use proptest::prelude::*;

/// A sequence of (value, width) pairs where each value fits its width.
fn codes() -> impl Strategy<Value = Vec<(u64, u32)>> {
    prop::collection::vec(
        (1u32..=64).prop_flat_map(|w| {
            let max = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
            (0..=max, Just(w))
        }),
        0..200,
    )
}

proptest! {
    /// Every sequence of writes reads back identically.
    #[test]
    fn roundtrip(codes in codes()) {
        let mut w = BitWriter::new();
        let mut total_bits = 0usize;
        for &(v, width) in &codes {
            w.write(v, width);
            total_bits += width as usize;
        }
        prop_assert_eq!(w.bit_len(), total_bits);
        let bytes = w.finish();
        prop_assert_eq!(bytes.len(), total_bits.div_ceil(8));
        let mut r = BitReader::new(&bytes);
        for &(v, width) in &codes {
            prop_assert_eq!(r.read(width), Some(v));
        }
        // Anything left is only zero padding within the final byte.
        prop_assert!(r.remaining_bits() < 8);
        while let Some(bit) = r.read_bit() {
            prop_assert!(!bit, "padding bits must be zero");
        }
    }

    /// Fixed-width packing density matches `packed_len`.
    #[test]
    fn fixed_width_density(count in 0usize..500, width in 1u32..=16) {
        let mut w = BitWriter::new();
        for i in 0..count {
            let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
            w.write(i as u64 & mask, width);
        }
        prop_assert_eq!(w.finish().len(), packed_len(count, width));
    }

    /// Skipping n bits is equivalent to reading and discarding them.
    #[test]
    fn skip_equals_read(bytes in prop::collection::vec(any::<u8>(), 1..64), skip in 0usize..256) {
        let mut r1 = BitReader::new(&bytes);
        let mut r2 = BitReader::new(&bytes);
        let available = r1.remaining_bits();
        let did_skip = r1.skip(skip).is_some();
        prop_assert_eq!(did_skip, skip <= available);
        if did_skip {
            for _ in 0..skip {
                r2.read_bit();
            }
            prop_assert_eq!(r1.bit_pos(), r2.bit_pos());
            // Remaining streams agree.
            loop {
                let (a, b) = (r1.read_bit(), r2.read_bit());
                prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
        }
    }
}

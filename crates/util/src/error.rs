//! The common error type shared across HiPress crates.

use std::fmt;

/// Errors produced by HiPress components.
///
/// Lower-level crates return these directly; higher-level crates wrap
/// them with context. Fallible APIs are preferred over panics
/// throughout the workspace; panics are reserved for programming
/// errors (violated internal invariants).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A compressed payload could not be decoded (truncated stream,
    /// bad magic, inconsistent metadata).
    Codec(String),
    /// A CompLL DSL program failed to lex, parse, or type-check.
    Dsl(String),
    /// An experiment or component was configured inconsistently
    /// (e.g., a ring of one node, a negative bandwidth).
    Config(String),
    /// The discrete-event simulation reached an invalid state
    /// (e.g., a dependency cycle between tasks).
    Sim(String),
    /// The planner could not produce a plan (e.g., missing profile).
    Plan(String),
    /// Static analysis rejected a task graph or CompLL program
    /// (`hipress-lint` diagnostics rendered into one message).
    Lint(String),
    /// The fault-tolerant runtime diagnosed a protocol failure — a
    /// dead link, a silent peer, a straggler the policy would not
    /// wait for — and unwound cleanly instead of hanging. Structured:
    /// it names the node that diagnosed it, the peer/link, and the
    /// task involved, so callers can act on *where*, not just *that*.
    Sync(SyncFailure),
}

/// What kind of synchronization failure was diagnosed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncFailureKind {
    /// No progress within the receive deadline: some peer went silent.
    RecvTimeout,
    /// A link exhausted its retransmission budget without an ack.
    LinkDead,
    /// A straggling peer tripped the detector under an abort policy.
    Straggler,
    /// A node stopped mid-protocol on an injected crash trigger.
    InjectedCrash,
    /// The node unwound because a peer broadcast an abort.
    Aborted,
}

impl SyncFailureKind {
    /// Severity rank for picking the root cause among several node
    /// errors: detections outrank the injected crash that caused
    /// them (the crashed node "knows" it crashed, but the *diagnosis*
    /// is what the protocol is being tested on), and both outrank the
    /// abort echoes they trigger.
    pub fn rank(self) -> u8 {
        match self {
            SyncFailureKind::RecvTimeout
            | SyncFailureKind::LinkDead
            | SyncFailureKind::Straggler => 0,
            SyncFailureKind::InjectedCrash => 1,
            SyncFailureKind::Aborted => 2,
        }
    }
}

/// A structured synchronization failure: what went wrong, observed by
/// whom, about which peer/link, at which task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncFailure {
    /// The failure class.
    pub kind: SyncFailureKind,
    /// The node that diagnosed (or suffered) the failure.
    pub node: usize,
    /// The peer / far end of the link involved, when known.
    pub peer: Option<usize>,
    /// The task id involved, when known.
    pub task: Option<u32>,
    /// Free-form detail (timings, budgets).
    pub detail: String,
}

impl fmt::Display for SyncFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            SyncFailureKind::RecvTimeout => write!(f, "node {} timed out", self.node)?,
            SyncFailureKind::LinkDead => write!(f, "node {}: link dead", self.node)?,
            SyncFailureKind::Straggler => write!(f, "node {}: straggler", self.node)?,
            SyncFailureKind::InjectedCrash => {
                write!(f, "node {} crashed mid-protocol", self.node)?;
            }
            SyncFailureKind::Aborted => write!(f, "node {} aborted", self.node)?,
        }
        if let Some(p) = self.peer {
            write!(f, " (peer node {p}")?;
            if let Some(t) = self.task {
                write!(f, ", task {t}")?;
            }
            write!(f, ")")?;
        } else if let Some(t) = self.task {
            write!(f, " (task {t})")?;
        }
        if !self.detail.is_empty() {
            write!(f, ": {}", self.detail)?;
        }
        Ok(())
    }
}

impl Error {
    /// Creates a [`Error::Codec`] with the given message.
    pub fn codec(msg: impl Into<String>) -> Self {
        Self::Codec(msg.into())
    }

    /// Creates a [`Error::Dsl`] with the given message.
    pub fn dsl(msg: impl Into<String>) -> Self {
        Self::Dsl(msg.into())
    }

    /// Creates a [`Error::Config`] with the given message.
    pub fn config(msg: impl Into<String>) -> Self {
        Self::Config(msg.into())
    }

    /// Creates a [`Error::Sim`] with the given message.
    pub fn sim(msg: impl Into<String>) -> Self {
        Self::Sim(msg.into())
    }

    /// Creates a [`Error::Plan`] with the given message.
    pub fn plan(msg: impl Into<String>) -> Self {
        Self::Plan(msg.into())
    }

    /// Creates a [`Error::Lint`] with the given message.
    pub fn lint(msg: impl Into<String>) -> Self {
        Self::Lint(msg.into())
    }

    /// Creates a [`Error::Sync`] from a structured failure.
    pub fn sync(failure: SyncFailure) -> Self {
        Self::Sync(failure)
    }

    /// The structured synchronization failure, if this is one.
    pub fn as_sync(&self) -> Option<&SyncFailure> {
        match self {
            Error::Sync(f) => Some(f),
            _ => None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Codec(m) => write!(f, "codec error: {m}"),
            Error::Dsl(m) => write!(f, "DSL error: {m}"),
            Error::Config(m) => write!(f, "configuration error: {m}"),
            Error::Sim(m) => write!(f, "simulation error: {m}"),
            Error::Plan(m) => write!(f, "planner error: {m}"),
            Error::Lint(m) => write!(f, "lint error: {m}"),
            Error::Sync(s) => write!(f, "sync error: {s}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        assert_eq!(
            Error::codec("truncated").to_string(),
            "codec error: truncated"
        );
        assert_eq!(Error::dsl("bad token").to_string(), "DSL error: bad token");
        assert_eq!(
            Error::config("ring of 1").to_string(),
            "configuration error: ring of 1"
        );
        assert_eq!(Error::sim("cycle").to_string(), "simulation error: cycle");
        assert_eq!(
            Error::plan("no profile").to_string(),
            "planner error: no profile"
        );
        assert_eq!(Error::lint("race").to_string(), "lint error: race");
    }

    #[test]
    fn sync_failure_names_node_link_task() {
        let f = SyncFailure {
            kind: SyncFailureKind::LinkDead,
            node: 0,
            peer: Some(1),
            task: Some(42),
            detail: "8 retransmissions unacknowledged".into(),
        };
        let s = Error::sync(f.clone()).to_string();
        assert_eq!(
            s,
            "sync error: node 0: link dead (peer node 1, task 42): \
             8 retransmissions unacknowledged"
        );
        assert_eq!(Error::sync(f.clone()).as_sync(), Some(&f));
        assert_eq!(Error::codec("x").as_sync(), None);
        let t = SyncFailure {
            kind: SyncFailureKind::InjectedCrash,
            node: 2,
            peer: None,
            task: None,
            detail: String::new(),
        };
        assert_eq!(t.to_string(), "node 2 crashed mid-protocol");
    }

    #[test]
    fn sync_failure_ranks_detections_first() {
        assert!(SyncFailureKind::RecvTimeout.rank() < SyncFailureKind::InjectedCrash.rank());
        assert!(SyncFailureKind::LinkDead.rank() < SyncFailureKind::Aborted.rank());
        assert!(SyncFailureKind::Straggler.rank() < SyncFailureKind::InjectedCrash.rank());
        assert!(SyncFailureKind::InjectedCrash.rank() < SyncFailureKind::Aborted.rank());
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&Error::codec("x"));
    }
}

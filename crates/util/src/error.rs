//! The common error type shared across HiPress crates.

use std::fmt;

/// Errors produced by HiPress components.
///
/// Lower-level crates return these directly; higher-level crates wrap
/// them with context. Fallible APIs are preferred over panics
/// throughout the workspace; panics are reserved for programming
/// errors (violated internal invariants).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A compressed payload could not be decoded (truncated stream,
    /// bad magic, inconsistent metadata).
    Codec(String),
    /// A CompLL DSL program failed to lex, parse, or type-check.
    Dsl(String),
    /// An experiment or component was configured inconsistently
    /// (e.g., a ring of one node, a negative bandwidth).
    Config(String),
    /// The discrete-event simulation reached an invalid state
    /// (e.g., a dependency cycle between tasks).
    Sim(String),
    /// The planner could not produce a plan (e.g., missing profile).
    Plan(String),
    /// Static analysis rejected a task graph or CompLL program
    /// (`hipress-lint` diagnostics rendered into one message).
    Lint(String),
}

impl Error {
    /// Creates a [`Error::Codec`] with the given message.
    pub fn codec(msg: impl Into<String>) -> Self {
        Self::Codec(msg.into())
    }

    /// Creates a [`Error::Dsl`] with the given message.
    pub fn dsl(msg: impl Into<String>) -> Self {
        Self::Dsl(msg.into())
    }

    /// Creates a [`Error::Config`] with the given message.
    pub fn config(msg: impl Into<String>) -> Self {
        Self::Config(msg.into())
    }

    /// Creates a [`Error::Sim`] with the given message.
    pub fn sim(msg: impl Into<String>) -> Self {
        Self::Sim(msg.into())
    }

    /// Creates a [`Error::Plan`] with the given message.
    pub fn plan(msg: impl Into<String>) -> Self {
        Self::Plan(msg.into())
    }

    /// Creates a [`Error::Lint`] with the given message.
    pub fn lint(msg: impl Into<String>) -> Self {
        Self::Lint(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Codec(m) => write!(f, "codec error: {m}"),
            Error::Dsl(m) => write!(f, "DSL error: {m}"),
            Error::Config(m) => write!(f, "configuration error: {m}"),
            Error::Sim(m) => write!(f, "simulation error: {m}"),
            Error::Plan(m) => write!(f, "planner error: {m}"),
            Error::Lint(m) => write!(f, "lint error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        assert_eq!(
            Error::codec("truncated").to_string(),
            "codec error: truncated"
        );
        assert_eq!(Error::dsl("bad token").to_string(), "DSL error: bad token");
        assert_eq!(
            Error::config("ring of 1").to_string(),
            "configuration error: ring of 1"
        );
        assert_eq!(Error::sim("cycle").to_string(), "simulation error: cycle");
        assert_eq!(
            Error::plan("no profile").to_string(),
            "planner error: no profile"
        );
        assert_eq!(Error::lint("race").to_string(), "lint error: race");
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&Error::codec("x"));
    }
}

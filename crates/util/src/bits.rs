//! LSB-first bit-level I/O over byte buffers.
//!
//! The quantization compressors (onebit, TBQ, TernGrad) emit streams of
//! 1-, 2-, or 4-bit codes, and CompLL's generated kernels store arrays
//! of sub-byte types (`uint1`, `uint2`, `uint4`) compactly. Both use
//! this module.
//!
//! Bits are packed least-significant-bit first within each byte: the
//! first value written occupies the lowest bits of byte 0. The total
//! number of bits is padded with zeros to a byte boundary, mirroring
//! the paper's CompLL code generator ("minimal zero padding to ensure
//! the total number of bits is a multiple of 8", §4.3).

/// Incremental writer that packs variable-width codes into a `Vec<u8>`.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Number of valid bits in the last byte of `buf` (0 means the last
    /// byte is full or `buf` is empty).
    partial_bits: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty writer with room for `bits` bits.
    pub fn with_capacity_bits(bits: usize) -> Self {
        Self {
            buf: Vec::with_capacity(bits.div_ceil(8)),
            partial_bits: 0,
        }
    }

    /// Appends the low `width` bits of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64, or if `value` has
    /// bits set above `width`.
    pub fn write(&mut self, value: u64, width: u32) {
        assert!((1..=64).contains(&width), "width must be in 1..=64");
        assert!(
            width == 64 || value < (1u64 << width),
            "value {value} does not fit in {width} bits"
        );
        let mut remaining = width;
        let mut v = value;
        while remaining > 0 {
            if self.partial_bits == 0 {
                self.buf.push(0);
                self.partial_bits = 0;
            }
            let free = 8 - self.partial_bits;
            let take = free.min(remaining);
            let last = self.buf.last_mut().expect("buffer is non-empty here");
            *last |= ((v & ((1u16 << take) as u64 - 1)) as u8) << self.partial_bits;
            v >>= take;
            self.partial_bits = (self.partial_bits + take) % 8;
            remaining -= take;
            // If we filled the byte exactly, partial_bits wrapped to 0 and
            // the next iteration pushes a fresh byte.
            if remaining > 0 && self.partial_bits == 0 {
                continue;
            }
        }
    }

    /// Appends a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        self.write(bit as u64, 1);
    }

    /// Appends a full byte (8 bits).
    pub fn write_u8(&mut self, v: u8) {
        self.write(v as u64, 8);
    }

    /// Appends a little-endian `u32`.
    pub fn write_u32(&mut self, v: u32) {
        self.write(v as u64, 32);
    }

    /// Appends a little-endian `f32` bit pattern.
    pub fn write_f32(&mut self, v: f32) {
        self.write(v.to_bits() as u64, 32);
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.partial_bits == 0 {
            self.buf.len() * 8
        } else {
            (self.buf.len() - 1) * 8 + self.partial_bits as usize
        }
    }

    /// Finishes the stream, zero-padding to a byte boundary, and
    /// returns the packed bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Sequential reader over a bit stream produced by [`BitWriter`].
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    /// Absolute bit cursor.
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `buf`, starting at bit 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Number of bits remaining.
    pub fn remaining_bits(&self) -> usize {
        self.buf.len() * 8 - self.pos
    }

    /// Current absolute bit position.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }

    /// Reads the next `width` bits as the low bits of a `u64`.
    ///
    /// Returns `None` if fewer than `width` bits remain.
    pub fn read(&mut self, width: u32) -> Option<u64> {
        assert!((1..=64).contains(&width), "width must be in 1..=64");
        if self.remaining_bits() < width as usize {
            return None;
        }
        let mut out = 0u64;
        let mut got = 0u32;
        while got < width {
            let byte = self.buf[self.pos / 8];
            let bit_off = (self.pos % 8) as u32;
            let avail = 8 - bit_off;
            let take = avail.min(width - got);
            let mask = ((1u16 << take) - 1) as u8;
            let chunk = (byte >> bit_off) & mask;
            out |= (chunk as u64) << got;
            got += take;
            self.pos += take as usize;
        }
        Some(out)
    }

    /// Reads one bit.
    pub fn read_bit(&mut self) -> Option<bool> {
        self.read(1).map(|b| b != 0)
    }

    /// Reads a full byte.
    pub fn read_u8(&mut self) -> Option<u8> {
        self.read(8).map(|v| v as u8)
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&mut self) -> Option<u32> {
        self.read(32).map(|v| v as u32)
    }

    /// Reads a little-endian `f32` bit pattern.
    pub fn read_f32(&mut self) -> Option<f32> {
        self.read(32).map(|v| f32::from_bits(v as u32))
    }

    /// Skips `bits` bits. Returns `None` (without moving) if fewer
    /// remain.
    pub fn skip(&mut self, bits: usize) -> Option<()> {
        if self.remaining_bits() < bits {
            return None;
        }
        self.pos += bits;
        Some(())
    }
}

/// Number of bytes needed to store `count` values of `width` bits each.
pub fn packed_len(count: usize, width: u32) -> usize {
    (count * width as usize).div_ceil(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single_bits() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true];
        for &b in &pattern {
            w.write_bit(b);
        }
        assert_eq!(w.bit_len(), 9);
        let bytes = w.finish();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit(), Some(b));
        }
    }

    #[test]
    fn roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        w.write(0b101, 3);
        w.write(0xDEADBEEF, 32);
        w.write(1, 1);
        w.write(0x3F, 6);
        w.write(u64::MAX, 64);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read(3), Some(0b101));
        assert_eq!(r.read(32), Some(0xDEADBEEF));
        assert_eq!(r.read(1), Some(1));
        assert_eq!(r.read(6), Some(0x3F));
        assert_eq!(r.read(64), Some(u64::MAX));
    }

    #[test]
    fn f32_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bit(true); // Misalign on purpose.
        w.write_f32(std::f32::consts::PI);
        w.write_f32(-0.0);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bit(), Some(true));
        assert_eq!(r.read_f32(), Some(std::f32::consts::PI));
        assert_eq!(r.read_f32().map(f32::to_bits), Some((-0.0f32).to_bits()));
    }

    #[test]
    fn read_past_end_returns_none() {
        let mut w = BitWriter::new();
        w.write(0b11, 2);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read(2), Some(0b11));
        // Padding bits are readable (they are real zero bits)...
        assert_eq!(r.read(6), Some(0));
        // ...but past the final byte there is nothing.
        assert_eq!(r.read(1), None);
    }

    #[test]
    fn packed_len_matches_writer() {
        for count in 0..100 {
            for width in [1u32, 2, 3, 4, 7, 8, 13] {
                let mut w = BitWriter::new();
                for i in 0..count {
                    w.write((i as u64) & ((1u64 << width) - 1), width);
                }
                assert_eq!(w.finish().len(), packed_len(count, width));
            }
        }
    }

    #[test]
    fn bit_len_tracks_writes() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write(1, 1);
        assert_eq!(w.bit_len(), 1);
        w.write(0, 7);
        assert_eq!(w.bit_len(), 8);
        w.write(0x1FF, 9);
        assert_eq!(w.bit_len(), 17);
    }

    #[test]
    fn skip_moves_cursor() {
        let mut w = BitWriter::new();
        w.write_u32(0xABCD_1234);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.skip(8), Some(()));
        assert_eq!(r.read(8), Some(0x12));
        assert_eq!(r.skip(100), None);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_panics() {
        BitWriter::new().write(4, 2);
    }
}

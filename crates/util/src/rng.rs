//! Deterministic pseudo random number generators.
//!
//! The simulation must be bit-reproducible across runs and platforms:
//! the same seed must produce the same cluster schedule, the same
//! stochastic quantization decisions, and the same synthetic gradients.
//! We therefore avoid `rand`'s thread-local generators in simulation
//! code and use these small, well-known generators instead.

/// Common interface for the 64-bit generators in this module.
///
/// All derived sampling (ranges, floats, Gaussians, shuffles) is
/// implemented on top of [`Rng64::next_u64`], so every implementor gets
/// the full API with a single method.
pub trait Rng64 {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // Use the top 53 bits for a uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniformly distributed `f32` in `[0, 1)`.
    fn next_f32(&mut self) -> f32 {
        // Use the top 24 bits for a uniform float in [0, 1).
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Returns a uniformly distributed integer in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method to avoid modulo
    /// bias.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        // Lemire, "Fast Random Integer Generation in an Interval".
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniformly distributed integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "range_u64 requires lo < hi");
        lo + self.next_below(hi - lo)
    }

    /// Returns a uniformly distributed `usize` in `[0, bound)`.
    fn index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Returns a uniformly distributed `f64` in `[lo, hi)`.
    fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// Returns a standard normal sample (mean 0, variance 1).
    ///
    /// Uses the Box–Muller transform; one of the pair is discarded to
    /// keep the generator stateless beyond its seed word.
    fn next_gaussian(&mut self) -> f64 {
        // Draw u1 in (0, 1] to avoid ln(0).
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Shuffles `slice` in place with the Fisher–Yates algorithm.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }
}

/// SplitMix64: a tiny, fast, high-quality 64-bit generator.
///
/// Primarily used for seeding [`Xoshiro256`] and for cheap independent
/// streams (one generator per simulated node, derived from a master
/// seed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Derives an independent child generator for stream `id`.
    ///
    /// The child is seeded with a hash of the parent state and the id,
    /// so children with distinct ids are statistically independent.
    pub fn derive(&self, id: u64) -> Self {
        let mut tmp = Self::new(self.state ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // Burn one output so that derive(0) != clone().
        let s = tmp.next_u64();
        Self::new(s)
    }
}

impl Rng64 for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Xoshiro256**: the workhorse generator for bulk sampling.
///
/// Used for synthetic gradient generation and stochastic rounding in
/// the quantization compressors, where long non-repeating streams
/// matter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator from a 64-bit seed, expanding it through
    /// SplitMix64 as recommended by the xoshiro authors.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Self { s }
    }
}

impl Rng64 for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the public domain
        // SplitMix64 implementation.
        let mut rng = SplitMix64::new(1234567);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, b);
        // Determinism: same seed, same stream.
        let mut rng2 = SplitMix64::new(1234567);
        assert_eq!(rng2.next_u64(), a);
        assert_eq!(rng2.next_u64(), b);
    }

    #[test]
    fn xoshiro_determinism() {
        let mut a = Xoshiro256::new(42);
        let mut b = Xoshiro256::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derive_produces_distinct_streams() {
        let root = SplitMix64::new(7);
        let mut c0 = root.derive(0);
        let mut c1 = root.derive(1);
        let (x0, x1) = (c0.next_u64(), c1.next_u64());
        assert_ne!(x0, x1);
        // derive is a pure function of (state, id).
        assert_eq!(root.derive(0).next_u64(), x0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Xoshiro256::new(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f32_in_unit_interval() {
        let mut rng = Xoshiro256::new(3);
        for _ in 0..10_000 {
            let x = rng.next_f32();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_unbiased_small_bound() {
        let mut rng = Xoshiro256::new(11);
        let mut counts = [0usize; 5];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.next_below(5) as usize] += 1;
        }
        for &c in &counts {
            let expected = n / 5;
            assert!(
                (c as i64 - expected as i64).unsigned_abs() < (expected / 10) as u64,
                "bucket count {c} too far from {expected}"
            );
        }
    }

    #[test]
    fn range_u64_bounds() {
        let mut rng = Xoshiro256::new(5);
        for _ in 0..1000 {
            let x = rng.range_u64(10, 20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = Xoshiro256::new(99);
        let n = 200_000;
        let (mut sum, mut sq) = (0.0f64, 0.0f64);
        for _ in 0..n {
            let x = rng.next_gaussian();
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.03, "variance {var} too far from 1");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::new(1);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }
}

//! Least-squares affine curve fitting.
//!
//! The selective compression planner (§3.3 of the paper) profiles GPU
//! kernels and network transfers at a handful of sizes and then fits
//! `T(m) = a + b·m` to interpolate costs for arbitrary gradient sizes.
//! An affine model is exact for the roofline cost models used by the
//! simulated substrates, and a good approximation for real hardware.

/// An affine cost curve `y = intercept + slope * x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AffineFit {
    /// Fixed cost (e.g., kernel launch overhead or wire latency), in
    /// the same unit as the fitted `y` values.
    pub intercept: f64,
    /// Marginal cost per unit of `x` (e.g., ns per byte).
    pub slope: f64,
}

impl AffineFit {
    /// Evaluates the curve at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }

    /// Fits `y = a + b*x` to the samples by ordinary least squares.
    ///
    /// Returns `None` when fewer than two distinct `x` values are
    /// provided (the slope would be underdetermined).
    pub fn fit(samples: &[(f64, f64)]) -> Option<Self> {
        if samples.len() < 2 {
            return None;
        }
        let n = samples.len() as f64;
        let sx: f64 = samples.iter().map(|(x, _)| x).sum();
        let sy: f64 = samples.iter().map(|(_, y)| y).sum();
        let sxx: f64 = samples.iter().map(|(x, _)| x * x).sum();
        let sxy: f64 = samples.iter().map(|(x, y)| x * y).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < f64::EPSILON * n * sxx.max(1.0) {
            return None;
        }
        let slope = (n * sxy - sx * sy) / denom;
        let intercept = (sy - slope * sx) / n;
        Some(Self { intercept, slope })
    }

    /// Coefficient of determination R² of this fit on `samples`.
    ///
    /// 1.0 means the affine model explains the data perfectly.
    pub fn r_squared(&self, samples: &[(f64, f64)]) -> f64 {
        if samples.is_empty() {
            return 1.0;
        }
        let mean_y: f64 = samples.iter().map(|(_, y)| y).sum::<f64>() / samples.len() as f64;
        let ss_tot: f64 = samples.iter().map(|(_, y)| (y - mean_y).powi(2)).sum();
        let ss_res: f64 = samples
            .iter()
            .map(|(x, y)| (y - self.eval(*x)).powi(2))
            .sum();
        if ss_tot == 0.0 {
            if ss_res == 0.0 {
                1.0
            } else {
                0.0
            }
        } else {
            1.0 - ss_res / ss_tot
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_affine_recovered() {
        let samples: Vec<(f64, f64)> = (1..10).map(|i| (i as f64, 3.0 + 2.0 * i as f64)).collect();
        let fit = AffineFit::fit(&samples).unwrap();
        assert!((fit.intercept - 3.0).abs() < 1e-9);
        assert!((fit.slope - 2.0).abs() < 1e-9);
        assert!(fit.r_squared(&samples) > 0.999_999);
    }

    #[test]
    fn underdetermined_returns_none() {
        assert!(AffineFit::fit(&[]).is_none());
        assert!(AffineFit::fit(&[(1.0, 2.0)]).is_none());
        // Two samples at the same x: slope undefined.
        assert!(AffineFit::fit(&[(1.0, 2.0), (1.0, 3.0)]).is_none());
    }

    #[test]
    fn noisy_fit_is_close() {
        // y = 10 + 0.5x with deterministic "noise".
        let samples: Vec<(f64, f64)> = (0..50)
            .map(|i| {
                let x = i as f64 * 4.0;
                let noise = ((i * 37 % 11) as f64 - 5.0) * 0.01;
                (x, 10.0 + 0.5 * x + noise)
            })
            .collect();
        let fit = AffineFit::fit(&samples).unwrap();
        assert!((fit.intercept - 10.0).abs() < 0.1);
        assert!((fit.slope - 0.5).abs() < 0.01);
        assert!(fit.r_squared(&samples) > 0.999);
    }

    #[test]
    fn eval_is_affine() {
        let f = AffineFit {
            intercept: 1.0,
            slope: -2.0,
        };
        assert_eq!(f.eval(0.0), 1.0);
        assert_eq!(f.eval(2.0), -3.0);
    }
}

//! Unit conversions and human-readable formatting.
//!
//! The whole simulation measures time in integer nanoseconds and data
//! in bytes. These helpers keep bandwidth math (Gbps ↔ bytes/ns) and
//! display formatting in one place so the network and GPU models agree
//! on conventions.

/// One kibibyte in bytes.
pub const KIB: u64 = 1024;
/// One mebibyte in bytes.
pub const MIB: u64 = 1024 * 1024;
/// One gibibyte in bytes.
pub const GIB: u64 = 1024 * 1024 * 1024;

/// Nanoseconds per microsecond.
pub const NS_PER_US: u64 = 1_000;
/// Nanoseconds per millisecond.
pub const NS_PER_MS: u64 = 1_000_000;
/// Nanoseconds per second.
pub const NS_PER_SEC: u64 = 1_000_000_000;

/// A transfer rate expressed canonically in bytes per second.
///
/// Stored as `f64` bytes/second; helpers construct it from the unit the
/// literature uses (network links in Gbit/s, memory in GB/s).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Bandwidth {
    bytes_per_sec: f64,
}

impl Bandwidth {
    /// From gigabits per second (network convention, 1 Gbps = 1e9 bit/s).
    pub fn gbps(g: f64) -> Self {
        Self {
            bytes_per_sec: g * 1e9 / 8.0,
        }
    }

    /// From gigabytes per second (memory convention, 1 GB/s = 1e9 B/s).
    pub fn gbytes_per_sec(g: f64) -> Self {
        Self {
            bytes_per_sec: g * 1e9,
        }
    }

    /// From raw bytes per second.
    pub fn bytes_per_sec(b: f64) -> Self {
        Self { bytes_per_sec: b }
    }

    /// The rate in bytes per second.
    pub fn as_bytes_per_sec(&self) -> f64 {
        self.bytes_per_sec
    }

    /// The rate in gigabits per second.
    pub fn as_gbps(&self) -> f64 {
        self.bytes_per_sec * 8.0 / 1e9
    }

    /// Time to move `bytes` at this rate, in integer nanoseconds
    /// (rounded up so a transfer never finishes early).
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is not strictly positive.
    pub fn transfer_ns(&self, bytes: u64) -> u64 {
        assert!(
            self.bytes_per_sec > 0.0,
            "cannot transfer over a zero-bandwidth channel"
        );
        let secs = bytes as f64 / self.bytes_per_sec;
        (secs * NS_PER_SEC as f64).ceil() as u64
    }
}

/// Formats a byte count with binary units ("392.00 MiB").
pub fn fmt_bytes(bytes: u64) -> String {
    let b = bytes as f64;
    if bytes >= GIB {
        format!("{:.2} GiB", b / GIB as f64)
    } else if bytes >= MIB {
        format!("{:.2} MiB", b / MIB as f64)
    } else if bytes >= KIB {
        format!("{:.2} KiB", b / KIB as f64)
    } else {
        format!("{bytes} B")
    }
}

/// Formats a duration in nanoseconds compactly, with an adaptive unit
/// and no space ("3.21ms", "14.2us", "500ns", "1.25s").
///
/// Precision scales with the unit: seconds and milliseconds carry two
/// decimals, microseconds one, nanoseconds none — enough to compare
/// latencies at a glance without drowning reports in digits. Tables
/// (`RuntimeReport`, the CLI, trace summaries) share this one helper
/// so durations format identically everywhere.
pub fn fmt_duration_ns(ns: u64) -> String {
    if ns >= NS_PER_SEC {
        format!("{:.2}s", ns as f64 / NS_PER_SEC as f64)
    } else if ns >= NS_PER_MS {
        format!("{:.2}ms", ns as f64 / NS_PER_MS as f64)
    } else if ns >= NS_PER_US {
        format!("{:.1}us", ns as f64 / NS_PER_US as f64)
    } else {
        format!("{ns}ns")
    }
}

/// Formats a duration in nanoseconds with an adaptive unit ("3.21 ms").
pub fn fmt_ns(ns: u64) -> String {
    if ns >= NS_PER_SEC {
        format!("{:.3} s", ns as f64 / NS_PER_SEC as f64)
    } else if ns >= NS_PER_MS {
        format!("{:.3} ms", ns as f64 / NS_PER_MS as f64)
    } else if ns >= NS_PER_US {
        format!("{:.3} us", ns as f64 / NS_PER_US as f64)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gbps_conversion() {
        let bw = Bandwidth::gbps(100.0);
        assert!((bw.as_bytes_per_sec() - 12.5e9).abs() < 1.0);
        assert!((bw.as_gbps() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn transfer_time_100gbps() {
        // 12.5 GB at 12.5 GB/s = 1 second.
        let bw = Bandwidth::gbps(100.0);
        assert_eq!(bw.transfer_ns(12_500_000_000), NS_PER_SEC);
        // Zero bytes take zero time.
        assert_eq!(bw.transfer_ns(0), 0);
    }

    #[test]
    fn transfer_time_rounds_up() {
        let bw = Bandwidth::bytes_per_sec(3.0 * NS_PER_SEC as f64); // 3 bytes/ns
        assert_eq!(bw.transfer_ns(1), 1); // 1/3 ns rounds up to 1.
    }

    #[test]
    #[should_panic(expected = "zero-bandwidth")]
    fn zero_bandwidth_panics() {
        Bandwidth::bytes_per_sec(0.0).transfer_ns(1);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(392 * MIB), "392.00 MiB");
        assert_eq!(fmt_bytes(3 * GIB / 2), "1.50 GiB");
        assert_eq!(fmt_ns(500), "500 ns");
        assert_eq!(fmt_ns(2_500), "2.500 us");
        assert_eq!(fmt_ns(NS_PER_SEC * 2), "2.000 s");
    }

    #[test]
    fn compact_duration_formatting() {
        assert_eq!(fmt_duration_ns(0), "0ns");
        assert_eq!(fmt_duration_ns(999), "999ns");
        assert_eq!(fmt_duration_ns(1_000), "1.0us");
        assert_eq!(fmt_duration_ns(14_230), "14.2us");
        assert_eq!(fmt_duration_ns(3_210_000), "3.21ms");
        assert_eq!(fmt_duration_ns(1_250_000_000), "1.25s");
    }
}

//! A minimal aligned-column text table.
//!
//! Several crates print tabular reports — the runtime report display,
//! the CLI's run/sim summaries, the bench harness's figure tables —
//! and each used to pad columns its own way. This renderer is the
//! single shared implementation: fixed column definitions with
//! per-column alignment, automatic width computation from the widest
//! cell, and no trailing whitespace on any emitted line.

use std::fmt;

/// Horizontal alignment of one column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Pad on the right (text).
    Left,
    /// Pad on the left (numbers).
    Right,
}

/// An aligned-column table under construction.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers and alignments.
    pub fn new(columns: &[(&str, Align)]) -> Self {
        Table {
            header: columns.iter().map(|(h, _)| h.to_string()).collect(),
            aligns: columns.iter().map(|&(_, a)| a).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row. Missing trailing cells render empty; extra
    /// cells are rejected.
    ///
    /// # Panics
    ///
    /// Panics if `cells` has more entries than the table has columns.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        assert!(
            cells.len() <= self.header.len(),
            "row has {} cells but the table has {} columns",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows appended so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been appended.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.chars().count());
            }
        }
        w
    }

    fn render_line(line: &mut String, cells: &[String], aligns: &[Align], widths: &[usize]) {
        for (i, width) in widths.iter().enumerate() {
            let cell = cells.get(i).map(String::as_str).unwrap_or("");
            if i > 0 {
                line.push_str("  ");
            }
            match aligns[i] {
                Align::Left => {
                    line.push_str(cell);
                    // Left-aligned padding is only needed before a
                    // following column.
                    if i + 1 < widths.len() {
                        for _ in cell.chars().count()..*width {
                            line.push(' ');
                        }
                    }
                }
                Align::Right => {
                    for _ in cell.chars().count()..*width {
                        line.push(' ');
                    }
                    line.push_str(cell);
                }
            }
        }
        while line.ends_with(' ') {
            line.pop();
        }
    }

    /// Renders header plus rows, one line each, `\n`-terminated, with
    /// no trailing whitespace on any line. `indent` is prepended to
    /// every line.
    pub fn render_indented(&self, indent: &str) -> String {
        let widths = self.widths();
        let mut out = String::new();
        let mut all = Vec::with_capacity(self.rows.len() + 1);
        all.push(&self.header);
        all.extend(self.rows.iter());
        for cells in all {
            let mut line = String::from(indent);
            Self::render_line(&mut line, cells, &self.aligns, &widths);
            while line.ends_with(' ') {
                line.pop();
            }
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Renders with no indent.
    pub fn render(&self) -> String {
        self.render_indented("")
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_and_trims() {
        let mut t = Table::new(&[("name", Align::Left), ("count", Align::Right)]);
        t.row(vec!["encode", "12"]);
        t.row(vec!["x", "3"]);
        let out = t.render();
        assert_eq!(out, "name    count\nencode     12\nx           3\n");
        for line in out.lines() {
            assert_eq!(line, line.trim_end(), "trailing whitespace in {line:?}");
        }
    }

    #[test]
    fn short_rows_render_empty_cells() {
        let mut t = Table::new(&[("a", Align::Left), ("b", Align::Right)]);
        t.row(vec!["only"]);
        let out = t.render();
        assert_eq!(out, "a     b\nonly\n");
    }

    #[test]
    fn indent_applies_to_every_line() {
        let mut t = Table::new(&[("k", Align::Left)]);
        t.row(vec!["v"]);
        assert_eq!(t.render_indented("  "), "  k\n  v\n");
    }

    #[test]
    fn widths_follow_widest_cell() {
        let mut t = Table::new(&[("h", Align::Right)]);
        t.row(vec!["123456"]);
        assert_eq!(t.render(), "     h\n123456\n");
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn extra_cells_rejected() {
        let mut t = Table::new(&[("a", Align::Left)]);
        t.row(vec!["1", "2"]);
    }
}

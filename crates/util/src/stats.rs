//! Streaming statistics and simple descriptive helpers.
//!
//! Used by the benchmark harness to summarize repeated simulation runs
//! and by the profiler to aggregate kernel timings.

/// Streaming mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Default, Clone, Copy)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 if fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) of `data` by linear
/// interpolation between order statistics.
///
/// Returns `None` for empty input. `data` does not need to be sorted.
pub fn quantile(data: &[f64], q: f64) -> Option<f64> {
    if data.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = data.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(v[lo])
    } else {
        let frac = pos - lo as f64;
        Some(v[lo] * (1.0 - frac) + v[hi] * frac)
    }
}

/// Geometric mean of strictly positive data. Returns `None` if empty or
/// any element is non-positive.
pub fn geometric_mean(data: &[f64]) -> Option<f64> {
    if data.is_empty() || data.iter().any(|&x| x <= 0.0) {
        return None;
    }
    let log_sum: f64 = data.iter().map(|x| x.ln()).sum();
    Some((log_sum / data.len() as f64).exp())
}

/// Fixed-width histogram over `[lo, hi)` with `bins` buckets.
///
/// Out-of-range observations are clamped into the first/last bucket so
/// counts always sum to the number of observations.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` buckets.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
        }
    }

    /// Records one observation.
    pub fn push(&mut self, x: f64) {
        let bins = self.counts.len();
        let idx = ((x - self.lo) / (self.hi - self.lo) * bins as f64).floor();
        let idx = (idx.max(0.0) as usize).min(bins - 1);
        self.counts[idx] += 1;
    }

    /// Bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Left edge of bucket `i`.
    pub fn bin_lo(&self, i: usize) -> f64 {
        self.lo + (self.hi - self.lo) * i as f64 / self.counts.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct() {
        let data = [1.0, 2.0, 4.0, 8.0, 16.0];
        let mut s = OnlineStats::new();
        for &x in &data {
            s.push(x);
        }
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 16.0);
        assert_eq!(s.count(), 5);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
    }

    #[test]
    fn quantile_interpolates() {
        let data = [3.0, 1.0, 2.0, 4.0];
        assert_eq!(quantile(&data, 0.0), Some(1.0));
        assert_eq!(quantile(&data, 1.0), Some(4.0));
        assert_eq!(quantile(&data, 0.5), Some(2.5));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[1.0, 4.0]).unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), None);
        assert_eq!(geometric_mean(&[1.0, 0.0]), None);
    }

    #[test]
    fn histogram_clamps_and_counts() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.push(-1.0); // Clamps into bin 0.
        h.push(0.0);
        h.push(9.999);
        h.push(100.0); // Clamps into last bin.
        h.push(5.0);
        assert_eq!(h.total(), 5);
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[4], 2);
        assert_eq!(h.counts()[2], 1);
        assert!((h.bin_lo(1) - 2.0).abs() < 1e-12);
    }
}

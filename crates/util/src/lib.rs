//! Foundational utilities shared by every HiPress crate.
//!
//! This crate deliberately has no dependencies on the rest of the
//! workspace. It provides:
//!
//! * [`rng`] — deterministic, seed-stable pseudo random number
//!   generators (SplitMix64 and Xoshiro256**) used everywhere the
//!   simulation needs reproducible randomness.
//! * [`bits`] — LSB-first bit-level readers and writers used by the
//!   quantization compressors and the CompLL packed-array runtime.
//! * [`stats`] — streaming statistics (Welford) and percentile helpers
//!   used by the benchmark harness.
//! * [`units`] — byte/bandwidth/time unit conversions shared by the
//!   network and GPU cost models.
//! * [`fit`] — least-squares affine curve fitting used by the selective
//!   compression planner to model `T(m) = a + b*m` cost curves.
//! * [`table`] — the aligned-column text table shared by every report
//!   printer (runtime report, CLI summaries, bench tables).
//! * [`error`] — the common error type.

#![forbid(unsafe_code)]

pub mod bits;
pub mod error;
pub mod fit;
pub mod rng;
pub mod stats;
pub mod table;
pub mod units;

pub use error::{Error, Result, SyncFailure, SyncFailureKind};
pub use rng::{Rng64, SplitMix64, Xoshiro256};

//! Link specifications and the paper's network presets.

use hipress_util::units::Bandwidth;

/// Capacity of one node's network attachment (symmetric full duplex).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Per-direction bandwidth.
    pub bandwidth: Bandwidth,
    /// One-way wire latency in nanoseconds, including the per-message
    /// transport overhead (RDMA verbs post/poll or TCP stack cost).
    pub latency_ns: u64,
}

impl LinkSpec {
    /// Creates a spec from raw parts.
    pub fn new(bandwidth: Bandwidth, latency_ns: u64) -> Self {
        Self {
            bandwidth,
            latency_ns,
        }
    }

    /// 100 Gbps RDMA (EC2 p3dn.24xlarge, the paper's high-end
    /// cluster). ~2.5 µs one-way including verbs overhead.
    pub fn gbps100() -> Self {
        Self::new(Bandwidth::gbps(100.0), 2_500)
    }

    /// 56 Gbps Infiniband with RDMA (the paper's local cluster).
    pub fn gbps56() -> Self {
        Self::new(Bandwidth::gbps(56.0), 2_000)
    }

    /// 25 Gbps (the paper's low-bandwidth EC2 configuration,
    /// Figure 12a).
    pub fn gbps25() -> Self {
        Self::new(Bandwidth::gbps(25.0), 5_000)
    }

    /// 10 Gbps (the paper's low-bandwidth local configuration,
    /// Figure 12a).
    pub fn gbps10() -> Self {
        Self::new(Bandwidth::gbps(10.0), 10_000)
    }

    /// Serialization time for `bytes` at this link's rate.
    pub fn serialize_ns(&self, bytes: u64) -> u64 {
        self.bandwidth.transfer_ns(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_speed() {
        let specs = [
            LinkSpec::gbps10(),
            LinkSpec::gbps25(),
            LinkSpec::gbps56(),
            LinkSpec::gbps100(),
        ];
        for pair in specs.windows(2) {
            assert!(
                pair[0].bandwidth.as_gbps() < pair[1].bandwidth.as_gbps(),
                "presets must be strictly increasing"
            );
        }
    }

    #[test]
    fn serialization_time_100gbps() {
        // 100 Gbps = 12.5 GB/s: 125 MB takes 10 ms.
        let spec = LinkSpec::gbps100();
        assert_eq!(spec.serialize_ns(125_000_000), 10_000_000);
    }
}

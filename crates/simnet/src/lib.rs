//! Simulated cluster network.
//!
//! The paper's clusters connect nodes with homogeneous full-duplex
//! links (100 Gbps on EC2, 56 Gbps Infiniband locally; §6.1). CaSync's
//! bulk-communication coordinator reasons explicitly about *link
//! occupancy* — which uplinks and downlinks are free in a time slot —
//! so the model here centres on per-NIC serialization:
//!
//! * every node owns a NIC with independent uplink and downlink
//!   FIFO resources (full duplex),
//! * a transfer serializes at the slower of the sender's uplink rate
//!   and the receiver's downlink rate, occupies both directions for
//!   the serialization window, and arrives one wire latency later,
//! * concurrent transfers sharing a NIC direction queue FIFO — the
//!   contention CaSync's coordinator avoids by selecting
//!   non-conflicting links (§3.2).
//!
//! The model is deliberately store-and-forward at message granularity:
//! gradient synchronization moves megabyte-scale messages whose
//! serialization time dwarfs packetization effects.

#![forbid(unsafe_code)]

mod fabric;
mod spec;

pub use fabric::{Fabric, NodeId, TransferPlan};
pub use spec::LinkSpec;

//! The cluster fabric: per-node NICs and the transfer scheduler.

use crate::LinkSpec;
use hipress_simevent::{FifoResource, SimTime};
use hipress_util::{Error, Result};

/// Identifies a node attached to a [`Fabric`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// One node's network attachment: independent uplink and downlink
/// FIFO resources (full duplex).
#[derive(Debug, Clone)]
struct Nic {
    spec: LinkSpec,
    uplink: FifoResource,
    downlink: FifoResource,
}

/// The outcome of scheduling a transfer: when the payload leaves the
/// sender's memory and when it is fully received.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferPlan {
    /// When serialization begins on the sender's uplink.
    pub depart: SimTime,
    /// When the last byte lands at the receiver (schedule the `recv`
    /// completion event here).
    pub arrive: SimTime,
}

impl TransferPlan {
    /// End-to-end duration from request to arrival, given the request
    /// time.
    pub fn elapsed_from(&self, request: SimTime) -> u64 {
        self.arrive.since(request)
    }
}

/// The cluster network: a set of NICs plus the transfer scheduling
/// logic.
///
/// Transfers are scheduled in call order (which, under the
/// discrete-event engine, is simulation-time order), so FIFO queueing
/// at each NIC direction emerges naturally.
#[derive(Debug, Clone)]
pub struct Fabric {
    nics: Vec<Nic>,
}

impl Fabric {
    /// Creates a fabric of `nodes` identical NICs.
    ///
    /// # Errors
    ///
    /// Returns a configuration error when `nodes == 0`.
    pub fn homogeneous(nodes: usize, spec: LinkSpec) -> Result<Self> {
        if nodes == 0 {
            return Err(Error::config("a fabric needs at least one node"));
        }
        Ok(Self {
            nics: vec![
                Nic {
                    spec,
                    uplink: FifoResource::new(),
                    downlink: FifoResource::new(),
                };
                nodes
            ],
        })
    }

    /// Number of attached nodes.
    pub fn len(&self) -> usize {
        self.nics.len()
    }

    /// Whether the fabric has no nodes (never true for a constructed
    /// fabric).
    pub fn is_empty(&self) -> bool {
        self.nics.is_empty()
    }

    /// The link spec of `node`.
    pub fn spec(&self, node: NodeId) -> LinkSpec {
        self.nics[node.0].spec
    }

    /// Schedules moving `bytes` from `src` to `dst` starting no
    /// earlier than `now`.
    ///
    /// The transfer serializes at the slower of the two directions'
    /// rates; the sender's uplink is busy for the serialization
    /// window, the receiver's downlink for the same window shifted by
    /// one wire latency. Arrival is `start + latency + serialization`.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` — local data never crosses the fabric
    /// (local aggregation handles intra-node traffic).
    pub fn transfer(&mut self, now: SimTime, src: NodeId, dst: NodeId, bytes: u64) -> TransferPlan {
        assert_ne!(src, dst, "intra-node traffic must not use the fabric");
        let latency = self.nics[src.0]
            .spec
            .latency_ns
            .max(self.nics[dst.0].spec.latency_ns);
        let up_bw = self.nics[src.0].spec.bandwidth;
        let down_bw = self.nics[dst.0].spec.bandwidth;
        let rate = if up_bw.as_bytes_per_sec() <= down_bw.as_bytes_per_sec() {
            up_bw
        } else {
            down_bw
        };
        let dur = rate.transfer_ns(bytes);
        // Buffered cut-through: the sender serializes as soon as its
        // uplink frees (the fabric buffers in flight), and the
        // receiver drains the payload once its downlink frees. An
        // isolated transfer costs `latency + dur`; a backlogged
        // receiver delays only its own arrivals, never the sender's
        // uplink (no head-of-line coupling across the fabric).
        let (up_start, up_end) = self.nics[src.0].uplink.acquire(now, dur);
        let wire_arrival = up_start + latency;
        let down_free = self.nics[dst.0].downlink.next_free(wire_arrival);
        let (_, arrive) = self.nics[dst.0].downlink.reserve(down_free, dur);
        let _ = up_end;
        TransferPlan {
            depart: up_start,
            arrive,
        }
    }

    /// Whether both the uplink of `src` and the downlink of `dst`
    /// would be immediately free for a transfer issued at `now` — the
    /// "non-conflicting link" test the CaSync coordinator uses.
    pub fn link_idle(&self, now: SimTime, src: NodeId, dst: NodeId) -> bool {
        self.nics[src.0].uplink.is_idle_at(now) && self.nics[dst.0].downlink.is_idle_at(now)
    }

    /// Total busy time of `node`'s uplink.
    pub fn uplink_busy_ns(&self, node: NodeId) -> u64 {
        self.nics[node.0].uplink.busy_ns()
    }

    /// Total busy time of `node`'s downlink.
    pub fn downlink_busy_ns(&self, node: NodeId) -> u64 {
        self.nics[node.0].downlink.busy_ns()
    }

    /// Pure cost query: the end-to-end time an isolated (uncontended)
    /// transfer of `bytes` between two nodes would take. This is the
    /// `T_send(m)` of the paper's cost model (Table 2).
    pub fn isolated_transfer_ns(&self, src: NodeId, dst: NodeId, bytes: u64) -> u64 {
        let latency = self.nics[src.0]
            .spec
            .latency_ns
            .max(self.nics[dst.0].spec.latency_ns);
        let up = self.nics[src.0].spec.bandwidth;
        let down = self.nics[dst.0].spec.bandwidth;
        let rate = if up.as_bytes_per_sec() <= down.as_bytes_per_sec() {
            up
        } else {
            down
        };
        latency + rate.transfer_ns(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric(n: usize) -> Fabric {
        Fabric::homogeneous(n, LinkSpec::gbps100()).unwrap()
    }

    #[test]
    fn isolated_transfer_time() {
        let mut f = fabric(2);
        // 12.5 MB at 12.5 GB/s = 1 ms, plus 2.5 us latency.
        let plan = f.transfer(SimTime::ZERO, NodeId(0), NodeId(1), 12_500_000);
        assert_eq!(plan.depart, SimTime::ZERO);
        assert_eq!(plan.arrive.as_ns(), 1_000_000 + 2_500);
        assert_eq!(
            f.isolated_transfer_ns(NodeId(0), NodeId(1), 12_500_000),
            1_002_500
        );
    }

    #[test]
    fn uplink_contention_serializes() {
        let mut f = fabric(3);
        let a = f.transfer(SimTime::ZERO, NodeId(0), NodeId(1), 12_500_000);
        // Same sender, different receiver: must wait for the uplink.
        let b = f.transfer(SimTime::ZERO, NodeId(0), NodeId(2), 12_500_000);
        assert_eq!(b.depart, SimTime::from_ns(1_000_000));
        assert!(b.arrive > a.arrive);
    }

    #[test]
    fn downlink_contention_serializes() {
        let mut f = fabric(3);
        let a = f.transfer(SimTime::ZERO, NodeId(1), NodeId(0), 12_500_000);
        let b = f.transfer(SimTime::ZERO, NodeId(2), NodeId(0), 12_500_000);
        // The second transfer's serialization window at the receiver
        // starts after the first finishes.
        assert_eq!(b.arrive.as_ns(), a.arrive.as_ns() + 1_000_000);
    }

    #[test]
    fn full_duplex_no_cross_contention() {
        let mut f = fabric(2);
        let a = f.transfer(SimTime::ZERO, NodeId(0), NodeId(1), 12_500_000);
        // Opposite direction uses the other pair of resources.
        let b = f.transfer(SimTime::ZERO, NodeId(1), NodeId(0), 12_500_000);
        assert_eq!(a.depart, SimTime::ZERO);
        assert_eq!(b.depart, SimTime::ZERO);
        assert_eq!(a.arrive, b.arrive);
    }

    #[test]
    fn disjoint_pairs_run_in_parallel() {
        let mut f = fabric(4);
        let a = f.transfer(SimTime::ZERO, NodeId(0), NodeId(1), 12_500_000);
        let b = f.transfer(SimTime::ZERO, NodeId(2), NodeId(3), 12_500_000);
        assert_eq!(a.arrive, b.arrive);
    }

    #[test]
    fn link_idle_reflects_reservations() {
        let mut f = fabric(3);
        assert!(f.link_idle(SimTime::ZERO, NodeId(0), NodeId(1)));
        f.transfer(SimTime::ZERO, NodeId(0), NodeId(1), 12_500_000);
        assert!(
            !f.link_idle(SimTime::from_ns(10), NodeId(0), NodeId(2)),
            "uplink busy"
        );
        assert!(
            !f.link_idle(SimTime::from_ns(10), NodeId(2), NodeId(1)),
            "downlink busy"
        );
        assert!(
            f.link_idle(SimTime::from_ns(10), NodeId(2), NodeId(0)),
            "reverse path free"
        );
        assert!(
            f.link_idle(SimTime::from_ms(2), NodeId(0), NodeId(2)),
            "free after drain"
        );
    }

    #[test]
    fn busy_accounting() {
        let mut f = fabric(2);
        f.transfer(SimTime::ZERO, NodeId(0), NodeId(1), 12_500_000);
        assert_eq!(f.uplink_busy_ns(NodeId(0)), 1_000_000);
        assert_eq!(f.downlink_busy_ns(NodeId(1)), 1_000_000);
        assert_eq!(f.uplink_busy_ns(NodeId(1)), 0);
        assert_eq!(f.downlink_busy_ns(NodeId(0)), 0);
    }

    #[test]
    fn zero_byte_message_costs_latency_only() {
        let mut f = fabric(2);
        let plan = f.transfer(SimTime::ZERO, NodeId(0), NodeId(1), 0);
        assert_eq!(plan.arrive.as_ns(), 2_500);
    }

    #[test]
    fn empty_fabric_rejected() {
        assert!(Fabric::homogeneous(0, LinkSpec::gbps100()).is_err());
    }

    #[test]
    #[should_panic(expected = "intra-node")]
    fn self_transfer_panics() {
        fabric(2).transfer(SimTime::ZERO, NodeId(0), NodeId(0), 1);
    }
}

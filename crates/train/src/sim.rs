//! The cluster throughput simulator.
//!
//! One [`TrainingJob`] describes a complete experimental
//! configuration (model, cluster, strategy, algorithm, runtime
//! options); [`simulate`] compiles one training iteration into a
//! CaSync task graph, executes it on the simulated cluster, and
//! reports the metrics the paper's evaluation plots.
//!
//! Iteration anatomy (§2.1): forward pass, then the backward pass
//! during which gradients become ready in reverse layer order and
//! synchronization overlaps computation, then whatever
//! synchronization tail remains. The next iteration starts when all
//! parameters are updated:
//!
//! ```text
//! iteration = forward + max(backward, sync_finish)
//! ```

use hipress_compress::Algorithm;
use hipress_core::ClusterConfig;
use hipress_core::{
    CompressionSpec, ExecConfig, ExecStats, Executor, GradPlan, IterationSpec, Strategy,
    SyncGradient,
};
use hipress_models::{DnnModel, GpuClass};
use hipress_planner::Planner;
use hipress_simgpu::intra_node_allreduce_ns;
use hipress_trace::Tracer;
use hipress_util::Result;

/// A complete experimental configuration.
#[derive(Debug, Clone)]
pub struct TrainingJob {
    /// The DNN model being trained.
    pub model: DnnModel,
    /// Cluster shape and hardware.
    pub cluster: ClusterConfig,
    /// GPU class for the compute-time model (must match
    /// `cluster.gpu`).
    pub gpu_class: GpuClass,
    /// Gradient synchronization strategy.
    pub strategy: Strategy,
    /// Compression algorithm ([`Algorithm::None`] disables
    /// compression).
    pub algorithm: Algorithm,
    /// Runtime configuration (pipelining / bulk / batching / on-CPU).
    pub exec: ExecConfig,
    /// Use the §3.3 selective compression and partitioning planner;
    /// otherwise compress everything without partitioning (the
    /// coupled-baseline behaviour).
    pub selective: bool,
    /// Aggregate gradients across the node's GPUs before inter-node
    /// synchronization (§5 "Local aggregation").
    pub local_agg: bool,
    /// Use the open-source implementations' kernel cost profiles
    /// (§4.4) instead of the CompLL-optimized ones — what the
    /// compression-enabled baselines run.
    pub oss_codec: bool,
}

impl TrainingJob {
    /// The HiPress configuration for a model on an EC2-style cluster:
    /// CaSync strategy, all optimizations, selective planning.
    pub fn hipress(model: DnnModel, cluster: ClusterConfig, strategy: Strategy) -> Self {
        let gpu_class = gpu_class_of(&cluster);
        Self {
            model,
            cluster,
            gpu_class,
            strategy,
            algorithm: Algorithm::OneBit,
            exec: ExecConfig::hipress(),
            selective: true,
            local_agg: true,
            oss_codec: false,
        }
    }

    /// A baseline configuration (BytePS or Ring), optionally with the
    /// coupled open-source compression. BytePS additionally gets its
    /// CPU-server runtime (its aggregation runs in host memory).
    pub fn baseline(model: DnnModel, cluster: ClusterConfig, strategy: Strategy) -> Self {
        let gpu_class = gpu_class_of(&cluster);
        let exec = if strategy == Strategy::BytePs {
            ExecConfig::byteps()
        } else {
            ExecConfig::baseline()
        };
        Self {
            model,
            cluster,
            gpu_class,
            strategy,
            algorithm: Algorithm::None,
            exec,
            selective: false,
            local_agg: true,
            oss_codec: true,
        }
    }

    /// Replaces the algorithm.
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Replaces the executor config.
    pub fn with_exec(mut self, exec: ExecConfig) -> Self {
        self.exec = exec;
        self
    }
}

/// Maps a cluster's GPU model to the compute-time class.
pub fn gpu_class_of(cluster: &ClusterConfig) -> GpuClass {
    if cluster.gpu.name == "1080Ti" {
        GpuClass::Gtx1080Ti
    } else {
        GpuClass::V100
    }
}

/// Simulation output for one configuration.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Steady-state time per training iteration.
    pub iteration_ns: u64,
    /// Pure single-GPU compute time per iteration (fwd+bwd).
    pub compute_ns: u64,
    /// When the last gradient finished synchronizing, measured from
    /// the start of backward.
    pub sync_finish_ns: u64,
    /// Cluster-wide training throughput in samples per second.
    pub throughput: f64,
    /// The paper's scaling efficiency: throughput over
    /// `GPUs × single-GPU throughput`.
    pub scaling_efficiency: f64,
    /// The busiest node's network activity over the iteration.
    pub comm_ratio: f64,
    /// Raw executor statistics.
    pub stats: ExecStats,
}

impl SimResult {
    /// Lowers this result into a metrics scope under the shared name
    /// catalogue (`hipress-metrics::names`), so a simulated run
    /// snapshots, serializes, and diffs exactly like a measured one:
    /// `iteration_ns` lands on the same series the thread engine
    /// pushes, durations on `*_ns` gauges, rates on `throughput_*`/
    /// `scaling_efficiency` gauges, and the executor's batching
    /// counters on plain counters.
    pub fn record_metrics(&self, scope: &hipress_metrics::Scope) {
        use hipress_metrics::names;
        scope
            .timeseries(names::ITERATION_NS, &[])
            .push(self.iteration_ns as f64);
        scope
            .gauge(names::COMPUTE_NS, &[])
            .set(self.compute_ns as f64);
        scope
            .gauge(names::SYNC_FINISH_NS, &[])
            .set(self.sync_finish_ns as f64);
        scope
            .gauge(names::SAMPLES_PER_SEC, &[])
            .set(self.throughput);
        scope
            .gauge(names::SCALING_EFFICIENCY, &[])
            .set(self.scaling_efficiency);
        scope.gauge(names::COMM_RATIO, &[]).set(self.comm_ratio);
        scope
            .counter(names::LINK_FLUSHES, &[])
            .add(self.stats.link_flushes);
        scope
            .counter(names::COMP_BATCH_LAUNCHES, &[])
            .add(self.stats.comp_batch_launches);
        scope.counter(names::SIM_EVENTS, &[]).add(self.stats.events);
    }
}

/// Builds the iteration spec for a job (exposed for tests and the
/// Figure 11 ablations).
pub fn build_iteration(job: &TrainingJob) -> Result<IterationSpec> {
    let spec = job.model.spec();
    let offsets = spec.backward_ready_offsets(job.gpu_class);
    let compression = match job.algorithm {
        Algorithm::None => None,
        alg => {
            // Baselines carry the open-source kernels' cost shapes
            // (up to 5-15x more memory passes, §4.4); OSS
            // implementations exist for four of the five algorithms.
            let c = if job.oss_codec {
                alg.build_oss().or_else(|| alg.build())
            } else {
                alg.build()
            }
            .expect("non-None algorithm builds");
            Some(CompressionSpec::of(c.as_ref()))
        }
    };
    // Per-gradient plans: the planner for CaSync with selective
    // compression, compress-everything for the coupled baselines.
    let plans: Vec<GradPlan> = if compression.is_none() {
        vec![GradPlan::raw(); spec.layers.len()]
    } else if job.selective {
        let planner = Planner::profile(&job.cluster, job.strategy, job.algorithm)?;
        planner.plan_model(&spec.layers.iter().map(|l| l.bytes).collect::<Vec<_>>())
    } else {
        vec![GradPlan::compress_whole(); spec.layers.len()]
    };
    let gradients = spec
        .layers
        .iter()
        .zip(offsets.iter())
        .zip(plans)
        .map(|((layer, &ready), plan)| {
            let local_agg_ns = if job.local_agg {
                intra_node_allreduce_ns(&job.cluster.gpu, job.cluster.gpus_per_node, layer.bytes)
            } else {
                0
            };
            SyncGradient {
                name: layer.name.clone(),
                bytes: layer.bytes,
                ready_offset_ns: ready + local_agg_ns,
                plan,
            }
        })
        .collect();
    Ok(IterationSpec {
        gradients,
        compression,
    })
}

/// Measures the standalone synchronization time of one iteration's
/// gradients (all ready at t=0, no backward overlap) — the isolated
/// synchronization cost the Figure 11/12 breakdowns discuss.
///
/// # Errors
///
/// Propagates configuration and simulation errors.
pub fn sync_only_ns(job: &TrainingJob) -> Result<u64> {
    let mut iter = build_iteration(job)?;
    for g in &mut iter.gradients {
        g.ready_offset_ns = 0;
    }
    let graph = job.strategy.build(&job.cluster, &iter)?;
    let stats = Executor::new(job.cluster, job.exec).run(&graph, &iter)?;
    Ok(stats.makespan_ns)
}

/// Runs the throughput simulation for one configuration.
///
/// # Errors
///
/// Propagates configuration and simulation errors.
pub fn simulate(job: &TrainingJob) -> Result<SimResult> {
    simulate_inner(job, None)
}

/// Runs [`simulate`] while recording the executor's simulated task
/// timeline into `tracer` (see [`Executor::run_traced`]): one span per
/// synchronization task on `node{i}` tracks, timestamps in simulated
/// nanoseconds from backward start.
///
/// # Errors
///
/// Propagates configuration and simulation errors.
pub fn simulate_with_tracer(job: &TrainingJob, tracer: &Tracer) -> Result<SimResult> {
    simulate_inner(job, Some(tracer))
}

fn simulate_inner(job: &TrainingJob, tracer: Option<&Tracer>) -> Result<SimResult> {
    let spec = job.model.spec();
    let compute = spec.compute(job.gpu_class);
    let iter = build_iteration(job)?;
    let graph = job.strategy.build(&job.cluster, &iter)?;
    let executor = Executor::new(job.cluster, job.exec);
    let stats = match tracer {
        Some(tr) => executor.run_traced(&graph, &iter, tr)?,
        None => executor.run(&graph, &iter)?,
    };
    let sync_finish = stats
        .grad_finish_ns
        .iter()
        .copied()
        .max()
        .unwrap_or(stats.makespan_ns);
    let iteration_ns = compute.forward_ns + compute.backward_ns.max(sync_finish);
    let total_gpus = job.cluster.total_gpus() as f64;
    let throughput = total_gpus * compute.batch_size as f64 / (iteration_ns as f64 / 1e9);
    let scaling_efficiency = throughput / (total_gpus * compute.single_gpu_throughput());
    let comm_busy = stats
        .network_busy_ns
        .iter()
        .map(|&(u, d)| u.max(d))
        .max()
        .unwrap_or(0);
    let comm_ratio = comm_busy as f64 / iteration_ns as f64;
    Ok(SimResult {
        iteration_ns,
        compute_ns: compute.iteration_ns(),
        sync_finish_ns: sync_finish,
        throughput,
        scaling_efficiency,
        comm_ratio,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ec2(nodes: usize) -> ClusterConfig {
        ClusterConfig::ec2(nodes)
    }

    #[test]
    fn scaling_efficiency_bounded() {
        let job = TrainingJob::baseline(DnnModel::ResNet50, ec2(4), Strategy::HorovodRing);
        let r = simulate(&job).unwrap();
        assert!(r.scaling_efficiency > 0.0 && r.scaling_efficiency <= 1.0);
        assert!(r.throughput > 0.0);
        assert!(r.iteration_ns >= r.compute_ns);
    }

    #[test]
    fn hipress_beats_baseline_on_comm_heavy_model() {
        // VGG19 on 8 nodes: communication bound; HiPress with onebit
        // must beat the uncompressed baselines.
        let cluster = ec2(8);
        let base = simulate(&TrainingJob::baseline(
            DnnModel::Vgg19,
            cluster,
            Strategy::HorovodRing,
        ))
        .unwrap();
        let hip = simulate(&TrainingJob::hipress(
            DnnModel::Vgg19,
            cluster,
            Strategy::CaSyncPs,
        ))
        .unwrap();
        assert!(
            hip.throughput > base.throughput,
            "HiPress {} vs Ring {}",
            hip.throughput,
            base.throughput
        );
    }

    #[test]
    fn compression_enabled_baseline_between() {
        // BytePS(OSS-onebit) should beat plain BytePS but lose to
        // HiPress on a communication-intensive model (the Table 1 /
        // Figure 7a story).
        let cluster = ec2(8);
        let byteps = simulate(&TrainingJob::baseline(
            DnnModel::BertLarge,
            cluster.with_tcp(),
            Strategy::BytePs,
        ))
        .unwrap();
        let byteps_onebit = simulate(
            &TrainingJob::baseline(DnnModel::BertLarge, cluster.with_tcp(), Strategy::BytePs)
                .with_algorithm(Algorithm::OneBit),
        )
        .unwrap();
        let hip = simulate(&TrainingJob::hipress(
            DnnModel::BertLarge,
            cluster,
            Strategy::CaSyncPs,
        ))
        .unwrap();
        assert!(
            byteps_onebit.throughput > byteps.throughput,
            "onebit {} vs plain {}",
            byteps_onebit.throughput,
            byteps.throughput
        );
        assert!(
            hip.throughput > byteps_onebit.throughput,
            "hipress {} vs byteps-onebit {}",
            hip.throughput,
            byteps_onebit.throughput
        );
    }

    #[test]
    fn weak_scaling_grows_throughput() {
        let t4 = simulate(&TrainingJob::hipress(
            DnnModel::ResNet50,
            ec2(4),
            Strategy::CaSyncRing,
        ))
        .unwrap()
        .throughput;
        let t16 = simulate(&TrainingJob::hipress(
            DnnModel::ResNet50,
            ec2(16),
            Strategy::CaSyncRing,
        ))
        .unwrap()
        .throughput;
        assert!(t16 > t4 * 2.0, "16 nodes {t16} vs 4 nodes {t4}");
    }

    #[test]
    fn local_aggregation_helps() {
        let cluster = ec2(8);
        let with = simulate(&TrainingJob::hipress(
            DnnModel::Vgg19,
            cluster,
            Strategy::CaSyncRing,
        ))
        .unwrap();
        let mut job = TrainingJob::hipress(DnnModel::Vgg19, cluster, Strategy::CaSyncRing);
        job.local_agg = false;
        // Without local aggregation the model's gradients would be
        // synchronized per GPU (8x the flows); our node-level model
        // approximates that by removing the local-agg latency, so
        // "without" is *faster* here — assert only that the knob has
        // an effect and the result stays valid.
        let without = simulate(&job).unwrap();
        assert_ne!(with.iteration_ns, without.iteration_ns);
    }

    #[test]
    fn record_metrics_mirrors_sim_result() {
        use hipress_metrics::{names, MetricValue, Registry};
        let r = simulate(&TrainingJob::hipress(
            DnnModel::ResNet50,
            ec2(4),
            Strategy::CaSyncPs,
        ))
        .unwrap();
        let registry = Registry::new();
        r.record_metrics(&registry.scope(&[("model", "resnet50")]));
        let snap = registry.snapshot();
        let get = |name: &str| {
            snap.iter()
                .find(|(k, _)| k.name == name)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| panic!("{name} missing"))
        };
        assert_eq!(get(names::SAMPLES_PER_SEC).scalar(), r.throughput);
        assert_eq!(
            get(names::SCALING_EFFICIENCY).scalar(),
            r.scaling_efficiency
        );
        assert_eq!(get(names::COMPUTE_NS).scalar(), r.compute_ns as f64);
        assert_eq!(get(names::SYNC_FINISH_NS).scalar(), r.sync_finish_ns as f64);
        match get(names::ITERATION_NS) {
            MetricValue::Series(pts) => {
                assert_eq!(pts.len(), 1);
                assert_eq!(pts[0].1, r.iteration_ns as f64);
            }
            other => panic!("iteration_ns should be a series, got {other:?}"),
        }
        match get(names::SIM_EVENTS) {
            MetricValue::Counter(n) => assert_eq!(n, r.stats.events),
            other => panic!("sim_events should be a counter, got {other:?}"),
        }
        for key in snap.keys() {
            assert_eq!(key.labels.get("model"), Some("resnet50"), "{key}");
        }
    }

    #[test]
    fn comm_ratio_reasonable_for_transformer() {
        // Table 1: Transformer on Ring is heavily communication bound.
        let r = simulate(&TrainingJob::baseline(
            DnnModel::Transformer,
            ec2(16),
            Strategy::HorovodRing,
        ))
        .unwrap();
        assert!(
            r.comm_ratio > 0.25,
            "Transformer should be comm-heavy, got {}",
            r.comm_ratio
        );
        assert!(
            r.scaling_efficiency < 0.95,
            "efficiency {} should be visibly below linear",
            r.scaling_efficiency
        );
    }
}

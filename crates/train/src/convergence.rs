//! Real data-parallel SGD with compressed gradient synchronization.
//!
//! The Figure 13 experiment: W workers each hold a model replica and
//! a private data shard; every iteration each worker computes a real
//! gradient, compresses it **layer-wise with error feedback**, the
//! compressed gradients are decoded and aggregated (exactly what the
//! CaSync protocols compute — verified equivalent by the interpreter
//! tests), and all replicas apply the same averaged update. The
//! wall-clock axis comes from the throughput simulator, so
//! "compression reaches the target in less time" emerges from
//! (slightly) more iterations × (much) cheaper iterations.

use crate::nn::Trainable;
use hipress_compress::{Algorithm, ErrorFeedback};
use hipress_util::rng::{Rng64, SplitMix64};
use hipress_util::{Error, Result};

/// Configuration of a data-parallel convergence run.
#[derive(Debug, Clone)]
pub struct ConvergenceConfig {
    /// Number of data parallel workers.
    pub workers: usize,
    /// Examples (or sequence windows) per worker per iteration.
    pub batch_per_worker: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// SGD momentum coefficient.
    pub momentum: f32,
    /// Gradient compression ([`Algorithm::None`] = baseline).
    pub algorithm: Algorithm,
    /// Iterations to run.
    pub iterations: usize,
    /// Metric sampling stride.
    pub eval_every: usize,
    /// RNG seed for batch selection.
    pub seed: u64,
}

/// One metric sample.
#[derive(Debug, Clone, Copy)]
pub struct MetricPoint {
    /// Iteration index.
    pub iteration: usize,
    /// Training loss at this point.
    pub loss: f64,
    /// Task metric: classification accuracy or LM perplexity.
    pub metric: f64,
}

/// The outcome of a convergence run.
#[derive(Debug, Clone)]
pub struct ConvergenceResult {
    /// Metric samples over training.
    pub curve: Vec<MetricPoint>,
    /// Final metric value.
    pub final_metric: f64,
    /// Mean bytes transmitted per worker per iteration (compressed).
    pub bytes_per_iteration: f64,
}

impl ConvergenceResult {
    /// First iteration at which the metric reached `target`
    /// (`higher_better` selects the comparison direction).
    pub fn iterations_to_target(&self, target: f64, higher_better: bool) -> Option<usize> {
        self.curve
            .iter()
            .find(|p| {
                if higher_better {
                    p.metric >= target
                } else {
                    p.metric <= target
                }
            })
            .map(|p| p.iteration)
    }
}

/// Runs data-parallel training of `replicas` (one per worker, same
/// initialization, different shards), evaluating with `metric`.
///
/// # Errors
///
/// Returns configuration errors (zero workers, mismatched replicas).
pub fn run_data_parallel<M: Trainable>(
    cfg: &ConvergenceConfig,
    replicas: &mut [M],
    dataset_len: impl Fn(&M) -> usize,
    metric: impl Fn(&M) -> f64,
) -> Result<ConvergenceResult> {
    if replicas.is_empty() || replicas.len() != cfg.workers {
        return Err(Error::config("one replica per worker required"));
    }
    let offsets = replicas[0].layer_offsets();
    let n_params = *offsets.last().expect("layer offsets nonempty");
    let compressor = cfg.algorithm.build();
    let mut feedback: Vec<ErrorFeedback> = (0..cfg.workers).map(|_| ErrorFeedback::new()).collect();
    let mut velocity = vec![0.0f32; n_params];
    let mut rng = SplitMix64::new(cfg.seed);
    let mut curve = Vec::new();
    let mut bytes_total = 0u64;

    for iter in 0..cfg.iterations {
        // 1. Local gradients.
        let mut losses = 0.0f64;
        let mut agg = vec![0.0f32; n_params];
        for (w, replica) in replicas.iter().enumerate() {
            let len = dataset_len(replica);
            let batch: Vec<usize> = (0..cfg.batch_per_worker).map(|_| rng.index(len)).collect();
            let (loss, grad) = replica.loss_and_grad(&batch);
            losses += loss;
            // 2. Layer-wise compression with error feedback, then
            // aggregation of the *decoded* gradients (what every node
            // computes under CaSync).
            match &compressor {
                Some(c) => {
                    for win in offsets.windows(2) {
                        let (lo, hi) = (win[0], win[1]);
                        let key = format!("w{w}-l{lo}");
                        let stream = feedback[w].encode(
                            &key,
                            &grad[lo..hi],
                            c.as_ref(),
                            (iter as u64) << 16 | w as u64,
                        );
                        bytes_total += stream.len() as u64;
                        let decoded = c
                            .decode(&stream)
                            .expect("compressor decodes its own stream");
                        for (a, d) in agg[lo..hi].iter_mut().zip(decoded) {
                            *a += d;
                        }
                    }
                }
                None => {
                    bytes_total += (n_params * 4) as u64;
                    for (a, g) in agg.iter_mut().zip(&grad) {
                        *a += g;
                    }
                }
            }
        }
        let scale = 1.0 / cfg.workers as f32;
        // 3. Identical update on every replica (momentum SGD).
        let mut params = replicas[0].params();
        for i in 0..n_params {
            velocity[i] = cfg.momentum * velocity[i] + agg[i] * scale;
            params[i] -= cfg.lr * velocity[i];
        }
        for replica in replicas.iter_mut() {
            replica.set_params(&params);
        }
        // 4. Metrics.
        if iter % cfg.eval_every == 0 || iter + 1 == cfg.iterations {
            curve.push(MetricPoint {
                iteration: iter,
                loss: losses / cfg.workers as f64,
                metric: metric(&replicas[0]),
            });
        }
    }
    let final_metric = curve.last().map(|p| p.metric).unwrap_or(f64::NAN);
    Ok(ConvergenceResult {
        curve,
        final_metric,
        bytes_per_iteration: bytes_total as f64 / (cfg.iterations.max(1) * cfg.workers) as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::data::Classification;
    use crate::nn::Mlp;

    /// Replicas over disjoint shards of *one* dataset (the shards must
    /// come from the same distribution), plus a held-out eval set.
    fn mlp_replicas(workers: usize) -> (Vec<Mlp>, Classification) {
        let full = Classification::gaussian_mixture(400 * workers + 500, 8, 4, 4.0, 100);
        let mut shards = full.split(workers + 1);
        let eval = shards.pop().expect("one extra shard for evaluation");
        let replicas = shards
            .into_iter()
            .map(|shard| Mlp::new(&[8, 16, 4], shard, 42)) // Same seed: same init.
            .collect();
        (replicas, eval)
    }

    fn base_cfg(alg: Algorithm) -> ConvergenceConfig {
        ConvergenceConfig {
            workers: 4,
            batch_per_worker: 16,
            lr: 0.05,
            momentum: 0.9,
            algorithm: alg,
            iterations: 120,
            eval_every: 10,
            seed: 5,
        }
    }

    #[test]
    fn uncompressed_training_converges() {
        let (mut reps, eval) = mlp_replicas(4);
        let r = run_data_parallel(
            &base_cfg(Algorithm::None),
            &mut reps,
            |m| m.data().len(),
            |m| m.accuracy(&eval),
        )
        .unwrap();
        assert!(r.final_metric > 0.8, "accuracy {}", r.final_metric);
        // Loss decreased.
        assert!(r.curve.last().unwrap().loss < r.curve[0].loss);
    }

    #[test]
    fn compressed_training_converges_too() {
        // The paper's convergence claim: compression with error
        // feedback reaches (approximately) the same accuracy.
        for alg in [
            Algorithm::TernGrad { bitwidth: 2 },
            Algorithm::Dgc { rate: 0.05 },
        ] {
            let (mut reps, eval) = mlp_replicas(4);
            let r = run_data_parallel(
                &base_cfg(alg),
                &mut reps,
                |m| m.data().len(),
                |m| m.accuracy(&eval),
            )
            .unwrap();
            assert!(
                r.final_metric > 0.75,
                "{:?}: accuracy {}",
                alg,
                r.final_metric
            );
        }
    }

    #[test]
    fn compression_reduces_bytes() {
        let (mut raw_reps, eval) = mlp_replicas(2);
        let mut cfg = base_cfg(Algorithm::None);
        cfg.workers = 2;
        cfg.iterations = 5;
        let raw = run_data_parallel(
            &cfg,
            &mut raw_reps,
            |m| m.data().len(),
            |m| m.accuracy(&eval),
        )
        .unwrap();
        let (mut cmp_reps, _) = mlp_replicas(2);
        cfg.algorithm = Algorithm::OneBit;
        let cmp = run_data_parallel(
            &cfg,
            &mut cmp_reps,
            |m| m.data().len(),
            |m| m.accuracy(&eval),
        )
        .unwrap();
        assert!(
            cmp.bytes_per_iteration < raw.bytes_per_iteration / 5.0,
            "compressed {} vs raw {}",
            cmp.bytes_per_iteration,
            raw.bytes_per_iteration
        );
    }

    #[test]
    fn replicas_stay_identical() {
        let (mut reps, _) = mlp_replicas(3);
        let mut cfg = base_cfg(Algorithm::Dgc { rate: 0.1 });
        cfg.workers = 3;
        cfg.iterations = 10;
        run_data_parallel(&cfg, &mut reps, |m| m.data().len(), |_| 0.0).unwrap();
        let p0 = reps[0].params();
        for r in &reps[1..] {
            assert_eq!(r.params(), p0, "replicas diverged");
        }
    }

    #[test]
    fn iterations_to_target() {
        let r = ConvergenceResult {
            curve: vec![
                MetricPoint {
                    iteration: 0,
                    loss: 1.0,
                    metric: 0.3,
                },
                MetricPoint {
                    iteration: 10,
                    loss: 0.5,
                    metric: 0.8,
                },
            ],
            final_metric: 0.8,
            bytes_per_iteration: 0.0,
        };
        assert_eq!(r.iterations_to_target(0.7, true), Some(10));
        assert_eq!(r.iterations_to_target(0.9, true), None);
        assert_eq!(r.iterations_to_target(0.6, false), Some(0));
    }

    #[test]
    fn worker_mismatch_rejected() {
        let (mut reps, _) = mlp_replicas(2);
        let cfg = base_cfg(Algorithm::None); // workers = 4
        assert!(run_data_parallel(&cfg, &mut reps, |m| m.data().len(), |_| 0.0).is_err());
    }
}

//! Data parallel DNN training: the end-to-end layer of HiPress.
//!
//! Two halves:
//!
//! * [`sim`] — the cluster **throughput simulator**: combines the
//!   model zoo (per-layer gradients and compute times), CaSync (task
//!   graphs and the discrete-event executor), the planner, and local
//!   aggregation into per-iteration times, training throughput,
//!   scaling efficiency, and communication ratios — everything the
//!   paper's Figures 7–12 and Table 1 measure.
//! * [`nn`] + [`convergence`] — the **real training** substrate: a
//!   from-scratch MLP classifier and LSTM language model trained with
//!   actual data-parallel SGD, where gradients really are compressed
//!   with error feedback and aggregated — the Figure 13 convergence
//!   validation.

#![forbid(unsafe_code)]

pub mod convergence;
pub mod nn;
pub mod sim;

pub use convergence::{ConvergenceConfig, ConvergenceResult};
pub use sim::{simulate, simulate_with_tracer, sync_only_ns, SimResult, TrainingJob};

//! Synthetic datasets for the convergence experiments.
//!
//! The paper's convergence claims (Figure 13) are about the
//! interaction of lossy gradient compression with SGD, not about any
//! particular dataset, so we use deterministic synthetic data:
//!
//! * a Gaussian-mixture classification problem (separable but noisy),
//!   the stand-in for the image classification task;
//! * a first-order Markov "language" over a small alphabet whose
//!   transition structure a language model can learn, the stand-in
//!   for wikitext.

use hipress_util::rng::{Rng64, Xoshiro256};

/// A labelled classification dataset.
#[derive(Debug, Clone)]
pub struct Classification {
    /// Input dimensionality.
    pub dim: usize,
    /// Number of classes.
    pub classes: usize,
    /// Flattened features, `len * dim`.
    pub features: Vec<f32>,
    /// Labels in `0..classes`.
    pub labels: Vec<usize>,
}

impl Classification {
    /// Generates `n` examples of a `classes`-way Gaussian mixture in
    /// `dim` dimensions. Cluster centres are random unit-ish vectors
    /// scaled by `separation`; features add unit Gaussian noise.
    pub fn gaussian_mixture(
        n: usize,
        dim: usize,
        classes: usize,
        separation: f32,
        seed: u64,
    ) -> Self {
        let mut rng = Xoshiro256::new(seed);
        let centers: Vec<f32> = (0..classes * dim)
            .map(|_| (rng.next_gaussian() as f32) * separation)
            .collect();
        let mut features = Vec::with_capacity(n * dim);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let c = rng.index(classes);
            labels.push(c);
            for d in 0..dim {
                features.push(centers[c * dim + d] + rng.next_gaussian() as f32);
            }
        }
        Self {
            dim,
            classes,
            features,
            labels,
        }
    }

    /// Splits the dataset into `parts` disjoint shards (for data
    /// parallel workers) by round-robin assignment, preserving the
    /// class distribution.
    pub fn split(&self, parts: usize) -> Vec<Classification> {
        assert!(parts > 0, "need at least one shard");
        let mut shards: Vec<Classification> = (0..parts)
            .map(|_| Classification {
                dim: self.dim,
                classes: self.classes,
                features: Vec::new(),
                labels: Vec::new(),
            })
            .collect();
        for i in 0..self.len() {
            let s = &mut shards[i % parts];
            s.features.extend_from_slice(self.example(i));
            s.labels.push(self.labels[i]);
        }
        shards
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The feature vector of example `i`.
    pub fn example(&self, i: usize) -> &[f32] {
        &self.features[i * self.dim..(i + 1) * self.dim]
    }
}

/// A token sequence with Markov structure.
#[derive(Debug, Clone)]
pub struct MarkovText {
    /// Alphabet size.
    pub vocab: usize,
    /// The token stream.
    pub tokens: Vec<usize>,
}

impl MarkovText {
    /// Generates `n` tokens from a random but fixed first-order
    /// Markov chain over `vocab` symbols with `concentration`
    /// controlling how predictable transitions are (higher = more
    /// predictable = lower achievable perplexity).
    pub fn generate(n: usize, vocab: usize, concentration: f64, seed: u64) -> Self {
        let mut rng = Xoshiro256::new(seed);
        // Each row: a transition distribution that strongly prefers a
        // few successors.
        let mut table: Vec<Vec<f64>> = Vec::with_capacity(vocab);
        for _ in 0..vocab {
            let mut row: Vec<f64> = (0..vocab)
                .map(|_| rng.next_f64().powf(concentration))
                .collect();
            let z: f64 = row.iter().sum();
            for p in &mut row {
                *p /= z;
            }
            table.push(row);
        }
        let mut tokens = Vec::with_capacity(n);
        let mut cur = rng.index(vocab);
        for _ in 0..n {
            tokens.push(cur);
            let r = rng.next_f64();
            let mut acc = 0.0;
            let mut next = vocab - 1;
            for (j, &p) in table[cur].iter().enumerate() {
                acc += p;
                if r < acc {
                    next = j;
                    break;
                }
            }
            cur = next;
        }
        Self { vocab, tokens }
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the text is empty.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixture_shapes_and_determinism() {
        let a = Classification::gaussian_mixture(500, 16, 10, 3.0, 7);
        let b = Classification::gaussian_mixture(500, 16, 10, 3.0, 7);
        assert_eq!(a.len(), 500);
        assert_eq!(a.features.len(), 500 * 16);
        assert_eq!(a.features, b.features);
        assert!(a.labels.iter().all(|&l| l < 10));
        assert_eq!(a.example(3).len(), 16);
    }

    #[test]
    fn mixture_is_separable_by_nearest_center() {
        // With large separation, examples sit near their class centre:
        // a trivial nearest-centroid rule (fit on the data itself)
        // should beat chance by a lot. We verify via class-mean
        // distances.
        let data = Classification::gaussian_mixture(2000, 8, 4, 6.0, 9);
        // Compute class means.
        let mut means = vec![vec![0.0f64; 8]; 4];
        let mut counts = vec![0usize; 4];
        for i in 0..data.len() {
            let c = data.labels[i];
            counts[c] += 1;
            for (m, &x) in means[c].iter_mut().zip(data.example(i)) {
                *m += x as f64;
            }
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            for v in m {
                *v /= c.max(1) as f64;
            }
        }
        let mut correct = 0;
        for i in 0..data.len() {
            let x = data.example(i);
            let best = (0..4)
                .min_by(|&a, &b| {
                    let da: f64 = means[a]
                        .iter()
                        .zip(x)
                        .map(|(m, &v)| (m - v as f64).powi(2))
                        .sum();
                    let db: f64 = means[b]
                        .iter()
                        .zip(x)
                        .map(|(m, &v)| (m - v as f64).powi(2))
                        .sum();
                    da.total_cmp(&db)
                })
                .unwrap();
            if best == data.labels[i] {
                correct += 1;
            }
        }
        let acc = correct as f64 / data.len() as f64;
        assert!(acc > 0.9, "nearest-centroid accuracy {acc}");
    }

    #[test]
    fn markov_text_is_predictable() {
        let t = MarkovText::generate(20_000, 32, 8.0, 3);
        assert_eq!(t.len(), 20_000);
        assert!(t.tokens.iter().all(|&x| x < 32));
        // Empirical bigram entropy must be well below uniform
        // (log2(32) = 5 bits): the structure is learnable.
        let mut counts = vec![vec![0u32; 32]; 32];
        for w in t.tokens.windows(2) {
            counts[w[0]][w[1]] += 1;
        }
        let mut h = 0.0f64;
        let total = (t.len() - 1) as f64;
        for row in &counts {
            let row_total: u32 = row.iter().sum();
            for &c in row {
                if c > 0 {
                    let p = c as f64 / total;
                    let p_cond = c as f64 / row_total as f64;
                    h -= p * p_cond.log2();
                }
            }
        }
        assert!(h < 4.0, "conditional entropy {h} bits");
    }
}

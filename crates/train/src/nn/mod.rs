//! From-scratch neural networks with exact backpropagation.
//!
//! These are the real-training substrates for the convergence
//! experiments (Figure 13): a multi-layer perceptron classifier (the
//! "ResNet50 accuracy" analogue) and a single-layer LSTM language
//! model (the "LSTM perplexity" analogue). Both compute true
//! gradients — verified against numerical differentiation in the
//! tests — so compressing those gradients exercises exactly the
//! property the paper's convergence claims rest on.

pub mod data;
pub mod lstm;
pub mod mlp;

pub use lstm::LstmLm;
pub use mlp::Mlp;

/// A model trainable by data parallel SGD: flat parameter access and
/// gradient computation over a batch.
pub trait Trainable {
    /// All parameters flattened into one vector (the "gradient
    /// layout" used for synchronization).
    fn params(&self) -> Vec<f32>;

    /// Overwrites parameters from a flat vector.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from `params()`.
    fn set_params(&mut self, flat: &[f32]);

    /// Computes the loss and the flat gradient on a batch, identified
    /// by example indices into the owner's dataset.
    fn loss_and_grad(&self, batch: &[usize]) -> (f64, Vec<f32>);

    /// Per-layer boundaries within the flat parameter vector
    /// (offsets where each named gradient starts, plus the total) —
    /// the layer-wise structure synchronization operates on.
    fn layer_offsets(&self) -> Vec<usize>;
}

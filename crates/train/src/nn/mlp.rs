//! A multi-layer perceptron classifier with exact backpropagation.

use super::data::Classification;
use super::Trainable;
use hipress_util::rng::{Rng64, Xoshiro256};

/// Fully-connected ReLU network with a softmax cross-entropy head.
///
/// Each worker in a data parallel run owns one `Mlp` replica plus its
/// data shard; gradients are averaged across workers exactly like the
/// simulated DNN training.
#[derive(Debug, Clone)]
pub struct Mlp {
    /// Layer widths, input first, classes last.
    dims: Vec<usize>,
    /// Per layer: row-major `out × in` weights.
    weights: Vec<Vec<f32>>,
    /// Per layer: `out` biases.
    biases: Vec<Vec<f32>>,
    /// This replica's data shard.
    data: Classification,
}

impl Mlp {
    /// Creates a network with Xavier-ish initialization.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dims are given or the dataset's
    /// dimensions do not match.
    pub fn new(dims: &[usize], data: Classification, seed: u64) -> Self {
        assert!(dims.len() >= 2, "need at least input and output layers");
        assert_eq!(dims[0], data.dim, "input width must match data");
        assert_eq!(
            *dims.last().unwrap(),
            data.classes,
            "output width must match classes"
        );
        let mut rng = Xoshiro256::new(seed);
        let mut weights = Vec::new();
        let mut biases = Vec::new();
        for w in dims.windows(2) {
            let (fan_in, fan_out) = (w[0], w[1]);
            let scale = (2.0 / fan_in as f64).sqrt() as f32;
            weights.push(
                (0..fan_in * fan_out)
                    .map(|_| (rng.next_gaussian() as f32) * scale)
                    .collect(),
            );
            biases.push(vec![0.0; fan_out]);
        }
        Self {
            dims: dims.to_vec(),
            weights,
            biases,
            data,
        }
    }

    /// The number of layers (weight matrices).
    pub fn layers(&self) -> usize {
        self.weights.len()
    }

    /// The replica's data shard.
    pub fn data(&self) -> &Classification {
        &self.data
    }

    /// Classifies one example, returning the argmax class.
    pub fn predict(&self, x: &[f32]) -> usize {
        let logits = self.forward_logits(x);
        logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Accuracy over a dataset.
    pub fn accuracy(&self, data: &Classification) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct = (0..data.len())
            .filter(|&i| self.predict(data.example(i)) == data.labels[i])
            .count();
        correct as f64 / data.len() as f64
    }

    fn forward_logits(&self, x: &[f32]) -> Vec<f32> {
        let mut act = x.to_vec();
        for (l, (w, b)) in self.weights.iter().zip(&self.biases).enumerate() {
            let (fan_in, fan_out) = (self.dims[l], self.dims[l + 1]);
            let mut next = vec![0.0f32; fan_out];
            for (o, n) in next.iter_mut().enumerate() {
                let row = &w[o * fan_in..(o + 1) * fan_in];
                let mut acc = b[o];
                for (wi, ai) in row.iter().zip(&act) {
                    acc += wi * ai;
                }
                *n = acc;
            }
            if l + 1 < self.weights.len() {
                for v in &mut next {
                    *v = v.max(0.0); // ReLU on hidden layers.
                }
            }
            act = next;
        }
        act
    }
}

/// Numerically stable softmax cross-entropy: returns (loss, dlogits).
fn softmax_ce(logits: &[f32], label: usize) -> (f64, Vec<f32>) {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f64> = logits.iter().map(|&l| ((l - max) as f64).exp()).collect();
    let z: f64 = exps.iter().sum();
    let loss = -(exps[label] / z).ln();
    let dlogits: Vec<f32> = exps
        .iter()
        .enumerate()
        .map(|(i, &e)| ((e / z) - f64::from(i == label)) as f32)
        .collect();
    (loss, dlogits)
}

impl Trainable for Mlp {
    fn params(&self) -> Vec<f32> {
        let mut flat = Vec::new();
        for (w, b) in self.weights.iter().zip(&self.biases) {
            flat.extend_from_slice(w);
            flat.extend_from_slice(b);
        }
        flat
    }

    fn set_params(&mut self, flat: &[f32]) {
        let mut cursor = 0;
        for (w, b) in self.weights.iter_mut().zip(&mut self.biases) {
            let wl = w.len();
            w.copy_from_slice(&flat[cursor..cursor + wl]);
            cursor += wl;
            let bl = b.len();
            b.copy_from_slice(&flat[cursor..cursor + bl]);
            cursor += bl;
        }
        assert_eq!(cursor, flat.len(), "parameter length mismatch");
    }

    fn loss_and_grad(&self, batch: &[usize]) -> (f64, Vec<f32>) {
        let n_layers = self.weights.len();
        let mut gw: Vec<Vec<f32>> = self.weights.iter().map(|w| vec![0.0; w.len()]).collect();
        let mut gb: Vec<Vec<f32>> = self.biases.iter().map(|b| vec![0.0; b.len()]).collect();
        let mut total_loss = 0.0f64;
        for &idx in batch {
            let x = self.data.example(idx);
            let label = self.data.labels[idx];
            // Forward, keeping activations.
            let mut acts: Vec<Vec<f32>> = vec![x.to_vec()];
            for l in 0..n_layers {
                let (fan_in, fan_out) = (self.dims[l], self.dims[l + 1]);
                let w = &self.weights[l];
                let b = &self.biases[l];
                let prev = &acts[l];
                let mut next = vec![0.0f32; fan_out];
                for (o, n) in next.iter_mut().enumerate() {
                    let row = &w[o * fan_in..(o + 1) * fan_in];
                    let mut acc = b[o];
                    for (wi, ai) in row.iter().zip(prev) {
                        acc += wi * ai;
                    }
                    *n = acc;
                }
                if l + 1 < n_layers {
                    for v in &mut next {
                        *v = v.max(0.0);
                    }
                }
                acts.push(next);
            }
            let (loss, mut delta) = softmax_ce(acts.last().unwrap(), label);
            total_loss += loss;
            // Backward.
            for l in (0..n_layers).rev() {
                let (fan_in, fan_out) = (self.dims[l], self.dims[l + 1]);
                let prev = &acts[l];
                for o in 0..fan_out {
                    gb[l][o] += delta[o];
                    let grow = &mut gw[l][o * fan_in..(o + 1) * fan_in];
                    for (g, ai) in grow.iter_mut().zip(prev) {
                        *g += delta[o] * ai;
                    }
                }
                if l > 0 {
                    let w = &self.weights[l];
                    let mut prev_delta = vec![0.0f32; fan_in];
                    for o in 0..fan_out {
                        let row = &w[o * fan_in..(o + 1) * fan_in];
                        for (pd, wi) in prev_delta.iter_mut().zip(row) {
                            *pd += delta[o] * wi;
                        }
                    }
                    // ReLU mask of the hidden activation.
                    for (pd, &a) in prev_delta.iter_mut().zip(&acts[l]) {
                        if a <= 0.0 {
                            *pd = 0.0;
                        }
                    }
                    delta = prev_delta;
                }
            }
        }
        // Average over the batch.
        let scale = 1.0 / batch.len().max(1) as f32;
        let mut flat = Vec::new();
        for (w, b) in gw.iter().zip(&gb) {
            flat.extend(w.iter().map(|&g| g * scale));
            flat.extend(b.iter().map(|&g| g * scale));
        }
        (total_loss / batch.len().max(1) as f64, flat)
    }

    fn layer_offsets(&self) -> Vec<usize> {
        let mut offsets = vec![0];
        let mut cursor = 0;
        for (w, b) in self.weights.iter().zip(&self.biases) {
            cursor += w.len();
            offsets.push(cursor);
            cursor += b.len();
            offsets.push(cursor);
        }
        offsets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Mlp {
        let data = Classification::gaussian_mixture(64, 5, 3, 3.0, 1);
        Mlp::new(&[5, 7, 3], data, 2)
    }

    #[test]
    fn param_roundtrip() {
        let mut m = tiny();
        let p = m.params();
        assert_eq!(p.len(), 5 * 7 + 7 + 7 * 3 + 3);
        let mut q = p.clone();
        q[0] += 1.0;
        m.set_params(&q);
        assert_eq!(m.params(), q);
    }

    #[test]
    fn layer_offsets_cover_params() {
        let m = tiny();
        let off = m.layer_offsets();
        assert_eq!(off.len(), 2 * m.layers() + 1);
        assert_eq!(*off.last().unwrap(), m.params().len());
        assert!(off.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn gradient_matches_numerical() {
        let m = tiny();
        let batch: Vec<usize> = (0..8).collect();
        let (_, grad) = m.loss_and_grad(&batch);
        let p0 = m.params();
        let eps = 1e-3f32;
        let mut rng = Xoshiro256::new(5);
        // Check 30 random coordinates.
        for _ in 0..30 {
            let i = rng.index(p0.len());
            let mut m2 = m.clone();
            let mut p = p0.clone();
            p[i] += eps;
            m2.set_params(&p);
            let (l_plus, _) = m2.loss_and_grad(&batch);
            p[i] -= 2.0 * eps;
            m2.set_params(&p);
            let (l_minus, _) = m2.loss_and_grad(&batch);
            let numeric = (l_plus - l_minus) / (2.0 * eps as f64);
            let analytic = grad[i] as f64;
            assert!(
                (numeric - analytic).abs() < 1e-2 * numeric.abs().max(analytic.abs()).max(0.1),
                "coord {i}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn sgd_reduces_loss() {
        let mut m = tiny();
        let batch: Vec<usize> = (0..32).collect();
        let (l0, _) = m.loss_and_grad(&batch);
        for _ in 0..50 {
            let (_, g) = m.loss_and_grad(&batch);
            let mut p = m.params();
            for (pi, gi) in p.iter_mut().zip(&g) {
                *pi -= 0.1 * gi;
            }
            m.set_params(&p);
        }
        let (l1, _) = m.loss_and_grad(&batch);
        assert!(l1 < l0 * 0.5, "loss {l0} -> {l1}");
    }

    #[test]
    fn accuracy_improves_with_training() {
        let data = Classification::gaussian_mixture(400, 8, 4, 4.0, 3);
        let mut m = Mlp::new(&[8, 16, 4], data.clone(), 4);
        let before = m.accuracy(&data);
        let batch: Vec<usize> = (0..64).collect();
        for _ in 0..100 {
            let (_, g) = m.loss_and_grad(&batch);
            let mut p = m.params();
            for (pi, gi) in p.iter_mut().zip(&g) {
                *pi -= 0.05 * gi;
            }
            m.set_params(&p);
        }
        let after = m.accuracy(&data);
        assert!(after > before, "{before} -> {after}");
        assert!(after > 0.7, "final accuracy {after}");
    }
}

//! A single-layer LSTM language model with full backpropagation
//! through time.

use super::data::MarkovText;
use super::Trainable;
use hipress_util::rng::{Rng64, Xoshiro256};

/// LSTM language model: embedding → LSTM cell → softmax head.
///
/// Gate layout inside the `4H × (E+H)` weight matrix and `4H` bias:
/// input, forget, cell, output (i, f, g, o).
#[derive(Debug, Clone)]
pub struct LstmLm {
    vocab: usize,
    embed_dim: usize,
    hidden: usize,
    /// Sequence length used for truncated BPTT.
    pub seq_len: usize,
    /// `vocab × embed_dim` embedding table.
    embed: Vec<f32>,
    /// `4H × (E+H)` gate weights.
    w: Vec<f32>,
    /// `4H` gate biases.
    b: Vec<f32>,
    /// `vocab × H` output head.
    w_out: Vec<f32>,
    /// `vocab` output bias.
    b_out: Vec<f32>,
    /// This replica's text shard.
    data: MarkovText,
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl LstmLm {
    /// Creates a model over `data` with the given sizes.
    pub fn new(
        embed_dim: usize,
        hidden: usize,
        seq_len: usize,
        data: MarkovText,
        seed: u64,
    ) -> Self {
        let vocab = data.vocab;
        let mut rng = Xoshiro256::new(seed);
        let init = |n: usize, scale: f32, rng: &mut Xoshiro256| -> Vec<f32> {
            (0..n)
                .map(|_| (rng.next_gaussian() as f32) * scale)
                .collect()
        };
        let gate_in = embed_dim + hidden;
        let mut b = vec![0.0f32; 4 * hidden];
        // Forget-gate bias 1.0: the standard trick for stable early
        // training.
        for v in b[hidden..2 * hidden].iter_mut() {
            *v = 1.0;
        }
        Self {
            vocab,
            embed_dim,
            hidden,
            seq_len,
            embed: init(vocab * embed_dim, 0.1, &mut rng),
            w: init(
                4 * hidden * gate_in,
                (1.0 / gate_in as f64).sqrt() as f32,
                &mut rng,
            ),
            b,
            w_out: init(
                vocab * hidden,
                (1.0 / hidden as f64).sqrt() as f32,
                &mut rng,
            ),
            b_out: vec![0.0; vocab],
            data,
        }
    }

    /// The replica's text shard.
    pub fn data(&self) -> &MarkovText {
        &self.data
    }

    /// Average cross-entropy (nats per token) over `n` evaluation
    /// windows, and the corresponding perplexity.
    pub fn perplexity(&self, n_windows: usize) -> f64 {
        let mut total = 0.0f64;
        let mut count = 0usize;
        let stride = (self.data.len() - self.seq_len - 1) / n_windows.max(1);
        for w in 0..n_windows {
            let start = w * stride.max(1);
            if start + self.seq_len + 1 > self.data.len() {
                break;
            }
            let (loss, _) = self.window_loss_grad(start, false);
            total += loss;
            count += 1;
        }
        (total / count.max(1) as f64).exp()
    }

    /// Forward (and optionally backward) over one window starting at
    /// token `start`. Returns mean loss per token and, when `grads`
    /// is true, the flat gradient.
    fn window_loss_grad(&self, start: usize, grads: bool) -> (f64, Vec<f32>) {
        let (e, h, v) = (self.embed_dim, self.hidden, self.vocab);
        let gate_in = e + h;
        let t_max = self.seq_len;
        // Forward state per step.
        let mut xs = Vec::with_capacity(t_max); // token ids
        let mut embeds = Vec::with_capacity(t_max);
        let mut gates = Vec::with_capacity(t_max); // post-activation [i,f,g,o]
        let mut cs = Vec::with_capacity(t_max);
        let mut hs = Vec::with_capacity(t_max);
        let mut loss = 0.0f64;
        let mut dlogits_all = Vec::with_capacity(t_max);
        let mut h_prev = vec![0.0f32; h];
        let mut c_prev = vec![0.0f32; h];
        for t in 0..t_max {
            let tok = self.data.tokens[start + t];
            let target = self.data.tokens[start + t + 1];
            xs.push(tok);
            let emb = &self.embed[tok * e..(tok + 1) * e];
            embeds.push(emb.to_vec());
            // Gate pre-activations.
            let mut g4 = vec![0.0f32; 4 * h];
            for (row, gv) in g4.iter_mut().enumerate() {
                let wrow = &self.w[row * gate_in..(row + 1) * gate_in];
                let mut acc = self.b[row];
                for (wi, &xi) in wrow[..e].iter().zip(emb) {
                    acc += wi * xi;
                }
                for (wi, &hi) in wrow[e..].iter().zip(&h_prev) {
                    acc += wi * hi;
                }
                *gv = acc;
            }
            // Activations.
            let mut act = vec![0.0f32; 4 * h];
            for j in 0..h {
                act[j] = sigmoid(g4[j]); // i
                act[h + j] = sigmoid(g4[h + j]); // f
                act[2 * h + j] = g4[2 * h + j].tanh(); // g
                act[3 * h + j] = sigmoid(g4[3 * h + j]); // o
            }
            let mut c_t = vec![0.0f32; h];
            let mut h_t = vec![0.0f32; h];
            for j in 0..h {
                c_t[j] = act[h + j] * c_prev[j] + act[j] * act[2 * h + j];
                h_t[j] = act[3 * h + j] * c_t[j].tanh();
            }
            // Head + loss.
            let mut logits = vec![0.0f32; v];
            for (o, l) in logits.iter_mut().enumerate() {
                let row = &self.w_out[o * h..(o + 1) * h];
                let mut acc = self.b_out[o];
                for (wi, &hi) in row.iter().zip(&h_t) {
                    acc += wi * hi;
                }
                *l = acc;
            }
            let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let exps: Vec<f64> = logits.iter().map(|&l| ((l - max) as f64).exp()).collect();
            let z: f64 = exps.iter().sum();
            loss += -(exps[target] / z).ln();
            let dl: Vec<f32> = exps
                .iter()
                .enumerate()
                .map(|(i, &ex)| ((ex / z) - f64::from(i == target)) as f32)
                .collect();
            dlogits_all.push(dl);
            gates.push(act);
            cs.push(c_t.clone());
            hs.push(h_t.clone());
            c_prev = c_t;
            h_prev = h_t;
        }
        loss /= t_max as f64;
        if !grads {
            return (loss, Vec::new());
        }

        // Backward through time.
        let mut g_embed = vec![0.0f32; self.embed.len()];
        let mut g_w = vec![0.0f32; self.w.len()];
        let mut g_b = vec![0.0f32; self.b.len()];
        let mut g_wout = vec![0.0f32; self.w_out.len()];
        let mut g_bout = vec![0.0f32; self.b_out.len()];
        let scale = 1.0 / t_max as f32;
        let mut dh_next = vec![0.0f32; h];
        let mut dc_next = vec![0.0f32; h];
        let zeros = vec![0.0f32; h];
        for t in (0..t_max).rev() {
            let h_t = &hs[t];
            let c_t = &cs[t];
            let act = &gates[t];
            let c_prev_t: &[f32] = if t == 0 { &zeros } else { &cs[t - 1] };
            let h_prev_t: &[f32] = if t == 0 { &zeros } else { &hs[t - 1] };
            // Head gradients and dh from the head.
            let dl = &dlogits_all[t];
            let mut dh = dh_next.clone();
            for o in 0..v {
                g_bout[o] += dl[o] * scale;
                let row = &mut g_wout[o * h..(o + 1) * h];
                for j in 0..h {
                    row[j] += dl[o] * h_t[j] * scale;
                    dh[j] += dl[o] * self.w_out[o * h + j] * scale;
                }
            }
            // Through h_t = o * tanh(c_t).
            let mut dc = dc_next.clone();
            let mut dgate = vec![0.0f32; 4 * h]; // pre-activation grads
            for j in 0..h {
                let tc = c_t[j].tanh();
                let o_act = act[3 * h + j];
                // d o (pre-activation via sigmoid').
                dgate[3 * h + j] = dh[j] * tc * o_act * (1.0 - o_act);
                dc[j] += dh[j] * o_act * (1.0 - tc * tc);
                // c_t = f*c_prev + i*g
                let (i_a, f_a, g_a) = (act[j], act[h + j], act[2 * h + j]);
                dgate[j] = dc[j] * g_a * i_a * (1.0 - i_a);
                dgate[h + j] = dc[j] * c_prev_t[j] * f_a * (1.0 - f_a);
                dgate[2 * h + j] = dc[j] * i_a * (1.0 - g_a * g_a);
            }
            // Accumulate W, b, and input/hidden deltas.
            let emb = &embeds[t];
            let tok = xs[t];
            let mut dh_prev = vec![0.0f32; h];
            let mut demb = vec![0.0f32; e];
            for row in 0..4 * h {
                let dg = dgate[row];
                if dg == 0.0 {
                    continue;
                }
                g_b[row] += dg;
                let wrow = &self.w[row * gate_in..(row + 1) * gate_in];
                let grow = &mut g_w[row * gate_in..(row + 1) * gate_in];
                for k in 0..e {
                    grow[k] += dg * emb[k];
                    demb[k] += dg * wrow[k];
                }
                for k in 0..h {
                    grow[e + k] += dg * h_prev_t[k];
                    dh_prev[k] += dg * wrow[e + k];
                }
            }
            for k in 0..e {
                g_embed[tok * e + k] += demb[k];
            }
            // Carry to t-1.
            dh_next = dh_prev;
            dc_next = (0..h).map(|j| dc[j] * act[h + j]).collect();
        }
        let mut flat = Vec::with_capacity(self.param_len());
        flat.extend_from_slice(&g_embed);
        flat.extend_from_slice(&g_w);
        flat.extend_from_slice(&g_b);
        flat.extend_from_slice(&g_wout);
        flat.extend_from_slice(&g_bout);
        (loss, flat)
    }

    fn param_len(&self) -> usize {
        self.embed.len() + self.w.len() + self.b.len() + self.w_out.len() + self.b_out.len()
    }
}

impl Trainable for LstmLm {
    fn params(&self) -> Vec<f32> {
        let mut flat = Vec::with_capacity(self.param_len());
        flat.extend_from_slice(&self.embed);
        flat.extend_from_slice(&self.w);
        flat.extend_from_slice(&self.b);
        flat.extend_from_slice(&self.w_out);
        flat.extend_from_slice(&self.b_out);
        flat
    }

    fn set_params(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.param_len(), "parameter length mismatch");
        let mut cur = 0;
        for part in [
            &mut self.embed,
            &mut self.w,
            &mut self.b,
            &mut self.w_out,
            &mut self.b_out,
        ] {
            let len = part.len();
            part.copy_from_slice(&flat[cur..cur + len]);
            cur += len;
        }
    }

    fn loss_and_grad(&self, batch: &[usize]) -> (f64, Vec<f32>) {
        let mut total = 0.0f64;
        let mut grad = vec![0.0f32; self.param_len()];
        for &start in batch {
            let (l, g) = self.window_loss_grad(start, true);
            total += l;
            for (a, b) in grad.iter_mut().zip(g) {
                *a += b;
            }
        }
        let scale = 1.0 / batch.len().max(1) as f32;
        for g in &mut grad {
            *g *= scale;
        }
        (total / batch.len().max(1) as f64, grad)
    }

    fn layer_offsets(&self) -> Vec<usize> {
        let mut offsets = vec![0];
        let mut cur = 0;
        for len in [
            self.embed.len(),
            self.w.len(),
            self.b.len(),
            self.w_out.len(),
            self.b_out.len(),
        ] {
            cur += len;
            offsets.push(cur);
        }
        offsets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LstmLm {
        let data = MarkovText::generate(400, 7, 6.0, 3);
        LstmLm::new(4, 5, 6, data, 11)
    }

    #[test]
    fn param_roundtrip_and_offsets() {
        let mut m = tiny();
        let p = m.params();
        let off = m.layer_offsets();
        assert_eq!(*off.last().unwrap(), p.len());
        assert_eq!(off.len(), 6);
        let mut q = p.clone();
        q[3] = 9.0;
        m.set_params(&q);
        assert_eq!(m.params(), q);
    }

    #[test]
    fn gradient_matches_numerical() {
        let m = tiny();
        let batch = [0usize, 17];
        let (_, grad) = m.loss_and_grad(&batch);
        let p0 = m.params();
        let eps = 1e-2f32;
        let mut rng = Xoshiro256::new(8);
        for _ in 0..25 {
            let i = rng.index(p0.len());
            let mut m2 = m.clone();
            let mut p = p0.clone();
            p[i] += eps;
            m2.set_params(&p);
            let (lp, _) = m2.loss_and_grad(&batch);
            p[i] -= 2.0 * eps;
            m2.set_params(&p);
            let (lm, _) = m2.loss_and_grad(&batch);
            let numeric = (lp - lm) / (2.0 * eps as f64);
            let analytic = grad[i] as f64;
            assert!(
                (numeric - analytic).abs() < 2e-2 * numeric.abs().max(analytic.abs()).max(0.05),
                "coord {i}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn training_reduces_perplexity() {
        let data = MarkovText::generate(4000, 12, 8.0, 5);
        let mut m = LstmLm::new(8, 16, 8, data, 7);
        let before = m.perplexity(20);
        let mut rng = Xoshiro256::new(9);
        for _ in 0..150 {
            let batch: Vec<usize> = (0..8)
                .map(|_| rng.index(m.data().len() - m.seq_len - 1))
                .collect();
            let (_, g) = m.loss_and_grad(&batch);
            let mut p = m.params();
            for (pi, gi) in p.iter_mut().zip(&g) {
                *pi -= 0.5 * gi;
            }
            m.set_params(&p);
        }
        let after = m.perplexity(20);
        assert!(
            after < before * 0.8,
            "perplexity {before} -> {after} did not improve"
        );
        // Far below uniform (vocab = 12).
        assert!(after < 11.0, "perplexity {after}");
    }
}

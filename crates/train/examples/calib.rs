//! Quick calibration probe for Table 1 shapes.
use hipress_compress::Algorithm;
use hipress_core::{ClusterConfig, Strategy};
use hipress_models::DnnModel;
use hipress_train::{simulate, TrainingJob};

fn main() {
    let ec2 = ClusterConfig::ec2(16);
    let rows = [
        (
            "Ring  Transformer raw   ",
            TrainingJob::baseline(DnnModel::Transformer, ec2, Strategy::HorovodRing),
        ),
        (
            "Ring  Transformer DGC   ",
            TrainingJob::baseline(DnnModel::Transformer, ec2, Strategy::HorovodRing)
                .with_algorithm(Algorithm::Dgc { rate: 0.001 }),
        ),
        (
            "BytePS Bert-large raw   ",
            TrainingJob::baseline(DnnModel::BertLarge, ec2.with_tcp(), Strategy::BytePs),
        ),
        (
            "BytePS Bert-large onebit",
            TrainingJob::baseline(DnnModel::BertLarge, ec2.with_tcp(), Strategy::BytePs)
                .with_algorithm(Algorithm::OneBit),
        ),
        (
            "HiPress Bert-large PS   ",
            TrainingJob::hipress(DnnModel::BertLarge, ec2, Strategy::CaSyncPs),
        ),
        (
            "HiPress Transformer Ring",
            TrainingJob::hipress(DnnModel::Transformer, ec2, Strategy::CaSyncRing)
                .with_algorithm(Algorithm::Dgc { rate: 0.001 }),
        ),
        (
            "Ring  VGG19 raw         ",
            TrainingJob::baseline(DnnModel::Vgg19, ec2, Strategy::HorovodRing),
        ),
        (
            "BytePS VGG19 raw        ",
            TrainingJob::baseline(DnnModel::Vgg19, ec2.with_tcp(), Strategy::BytePs),
        ),
        (
            "HiPress VGG19 PS onebit ",
            TrainingJob::hipress(DnnModel::Vgg19, ec2, Strategy::CaSyncPs),
        ),
        (
            "BytePS VGG19 onebit     ",
            TrainingJob::baseline(DnnModel::Vgg19, ec2.with_tcp(), Strategy::BytePs)
                .with_algorithm(Algorithm::OneBit),
        ),
        (
            "Ring  Bert-large raw    ",
            TrainingJob::baseline(DnnModel::BertLarge, ec2, Strategy::HorovodRing),
        ),
        (
            "HiPress VGG19 Ring      ",
            TrainingJob::hipress(DnnModel::Vgg19, ec2, Strategy::CaSyncRing),
        ),
        (
            "Ring  ResNet50 raw      ",
            TrainingJob::baseline(DnnModel::ResNet50, ec2, Strategy::HorovodRing),
        ),
        (
            "Ring  ResNet50 OSS-DGC  ",
            TrainingJob::baseline(DnnModel::ResNet50, ec2, Strategy::HorovodRing)
                .with_algorithm(Algorithm::Dgc { rate: 0.001 }),
        ),
        (
            "HiPress ResNet50 Ring   ",
            TrainingJob::hipress(DnnModel::ResNet50, ec2, Strategy::CaSyncRing)
                .with_algorithm(Algorithm::Dgc { rate: 0.001 }),
        ),
    ];
    for (name, job) in rows {
        match simulate(&job) {
            Ok(r) => println!(
                "{name}  eff={:.2}  comm={:.2}  iter={:.1}ms thpt={:.0}",
                r.scaling_efficiency,
                r.comm_ratio,
                r.iteration_ns as f64 / 1e6,
                r.throughput
            ),
            Err(e) => println!("{name}  ERROR {e}"),
        }
    }
}

//! The eight models of Table 6.

use crate::compute::{ComputeProfile, GpuClass};
use crate::recipe::{build_sizes, Recipe};
use crate::MIB;

/// One gradient (one parameter tensor) of a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerGrad {
    /// Stable gradient name ("vgg19.grad17").
    pub name: String,
    /// Size in bytes (fp32).
    pub bytes: u64,
}

/// A fully-specified model: its gradient list (forward-layer order)
/// and compute profiles.
#[derive(Debug, Clone)]
pub struct ModelSpec {
    /// Model name as in Table 6.
    pub name: &'static str,
    /// Per-layer gradients, index 0 nearest the input.
    pub layers: Vec<LayerGrad>,
    v100: ComputeProfile,
}

impl ModelSpec {
    /// Total gradient volume in bytes (Table 6 "Total size").
    pub fn total_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.bytes).sum()
    }

    /// Largest gradient in bytes (Table 6 "Max gradient").
    pub fn max_gradient_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.bytes).max().unwrap_or(0)
    }

    /// Number of gradients (Table 6 "# Gradients").
    pub fn num_gradients(&self) -> usize {
        self.layers.len()
    }

    /// The compute profile on the given GPU class.
    pub fn compute(&self, gpu: GpuClass) -> ComputeProfile {
        self.v100.scaled(gpu.slowdown())
    }

    /// When each gradient becomes ready during the backward pass, as
    /// an offset from the start of backward.
    ///
    /// Backward runs from the output layer towards the input, so the
    /// **last** layer's gradient is ready first. Per-layer backward
    /// time is approximated as proportional to the layer's gradient
    /// size with a small fixed floor per layer (kernel launches).
    pub fn backward_ready_offsets(&self, gpu: GpuClass) -> Vec<u64> {
        let bwd = self.compute(gpu).backward_ns;
        let n = self.layers.len();
        let floor = 1.0; // Relative fixed cost per layer.
        let weights: Vec<f64> = self
            .layers
            .iter()
            .map(|l| l.bytes as f64 / self.total_bytes().max(1) as f64 * n as f64 + floor)
            .collect();
        let wsum: f64 = weights.iter().sum();
        let mut offsets = vec![0u64; n];
        let mut acc = 0.0f64;
        for i in (0..n).rev() {
            acc += weights[i];
            offsets[i] = (bwd as f64 * acc / wsum) as u64;
        }
        offsets
    }
}

/// The models trained in the paper's evaluation (Table 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DnnModel {
    /// VGG19 on ImageNet (computer vision, few huge gradients).
    Vgg19,
    /// ResNet50 on ImageNet (computer vision, many small gradients).
    ResNet50,
    /// U-GAT-IT on selfie2anime (image-to-image GAN, enormous).
    Ugatit,
    /// U-GAT-IT light variant (fits 1080 Ti memory).
    UgatitLight,
    /// BERT base on RTE (NLP, many tiny gradients).
    BertBase,
    /// BERT large on RTE.
    BertLarge,
    /// AWD-LSTM language model on wikitext-2.
    Lstm,
    /// Transformer (WMT17) — the paper's most communication-intensive
    /// model.
    Transformer,
}

impl DnnModel {
    /// All models, in Table 6 order.
    pub fn all() -> [DnnModel; 8] {
        [
            DnnModel::Vgg19,
            DnnModel::ResNet50,
            DnnModel::Ugatit,
            DnnModel::UgatitLight,
            DnnModel::BertBase,
            DnnModel::BertLarge,
            DnnModel::Lstm,
            DnnModel::Transformer,
        ]
    }

    /// The model's display name.
    pub fn name(&self) -> &'static str {
        match self {
            DnnModel::Vgg19 => "VGG19",
            DnnModel::ResNet50 => "ResNet50",
            DnnModel::Ugatit => "UGATIT",
            DnnModel::UgatitLight => "UGATIT-light",
            DnnModel::BertBase => "Bert-base",
            DnnModel::BertLarge => "Bert-large",
            DnnModel::Lstm => "LSTM",
            DnnModel::Transformer => "Transformer",
        }
    }

    /// Looks a model up by its display name (case-insensitive).
    pub fn by_name(name: &str) -> Option<DnnModel> {
        DnnModel::all()
            .into_iter()
            .find(|m| m.name().eq_ignore_ascii_case(name))
    }

    /// Builds the full specification.
    pub fn spec(&self) -> ModelSpec {
        let (layers, v100) = match self {
            DnnModel::Vgg19 => (vgg19_layers(), ComputeProfile::from_ms(32, 62.0, 126.0)),
            DnnModel::ResNet50 => (
                recipe_layers(
                    "resnet50",
                    Recipe {
                        count: 155,
                        total_bytes: mib_f(97.46),
                        max_bytes: mib_f(9.0),
                        small_frac: 0.60,
                        small_range: (1024, 8 * 1024),
                        seed: 0x50,
                    },
                ),
                ComputeProfile::from_ms(32, 30.0, 59.0),
            ),
            DnnModel::Ugatit => (
                recipe_layers(
                    "ugatit",
                    Recipe {
                        count: 148,
                        total_bytes: mib_f(2558.75),
                        max_bytes: mib_f(1024.0),
                        small_frac: 0.35,
                        small_range: (2 * 1024, 64 * 1024),
                        seed: 0x0607,
                    },
                ),
                ComputeProfile::from_ms(4, 230.0, 440.0),
            ),
            DnnModel::UgatitLight => (
                recipe_layers(
                    "ugatit-light",
                    Recipe {
                        count: 148,
                        total_bytes: mib_f(511.25),
                        max_bytes: mib_f(128.0),
                        small_frac: 0.35,
                        small_range: (2 * 1024, 32 * 1024),
                        seed: 0x0608,
                    },
                ),
                ComputeProfile::from_ms(4, 85.0, 165.0),
            ),
            DnnModel::BertBase => (
                recipe_layers(
                    "bert-base",
                    Recipe {
                        count: 207,
                        total_bytes: mib_f(420.02),
                        max_bytes: mib_f(89.42),
                        small_frac: 0.627,
                        small_range: (2 * 1024, 12 * 1024),
                        seed: 0xBE27,
                    },
                ),
                ComputeProfile::from_ms(32, 48.0, 92.0),
            ),
            DnnModel::BertLarge => (
                recipe_layers(
                    "bert-large",
                    Recipe {
                        count: 399,
                        total_bytes: mib_f(1282.60),
                        max_bytes: mib_f(119.23),
                        small_frac: 0.60,
                        small_range: (4 * 1024, 16 * 1024),
                        seed: 0xBE28,
                    },
                ),
                ComputeProfile::from_ms(32, 130.0, 245.0),
            ),
            DnnModel::Lstm => (
                recipe_layers(
                    "lstm",
                    Recipe {
                        count: 10,
                        total_bytes: mib_f(327.97),
                        max_bytes: mib_f(190.42),
                        small_frac: 0.2,
                        small_range: (2 * 1024, 8 * 1024),
                        seed: 0x157,
                    },
                ),
                ComputeProfile::from_ms(80, 65.0, 115.0),
            ),
            DnnModel::Transformer => (
                recipe_layers(
                    "transformer",
                    Recipe {
                        count: 185,
                        total_bytes: mib_f(234.08),
                        max_bytes: mib_f(65.84),
                        small_frac: 0.50,
                        small_range: (2 * 1024, 16 * 1024),
                        seed: 0x7247,
                    },
                ),
                ComputeProfile::from_ms(2048, 38.0, 72.0),
            ),
        };
        ModelSpec {
            name: self.name(),
            layers,
            v100,
        }
    }
}

/// Rounds a MiB quantity from Table 6 to whole f32s.
fn mib_f(mib: f64) -> u64 {
    ((mib * MIB as f64) as u64) / 4 * 4
}

fn recipe_layers(prefix: &str, recipe: Recipe) -> Vec<LayerGrad> {
    build_sizes(&recipe)
        .into_iter()
        .enumerate()
        .map(|(i, bytes)| LayerGrad {
            name: format!("{prefix}.grad{i}"),
            bytes,
        })
        .collect()
}

/// VGG19's exact parameter tensors: 16 convolutions and 3 fully
/// connected layers, each with a weight and a bias — 38 gradients,
/// 548.05 MiB total, fc6's 25088×4096 weight being the documented
/// 392 MiB maximum.
fn vgg19_layers() -> Vec<LayerGrad> {
    // (name, output channels, input channels) for 3x3 convolutions.
    let convs: [(&str, u64, u64); 16] = [
        ("conv1_1", 64, 3),
        ("conv1_2", 64, 64),
        ("conv2_1", 128, 64),
        ("conv2_2", 128, 128),
        ("conv3_1", 256, 128),
        ("conv3_2", 256, 256),
        ("conv3_3", 256, 256),
        ("conv3_4", 256, 256),
        ("conv4_1", 512, 256),
        ("conv4_2", 512, 512),
        ("conv4_3", 512, 512),
        ("conv4_4", 512, 512),
        ("conv5_1", 512, 512),
        ("conv5_2", 512, 512),
        ("conv5_3", 512, 512),
        ("conv5_4", 512, 512),
    ];
    let mut layers = Vec::with_capacity(38);
    for (name, out_c, in_c) in convs {
        layers.push(LayerGrad {
            name: format!("vgg19.{name}.weight"),
            bytes: out_c * in_c * 9 * 4,
        });
        layers.push(LayerGrad {
            name: format!("vgg19.{name}.bias"),
            bytes: out_c * 4,
        });
    }
    // Fully connected: 7*7*512 = 25088 -> 4096 -> 4096 -> 1000.
    let fcs: [(&str, u64, u64); 3] = [
        ("fc6", 25088, 4096),
        ("fc7", 4096, 4096),
        ("fc8", 4096, 1000),
    ];
    for (name, in_f, out_f) in fcs {
        layers.push(LayerGrad {
            name: format!("vgg19.{name}.weight"),
            bytes: in_f * out_f * 4,
        });
        layers.push(LayerGrad {
            name: format!("vgg19.{name}.bias"),
            bytes: out_f * 4,
        });
    }
    layers
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 6 verbatim: (name, total MiB, max MiB, count).
    const TABLE6: [(&str, f64, f64, usize); 8] = [
        ("VGG19", 548.05, 392.0, 38),
        ("ResNet50", 97.46, 9.0, 155),
        ("UGATIT", 2558.75, 1024.0, 148),
        ("UGATIT-light", 511.25, 128.0, 148),
        ("Bert-base", 420.02, 89.42, 207),
        ("Bert-large", 1282.60, 119.23, 399),
        ("LSTM", 327.97, 190.42, 10),
        ("Transformer", 234.08, 65.84, 185),
    ];

    #[test]
    fn all_models_match_table6() {
        for ((model, (name, total_mib, max_mib, count)), _) in
            DnnModel::all().iter().zip(TABLE6).zip(0..)
        {
            let spec = model.spec();
            assert_eq!(spec.name, name);
            assert_eq!(spec.num_gradients(), count, "{name} gradient count");
            let total = spec.total_bytes() as f64 / MIB as f64;
            assert!(
                (total - total_mib).abs() / total_mib < 0.005,
                "{name} total {total} MiB vs table {total_mib}"
            );
            let max = spec.max_gradient_bytes() as f64 / MIB as f64;
            assert!(
                (max - max_mib).abs() / max_mib < 0.005,
                "{name} max {max} MiB vs table {max_mib}"
            );
        }
    }

    #[test]
    fn vgg19_fc6_is_the_documented_max() {
        let spec = DnnModel::Vgg19.spec();
        let fc6 = spec
            .layers
            .iter()
            .find(|l| l.name == "vgg19.fc6.weight")
            .unwrap();
        assert_eq!(fc6.bytes, 25088 * 4096 * 4); // Exactly 392 MiB.
        assert_eq!(spec.max_gradient_bytes(), fc6.bytes);
    }

    #[test]
    fn by_name_roundtrips() {
        for m in DnnModel::all() {
            assert_eq!(DnnModel::by_name(m.name()), Some(m));
            assert_eq!(DnnModel::by_name(&m.name().to_lowercase()), Some(m));
        }
        assert_eq!(DnnModel::by_name("GPT-5"), None);
    }

    #[test]
    fn backward_offsets_reverse_order() {
        let spec = DnnModel::Vgg19.spec();
        let offsets = spec.backward_ready_offsets(GpuClass::V100);
        assert_eq!(offsets.len(), spec.num_gradients());
        // Later layers (higher index) become ready earlier.
        for w in offsets.windows(2) {
            assert!(w[0] >= w[1], "offsets must decrease with depth");
        }
        // The first gradient to be ready is the last layer's, after a
        // nonzero slice of backward; the input layer's gradient marks
        // the end of backward.
        let bwd = spec.compute(GpuClass::V100).backward_ns;
        assert!(*offsets.last().unwrap() > 0);
        let drift = (offsets[0] as i64 - bwd as i64).abs();
        assert!(drift <= 2, "first-layer offset {} vs bwd {bwd}", offsets[0]);
    }

    #[test]
    fn compute_profiles_sane() {
        for m in DnnModel::all() {
            let spec = m.spec();
            let v100 = spec.compute(GpuClass::V100);
            let ti = spec.compute(GpuClass::Gtx1080Ti);
            assert!(v100.iteration_ns() > 0);
            assert!(ti.iteration_ns() > 2 * v100.iteration_ns());
            assert!(v100.single_gpu_throughput() > 0.0);
        }
    }

    #[test]
    fn resnet_throughput_in_published_ballpark() {
        // ResNet50 fp32 on a V100 trains at roughly 300-400 images/s.
        let t = DnnModel::ResNet50
            .spec()
            .compute(GpuClass::V100)
            .single_gpu_throughput();
        assert!((250.0..450.0).contains(&t), "throughput {t}");
    }

    #[test]
    fn specs_are_deterministic() {
        let a = DnnModel::BertLarge.spec();
        let b = DnnModel::BertLarge.spec();
        assert_eq!(a.layers, b.layers);
    }
}

//! Structural recipe for reconstructing a model's gradient size list
//! from its Table 6 statistics.

use hipress_util::rng::{Rng64, SplitMix64};

/// Parameters of the reconstruction: the Table 6 statistics plus two
//  structural knobs.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Recipe {
    /// Number of gradients (Table 6).
    pub count: usize,
    /// Total gradient volume in bytes (Table 6).
    pub total_bytes: u64,
    /// Largest single gradient in bytes (Table 6).
    pub max_bytes: u64,
    /// Fraction of gradients that are small bias/layernorm tensors.
    pub small_frac: f64,
    /// Byte-size range for the small tensors (log-spaced cycle).
    pub small_range: (u64, u64),
    /// Shuffle seed for the layer ordering.
    pub seed: u64,
}

/// Power-law exponent for the body (non-bias) gradient sizes.
const BODY_ALPHA: f64 = 1.1;

/// Builds the per-layer gradient sizes (in forward-layer order).
///
/// Invariants guaranteed:
/// * exactly `count` entries,
/// * every entry is a positive multiple of 4 (whole `f32`s),
/// * the maximum equals `max_bytes` exactly,
/// * the sum equals `total_bytes` exactly.
///
/// # Panics
///
/// Panics if the statistics are inconsistent (e.g., `max_bytes >
/// total_bytes`, or too little volume to give every layer one
/// element).
pub(crate) fn build_sizes(recipe: &Recipe) -> Vec<u64> {
    let Recipe {
        count,
        total_bytes,
        max_bytes,
        small_frac,
        small_range,
        seed,
    } = *recipe;
    assert!(count >= 1, "a model needs at least one gradient");
    assert!(
        max_bytes % 4 == 0 && total_bytes % 4 == 0,
        "sizes are f32 multiples"
    );
    assert!(max_bytes <= total_bytes, "max gradient exceeds total");
    assert!(
        total_bytes >= 4 * count as u64,
        "not enough volume for {count} non-empty gradients"
    );

    // 1. Small bias/layernorm tensors: a log-spaced cycle.
    let n_small = ((count as f64 * small_frac).round() as usize).min(count - 1);
    let (lo, hi) = small_range;
    let mut sizes: Vec<u64> = Vec::with_capacity(count);
    for i in 0..n_small {
        let t = if n_small > 1 {
            i as f64 / (n_small - 1) as f64
        } else {
            0.0
        };
        let s = (lo as f64 * (hi as f64 / lo as f64).powf(t)).round() as u64;
        sizes.push((s / 4).max(1) * 4);
    }
    let small_sum: u64 = sizes.iter().sum();

    // 2. The documented largest gradient.
    sizes.push(max_bytes);

    // 3. Power-law body, scaled to make the total exact.
    let n_body = count - n_small - 1;
    let body_budget = total_bytes
        .checked_sub(max_bytes + small_sum)
        .expect("small tensors plus max exceed total: lower small_frac or small sizes");
    assert!(
        body_budget >= 4 * n_body as u64,
        "body budget too small for {n_body} gradients"
    );
    if n_body > 0 {
        let weights: Vec<f64> = (0..n_body)
            .map(|i| ((i + 2) as f64).powf(-BODY_ALPHA))
            .collect();
        let wsum: f64 = weights.iter().sum();
        // Body layers may grow up to (but not beyond) the documented
        // maximum, so `max_bytes` stays the unique table statistic
        // whenever the budget allows; ties are tolerated if the cap
        // must bind.
        let cap = max_bytes / 4 * 4;
        let mut body: Vec<u64> = weights
            .iter()
            .map(|w| {
                let raw = (body_budget as f64 * w / wsum) as u64;
                ((raw / 4).max(1) * 4).min(cap)
            })
            .collect();
        // Distribute the rounding/clamping residue: add to (or take
        // from) layers with headroom (or slack), front-to-back. Each
        // full pass makes progress unless the constraints are
        // infeasible, which the budget assertion above excludes.
        let mut diff = body_budget as i64 - body.iter().sum::<u64>() as i64;
        while diff != 0 {
            let before = diff;
            for b in &mut body {
                if diff == 0 {
                    break;
                }
                if diff > 0 {
                    let step = diff.min(cap.saturating_sub(*b) as i64) / 4 * 4;
                    *b += step as u64;
                    diff -= step;
                } else {
                    let step = (-diff).min(*b as i64 - 4) / 4 * 4;
                    *b -= step as u64;
                    diff += step;
                }
            }
            assert!(
                diff != before || diff == 0,
                "cannot distribute body volume: {diff} bytes of residue \
                 with count={count}, total={total_bytes}, max={max_bytes}"
            );
        }
        sizes.extend(body);
    }

    // 4. Deterministic interleave so small and large layers mix as in
    // a real network, then pin the largest gradient at ~80% depth
    // (classifier-side, like VGG's fc6).
    let mut rng = SplitMix64::new(seed);
    rng.shuffle(&mut sizes);
    let max_pos = sizes
        .iter()
        .position(|&s| s == max_bytes)
        .expect("max is present");
    let target = (count as f64 * 0.8) as usize;
    let target = target.min(count - 1);
    sizes.swap(max_pos, target);

    debug_assert_eq!(sizes.len(), count);
    debug_assert_eq!(sizes.iter().sum::<u64>(), total_bytes);
    debug_assert_eq!(sizes.iter().copied().max(), Some(max_bytes));
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MIB;

    fn bert_base_recipe() -> Recipe {
        Recipe {
            count: 207,
            total_bytes: (420.02 * MIB as f64) as u64 / 4 * 4,
            max_bytes: (89.42 * MIB as f64) as u64 / 4 * 4,
            small_frac: 0.627,
            small_range: (2 * 1024, 12 * 1024),
            seed: 0xBE27,
        }
    }

    #[test]
    fn invariants_hold() {
        let r = bert_base_recipe();
        let sizes = build_sizes(&r);
        assert_eq!(sizes.len(), r.count);
        assert_eq!(sizes.iter().sum::<u64>(), r.total_bytes);
        assert_eq!(sizes.iter().copied().max(), Some(r.max_bytes));
        assert!(sizes.iter().all(|&s| s > 0 && s % 4 == 0));
    }

    #[test]
    fn bert_small_gradient_fraction_matches_paper() {
        // SS6.3: "62.7% of its gradients are below 16KB".
        let sizes = build_sizes(&bert_base_recipe());
        let below = sizes.iter().filter(|&&s| s < 16 * 1024).count();
        let frac = below as f64 / sizes.len() as f64;
        assert!(
            (frac - 0.627).abs() < 0.02,
            "fraction below 16KiB is {frac}"
        );
    }

    #[test]
    fn deterministic() {
        let r = bert_base_recipe();
        assert_eq!(build_sizes(&r), build_sizes(&r));
    }

    #[test]
    fn max_sits_late_in_the_network() {
        let r = bert_base_recipe();
        let sizes = build_sizes(&r);
        let pos = sizes.iter().position(|&s| s == r.max_bytes).unwrap();
        assert!(pos as f64 / sizes.len() as f64 > 0.7);
    }

    #[test]
    fn tiny_model_works() {
        let r = Recipe {
            count: 3,
            total_bytes: 1000 * 4,
            max_bytes: 500 * 4,
            small_frac: 0.3,
            small_range: (4, 16),
            seed: 1,
        };
        let sizes = build_sizes(&r);
        assert_eq!(sizes.len(), 3);
        assert_eq!(sizes.iter().sum::<u64>(), 4000);
        assert_eq!(sizes.iter().copied().max(), Some(2000));
    }

    #[test]
    #[should_panic(expected = "max gradient exceeds total")]
    fn inconsistent_stats_panic() {
        build_sizes(&Recipe {
            count: 2,
            total_bytes: 100 * 4,
            max_bytes: 200 * 4,
            small_frac: 0.0,
            small_range: (4, 8),
            seed: 0,
        });
    }
}

//! The DNN model zoo of Table 6.
//!
//! Synchronization behaviour depends on three things the paper
//! tabulates per model: the total gradient volume, the size of the
//! largest gradient, and the number of gradients. This crate
//! reconstructs per-layer gradient size lists for all eight trained
//! models:
//!
//! | Model          | Total     | Max gradient | # Gradients |
//! |----------------|-----------|--------------|-------------|
//! | VGG19          | 548.05MB  | 392MB        | 38          |
//! | ResNet50       | 97.46MB   | 9MB          | 155         |
//! | UGATIT         | 2558.75MB | 1024MB       | 148         |
//! | UGATIT-light   | 511.25MB  | 128MB        | 148         |
//! | Bert-base      | 420.02MB  | 89.42MB      | 207         |
//! | Bert-large     | 1282.60MB | 119.23MB     | 399         |
//! | LSTM           | 327.97MB  | 190.42MB     | 10          |
//! | Transformer    | 234.08MB  | 65.84MB      | 185         |
//!
//! (Sizes are MiB; they match the parameter counts of the public
//! models, e.g. VGG19's fc6 weight is 25088×4096 floats = 392 MiB.)
//!
//! VGG19 is reconstructed from its exact architecture; the others use
//! a structural recipe (a fraction of small bias/layernorm gradients
//! plus a power-law body pinned to the documented maximum) calibrated
//! to reproduce the table's statistics — including the property §6.3
//! relies on, that 62.7% of Bert-base's gradients are below 16 KiB.
//!
//! The crate also carries per-(model, GPU) compute-time profiles used
//! by the training simulator, and the backward-pass schedule at which
//! gradients become ready (reverse layer order, §2.1).

#![forbid(unsafe_code)]

mod compute;
mod recipe;
mod zoo;

pub use compute::{ComputeProfile, GpuClass};
pub use zoo::{DnnModel, LayerGrad, ModelSpec};

/// One mebibyte, the unit of Table 6.
pub const MIB: u64 = 1024 * 1024;

//! Per-(model, GPU) compute-time profiles.
//!
//! The training simulator needs each model's single-GPU forward and
//! backward time at the paper's batch sizes (§6.1 keeps per-GPU batch
//! size constant — weak scaling). The constants here are calibrated
//! to public fp32 throughput figures for the two GPU classes the
//! paper uses; absolute values matter less than their ratios to the
//! communication times (what determines scaling efficiency).

/// The GPU classes of the paper's two clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GpuClass {
    /// NVIDIA Tesla V100 (AWS EC2 p3dn.24xlarge).
    V100,
    /// NVIDIA GTX 1080 Ti (local cluster).
    Gtx1080Ti,
}

impl GpuClass {
    /// Single-GPU compute slowdown relative to a V100 for fp32
    /// training workloads.
    pub fn slowdown(&self) -> f64 {
        match self {
            GpuClass::V100 => 1.0,
            GpuClass::Gtx1080Ti => 2.2,
        }
    }
}

/// Single-GPU per-iteration compute profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComputeProfile {
    /// Samples (images / sequences / tokens, per Table captions)
    /// processed per GPU per iteration.
    pub batch_size: u64,
    /// Forward pass time in nanoseconds.
    pub forward_ns: u64,
    /// Backward pass time in nanoseconds (gradients stream out during
    /// this window, reverse layer order).
    pub backward_ns: u64,
}

impl ComputeProfile {
    /// Creates a profile from millisecond timings.
    pub fn from_ms(batch_size: u64, forward_ms: f64, backward_ms: f64) -> Self {
        Self {
            batch_size,
            forward_ns: (forward_ms * 1e6) as u64,
            backward_ns: (backward_ms * 1e6) as u64,
        }
    }

    /// Pure compute time of one iteration.
    pub fn iteration_ns(&self) -> u64 {
        self.forward_ns + self.backward_ns
    }

    /// Single-GPU throughput in samples per second (the denominator
    /// of the paper's scaling efficiency).
    pub fn single_gpu_throughput(&self) -> f64 {
        self.batch_size as f64 / (self.iteration_ns() as f64 / 1e9)
    }

    /// Derives the profile for another GPU class by scaling times.
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            batch_size: self.batch_size,
            forward_ns: (self.forward_ns as f64 * factor) as u64,
            backward_ns: (self.backward_ns as f64 * factor) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_and_throughput() {
        let p = ComputeProfile::from_ms(32, 30.0, 60.0);
        assert_eq!(p.iteration_ns(), 90_000_000);
        assert!((p.single_gpu_throughput() - 355.55).abs() < 0.1);
    }

    #[test]
    fn scaling_slows_down() {
        let p = ComputeProfile::from_ms(32, 30.0, 60.0);
        let s = p.scaled(GpuClass::Gtx1080Ti.slowdown());
        assert_eq!(s.batch_size, 32);
        assert!(s.iteration_ns() > 2 * p.iteration_ns());
        assert!(s.single_gpu_throughput() < p.single_gpu_throughput() / 2.0);
    }
}

//! Exhaustive tests for the model zoo and backward schedules: the
//! original randomized suite sampled (model, GPU) pairs; the domain
//! is small enough to sweep completely instead.

use hipress_models::{DnnModel, GpuClass};

/// Backward-pass readiness offsets are monotone (later layers are
/// ready earlier), positive, and end exactly at the backward time
/// for every model and GPU class.
#[test]
fn backward_offsets_well_formed() {
    for model in DnnModel::all() {
        for gpu in [GpuClass::V100, GpuClass::Gtx1080Ti] {
            let spec = model.spec();
            let offsets = spec.backward_ready_offsets(gpu);
            assert_eq!(offsets.len(), spec.num_gradients());
            for w in offsets.windows(2) {
                assert!(w[0] >= w[1], "offsets must decrease with depth");
            }
            let bwd = spec.compute(gpu).backward_ns;
            assert!(*offsets.last().unwrap() > 0);
            assert!((offsets[0] as i64 - bwd as i64).abs() <= 2);
        }
    }
}

/// Model specs never change across calls (full determinism).
#[test]
fn specs_deterministic() {
    for model in DnnModel::all() {
        let a = model.spec();
        let b = model.spec();
        assert_eq!(a.total_bytes(), b.total_bytes());
        assert_eq!(&a.layers, &b.layers);
    }
}

/// Every layer of every model is a positive whole-f32 size and no
/// layer exceeds the documented maximum.
#[test]
fn layer_sizes_sane() {
    for model in DnnModel::all() {
        let spec = model.spec();
        let max = spec.max_gradient_bytes();
        for layer in &spec.layers {
            assert!(layer.bytes > 0);
            assert_eq!(layer.bytes % 4, 0);
            assert!(layer.bytes <= max);
        }
    }
}

//! Property-based tests for the model zoo and backward schedules.

use hipress_models::{DnnModel, GpuClass};
use proptest::prelude::*;

proptest! {
    /// Backward-pass readiness offsets are monotone (later layers are
    /// ready earlier), positive, and end exactly at the backward time
    /// for every model and GPU class.
    #[test]
    fn backward_offsets_well_formed(model_idx in 0usize..8, gpu in 0usize..2) {
        let model = DnnModel::all()[model_idx];
        let gpu = if gpu == 0 { GpuClass::V100 } else { GpuClass::Gtx1080Ti };
        let spec = model.spec();
        let offsets = spec.backward_ready_offsets(gpu);
        prop_assert_eq!(offsets.len(), spec.num_gradients());
        for w in offsets.windows(2) {
            prop_assert!(w[0] >= w[1], "offsets must decrease with depth");
        }
        let bwd = spec.compute(gpu).backward_ns;
        prop_assert!(*offsets.last().unwrap() > 0);
        prop_assert!((offsets[0] as i64 - bwd as i64).abs() <= 2);
    }

    /// Model specs never change across calls (full determinism).
    #[test]
    fn specs_deterministic(model_idx in 0usize..8) {
        let model = DnnModel::all()[model_idx];
        let a = model.spec();
        let b = model.spec();
        prop_assert_eq!(a.total_bytes(), b.total_bytes());
        prop_assert_eq!(&a.layers, &b.layers);
    }

    /// Every layer of every model is a positive whole-f32 size and no
    /// layer exceeds the documented maximum.
    #[test]
    fn layer_sizes_sane(model_idx in 0usize..8) {
        let spec = DnnModel::all()[model_idx].spec();
        let max = spec.max_gradient_bytes();
        for layer in &spec.layers {
            prop_assert!(layer.bytes > 0);
            prop_assert_eq!(layer.bytes % 4, 0);
            prop_assert!(layer.bytes <= max);
        }
    }
}

//! Behavioural tests for the timing executor: the qualitative
//! properties the paper's design arguments rest on must hold in the
//! simulation.

use hipress_compress::Algorithm;
use hipress_core::{
    ClusterConfig, CompressionSpec, ExecConfig, Executor, GradPlan, IterationSpec, Strategy,
    SyncGradient,
};

fn iter_spec(sizes: &[u64], alg: Option<Algorithm>, partitions: usize) -> IterationSpec {
    IterationSpec {
        gradients: sizes
            .iter()
            .enumerate()
            .map(|(i, &bytes)| SyncGradient {
                name: format!("g{i}"),
                bytes,
                ready_offset_ns: 0,
                plan: GradPlan {
                    compress: true,
                    partitions,
                },
            })
            .collect(),
        compression: alg.map(|a| CompressionSpec::of(a.build().unwrap().as_ref())),
    }
}

fn run(
    strat: Strategy,
    cluster: &ClusterConfig,
    cfg: ExecConfig,
    iter: &IterationSpec,
) -> hipress_core::ExecStats {
    let graph = strat.build(cluster, iter).unwrap();
    Executor::new(*cluster, cfg).run(&graph, iter).unwrap()
}

#[test]
fn all_strategies_complete_and_report() {
    let cluster = ClusterConfig::ec2(4);
    for strat in Strategy::all() {
        for alg in [None, Some(Algorithm::OneBit)] {
            let iter = iter_spec(&[1 << 22, 1 << 14], alg, 2);
            let cfg = if strat.is_casync() {
                ExecConfig::hipress()
            } else {
                ExecConfig::baseline()
            };
            let stats = run(strat, &cluster, cfg, &iter);
            assert!(stats.makespan_ns > 0, "{strat:?}");
            assert_eq!(stats.grad_finish_ns.len(), 2);
            assert!(stats.grad_finish_ns.iter().all(|&f| f > 0), "{strat:?}");
            assert!(
                stats.grad_finish_ns.iter().max().unwrap() <= &stats.makespan_ns,
                "{strat:?}"
            );
            let comm = stats.comm_ratio();
            assert!((0.0..=1.0).contains(&comm), "{strat:?} ratio {comm}");
        }
    }
}

/// Compression must shrink synchronization time for a large gradient
/// on a bandwidth-bound network — the whole premise of the paper.
#[test]
fn compression_speeds_up_large_gradient_sync() {
    let cluster = ClusterConfig::ec2(8);
    for strat in [Strategy::CaSyncPs, Strategy::CaSyncRing] {
        let raw = run(
            strat,
            &cluster,
            ExecConfig::hipress(),
            &iter_spec(&[256 << 20], None, 8),
        );
        let compressed = run(
            strat,
            &cluster,
            ExecConfig::hipress(),
            &iter_spec(&[256 << 20], Some(Algorithm::OneBit), 8),
        );
        assert!(
            compressed.makespan_ns < raw.makespan_ns / 2,
            "{strat:?}: {} vs {}",
            compressed.makespan_ns,
            raw.makespan_ns
        );
    }
}

/// CaSync with compression must beat the coupled baseline of the same
/// topology on the workload shapes the paper motivates: a huge
/// partitionable gradient for PS (BytePS cannot partition compressed
/// tensors), and a stream of gradients arriving over the backward
/// pass for Ring (the coupled collective is bulk-synchronous and
/// serialized).
#[test]
fn casync_beats_coupled_baselines() {
    let cluster = ClusterConfig::ec2(8);
    let alg = Some(Algorithm::OneBit);

    // Ring: 24 × 16 MiB gradients staggered across a backward pass.
    let mut ring_iter = iter_spec(&(0..24).map(|_| 16 << 20).collect::<Vec<_>>(), alg, 8);
    for (i, g) in ring_iter.gradients.iter_mut().enumerate() {
        g.ready_offset_ns = (24 - i) as u64 * 2_000_000;
    }
    let casync_ring = run(
        Strategy::CaSyncRing,
        &cluster,
        ExecConfig::hipress(),
        &ring_iter,
    );
    let mut ring_coupled_iter = ring_iter.clone();
    for g in ring_coupled_iter.gradients.iter_mut() {
        g.plan.partitions = 1;
    }
    let ring_coupled = run(
        Strategy::HorovodRing,
        &cluster,
        ExecConfig::baseline(),
        &ring_coupled_iter,
    );
    assert!(
        casync_ring.makespan_ns < ring_coupled.makespan_ns,
        "CaSync-Ring {} vs Ring-coupled {}",
        casync_ring.makespan_ns,
        ring_coupled.makespan_ns
    );

    // PS: one 392 MiB gradient (VGG19's fc6).
    let casync_ps = run(
        Strategy::CaSyncPs,
        &cluster,
        ExecConfig::hipress(),
        &iter_spec(&[392 << 20], alg, 8),
    );
    let byteps_coupled = run(
        Strategy::BytePs,
        &cluster,
        ExecConfig::baseline(),
        &iter_spec(&[392 << 20], alg, 1),
    );
    assert!(
        casync_ps.makespan_ns < byteps_coupled.makespan_ns,
        "CaSync-PS {} vs BytePS-coupled {}",
        casync_ps.makespan_ns,
        byteps_coupled.makespan_ns
    );
}

/// Pipelining must help when multiple gradients are in flight.
#[test]
fn pipelining_reduces_makespan() {
    let cluster = ClusterConfig::ec2(4);
    let sizes: Vec<u64> = (0..16).map(|_| 8 << 20).collect();
    let iter = iter_spec(&sizes, Some(Algorithm::TernGrad { bitwidth: 2 }), 4);
    let with = run(Strategy::CaSyncRing, &cluster, ExecConfig::hipress(), &iter);
    let without = run(
        Strategy::CaSyncRing,
        &cluster,
        ExecConfig::hipress().without_pipelining(),
        &iter,
    );
    assert!(
        with.makespan_ns < without.makespan_ns,
        "pipelined {} vs serial {}",
        with.makespan_ns,
        without.makespan_ns
    );
}

/// Bulk synchronization must help a workload of many tiny gradients
/// (latency-bound) — the §3.2 motivation.
#[test]
fn bulk_batching_helps_small_gradients() {
    let cluster = ClusterConfig::ec2(4);
    let sizes: Vec<u64> = (0..300).map(|_| 8 * 1024).collect();
    let iter = iter_spec(&sizes, Some(Algorithm::OneBit), 1);
    let bulk = run(Strategy::CaSyncPs, &cluster, ExecConfig::hipress(), &iter);
    let no_bulk = run(
        Strategy::CaSyncPs,
        &cluster,
        ExecConfig {
            bulk_network: false,
            batch_compression: false,
            ..ExecConfig::hipress()
        },
        &iter,
    );
    assert!(bulk.link_flushes > 0, "coordinator must have batched");
    assert!(
        bulk.makespan_ns < no_bulk.makespan_ns,
        "bulk {} vs per-message {}",
        bulk.makespan_ns,
        no_bulk.makespan_ns
    );
}

/// On-CPU compression must be substantially slower than on-GPU for a
/// large gradient (the §2.5 on-CPU penalty).
#[test]
fn cpu_codec_is_much_slower() {
    let cluster = ClusterConfig::ec2(4);
    let iter = iter_spec(&[128 << 20], Some(Algorithm::OneBit), 1);
    let gpu = run(Strategy::CaSyncPs, &cluster, ExecConfig::hipress(), &iter);
    let cpu = run(
        Strategy::CaSyncPs,
        &cluster,
        ExecConfig::hipress().with_cpu_codec(),
        &iter,
    );
    assert!(
        cpu.makespan_ns > gpu.makespan_ns * 2,
        "cpu {} vs gpu {}",
        cpu.makespan_ns,
        gpu.makespan_ns
    );
}

/// More partitions pipeline better for one huge gradient (the §3.3
/// partitioning rationale).
#[test]
fn partitioning_helps_huge_gradients() {
    let cluster = ClusterConfig::ec2(8);
    let k1 = run(
        Strategy::CaSyncPs,
        &cluster,
        ExecConfig::hipress(),
        &iter_spec(&[392 << 20], Some(Algorithm::OneBit), 1),
    );
    let k8 = run(
        Strategy::CaSyncPs,
        &cluster,
        ExecConfig::hipress(),
        &iter_spec(&[392 << 20], Some(Algorithm::OneBit), 8),
    );
    assert!(
        k8.makespan_ns < k1.makespan_ns,
        "k8 {} vs k1 {}",
        k8.makespan_ns,
        k1.makespan_ns
    );
}

/// A slower network raises the communication ratio.
#[test]
fn bandwidth_shapes_comm_ratio() {
    let iter = iter_spec(&[64 << 20; 4], None, 4);
    let fast = run(
        Strategy::CaSyncRing,
        &ClusterConfig::ec2(4),
        ExecConfig::hipress(),
        &iter,
    );
    let slow = run(
        Strategy::CaSyncRing,
        &ClusterConfig::ec2(4).with_link(hipress_simnet::LinkSpec::gbps10()),
        ExecConfig::hipress(),
        &iter,
    );
    assert!(slow.makespan_ns > fast.makespan_ns * 3);
}

/// Determinism: identical runs give identical statistics.
#[test]
fn executor_is_deterministic() {
    let cluster = ClusterConfig::ec2(4);
    let iter = iter_spec(
        &[1 << 22, 1 << 16, 1 << 10],
        Some(Algorithm::Dgc { rate: 0.01 }),
        3,
    );
    let a = run(Strategy::CaSyncRing, &cluster, ExecConfig::hipress(), &iter);
    let b = run(Strategy::CaSyncRing, &cluster, ExecConfig::hipress(), &iter);
    assert_eq!(a.makespan_ns, b.makespan_ns);
    assert_eq!(a.grad_finish_ns, b.grad_finish_ns);
    assert_eq!(a.events, b.events);
}

/// Gradient readiness offsets delay synchronization accordingly.
#[test]
fn ready_offsets_respected() {
    let cluster = ClusterConfig::ec2(4);
    let mut iter = iter_spec(&[1 << 20], None, 1);
    let base = run(Strategy::CaSyncPs, &cluster, ExecConfig::hipress(), &iter);
    iter.gradients[0].ready_offset_ns = 50_000_000;
    let delayed = run(Strategy::CaSyncPs, &cluster, ExecConfig::hipress(), &iter);
    assert!(delayed.makespan_ns >= base.makespan_ns + 50_000_000);
}

/// Traced execution is observation only: identical statistics, one
/// span per task with the runtime's category names, a `run` span
/// covering the makespan, and lossless Chrome JSON round-tripping.
#[test]
fn traced_execution_mirrors_untraced() {
    use hipress_trace::{chrome, Tracer};
    let cluster = ClusterConfig::ec2(4);
    for strat in [Strategy::CaSyncPs, Strategy::CaSyncRing, Strategy::BytePs] {
        let iter = iter_spec(&[1 << 22, 1 << 14, 1 << 10], Some(Algorithm::OneBit), 2);
        let graph = strat.build(&cluster, &iter).unwrap();
        let cfg = if strat.is_casync() {
            ExecConfig::hipress()
        } else {
            ExecConfig::byteps()
        };
        let plain = Executor::new(cluster, cfg).run(&graph, &iter).unwrap();
        let tracer = Tracer::new("sim");
        let traced = Executor::new(cluster, cfg)
            .run_traced(&graph, &iter, &tracer)
            .unwrap();
        assert_eq!(plain.makespan_ns, traced.makespan_ns, "{strat:?}");
        assert_eq!(plain.grad_finish_ns, traced.grad_finish_ns, "{strat:?}");
        assert_eq!(plain.events, traced.events, "{strat:?}");
        let trace = tracer.finish();
        assert!(
            trace.validate().is_ok(),
            "{strat:?}: {:?}",
            trace.validate()
        );

        // One span per task, under the category CaSync-RT also uses.
        let task_spans: usize = [
            "source", "encode", "decode", "merge", "send", "recv", "update", "barrier",
        ]
        .iter()
        .map(|c| trace.events_of(c).filter(|e| !e.instant).count())
        .sum();
        assert_eq!(task_spans, graph.len(), "{strat:?}");

        // The engine track's run span covers the whole makespan.
        let run_span = trace.events_of("run").next().unwrap();
        assert_eq!(run_span.dur_ns, traced.makespan_ns, "{strat:?}");
        assert_eq!(run_span.arg("nodes"), Some(cluster.nodes as u64));
        assert_eq!(trace.end_ns(), traced.makespan_ns, "{strat:?}");

        // Message arrivals: one instant per send, on the receiver.
        assert_eq!(
            trace.events_of("fabric").count(),
            trace.events_of("send").count(),
            "{strat:?}"
        );

        // Chrome export is lossless through the crate's own reader.
        let back = chrome::import(&chrome::export(&trace)).unwrap();
        assert_eq!(back, trace, "{strat:?}");
    }
}

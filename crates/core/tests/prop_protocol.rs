//! Randomized property tests of the synchronization protocols: for
//! arbitrary gradient mixes, partition counts, and cluster sizes,
//! every strategy must build a valid graph whose semantics are exact
//! (no compression) or replica-consistent (with compression).
//!
//! Cases are drawn from the workspace's own deterministic PRNGs
//! (`hipress_util::rng`), so the suite is reproducible offline with
//! no external dependencies.

use hipress_compress::Algorithm;
use hipress_core::interp::{fused_flows, gradient_flows, interpret, reference_sum};
use hipress_core::strategy::horovod_fusion_groups;
use hipress_core::Strategy as SyncStrategy;
use hipress_core::{
    ClusterConfig, CompressionSpec, ExecConfig, Executor, GradPlan, IterationSpec, SyncGradient,
};
use hipress_tensor::synth::{generate, GradientShape};
use hipress_tensor::Tensor;
use hipress_util::rng::{Rng64, Xoshiro256};
use std::collections::HashMap;

const CASES: usize = 24;

/// An arbitrary iteration: 1..5 gradients of 1..300 elements, each
/// with its own partition count and compression choice.
fn arb_iteration(rng: &mut impl Rng64) -> (Vec<(usize, usize, bool)>, u64) {
    let n = rng.range_u64(1, 5) as usize;
    let grads = (0..n)
        .map(|_| {
            (
                rng.range_u64(1, 300) as usize,
                rng.range_u64(1, 6) as usize,
                rng.bernoulli(0.5),
            )
        })
        .collect();
    (grads, rng.next_u64())
}

fn build_spec(
    grads: &[(usize, usize, bool)],
    compression: Option<CompressionSpec>,
) -> IterationSpec {
    IterationSpec {
        gradients: grads
            .iter()
            .enumerate()
            .map(|(i, &(elems, parts, compress))| SyncGradient {
                name: format!("g{i}"),
                bytes: (elems * 4) as u64,
                ready_offset_ns: (i as u64) * 10_000,
                plan: GradPlan {
                    compress,
                    partitions: parts,
                },
            })
            .collect(),
        compression,
    }
}

fn worker_grads(nodes: usize, grads: &[(usize, usize, bool)], seed: u64) -> Vec<Vec<Tensor>> {
    (0..nodes)
        .map(|w| {
            grads
                .iter()
                .enumerate()
                .map(|(g, &(elems, _, _))| {
                    generate(
                        elems,
                        GradientShape::Gaussian { std_dev: 1.0 },
                        seed ^ ((w * 131 + g) as u64),
                    )
                })
                .collect()
        })
        .collect()
}

fn flows_for(
    strat: SyncStrategy,
    iter: &IterationSpec,
    grads: &[Vec<Tensor>],
) -> HashMap<u32, Vec<Tensor>> {
    match strat {
        SyncStrategy::HorovodRing => fused_flows(grads, &horovod_fusion_groups(iter)),
        _ => gradient_flows(grads),
    }
}

/// Uncompressed: every strategy computes the exact sum everywhere,
/// for arbitrary gradient mixes and cluster sizes.
#[test]
fn uncompressed_sum_exact() {
    let mut rng = Xoshiro256::new(0x5150_0001);
    for _ in 0..CASES {
        let (grads, seed) = arb_iteration(&mut rng);
        let nodes = rng.range_u64(2, 6) as usize;
        let iter = build_spec(&grads, None);
        let cluster = ClusterConfig::ec2(nodes);
        let data = worker_grads(nodes, &grads, seed);
        for strat in SyncStrategy::all() {
            let graph = strat.build(&cluster, &iter).unwrap();
            let lint = hipress_lint::verify_graph(&graph, nodes);
            assert!(lint.is_clean(), "{strat:?}:\n{}", lint.render());
            let flows = flows_for(strat, &iter, &data);
            let out = interpret(&graph, nodes, &flows, None, seed).unwrap();
            for o in &out {
                assert!(o.replicas_consistent(), "{strat:?}");
                let reference = reference_sum(&flows[&o.flow]);
                assert!(
                    o.max_abs_error(&reference) < 1e-3,
                    "{strat:?} flow {}: wrong sum",
                    o.flow
                );
            }
        }
    }
}

/// Compressed: replicas stay bit-identical under every strategy.
#[test]
fn compressed_replicas_identical() {
    let mut rng = Xoshiro256::new(0x5150_0002);
    for _ in 0..CASES {
        let (grads, seed) = arb_iteration(&mut rng);
        let nodes = rng.range_u64(2, 5) as usize;
        let alg = Algorithm::OneBit;
        let c = alg.build().unwrap();
        let iter = build_spec(&grads, Some(CompressionSpec::of(c.as_ref())));
        let cluster = ClusterConfig::ec2(nodes);
        let data = worker_grads(nodes, &grads, seed);
        for strat in SyncStrategy::all() {
            let graph = strat.build(&cluster, &iter).unwrap();
            let flows = flows_for(strat, &iter, &data);
            let out = interpret(&graph, nodes, &flows, Some(c.as_ref()), seed).unwrap();
            for o in &out {
                assert!(o.replicas_consistent(), "{strat:?} flow {}", o.flow);
            }
        }
    }
}

/// The executor terminates with a finite makespan on arbitrary
/// graphs, and every gradient finishes no later than the makespan.
#[test]
fn executor_always_terminates() {
    let mut rng = Xoshiro256::new(0x5150_0003);
    for _ in 0..CASES {
        let (grads, _seed) = arb_iteration(&mut rng);
        let nodes = rng.range_u64(2, 5) as usize;
        let compressed = rng.bernoulli(0.5);
        let compression = if compressed {
            Some(CompressionSpec::of(
                Algorithm::Dgc { rate: 0.1 }.build().unwrap().as_ref(),
            ))
        } else {
            None
        };
        let iter = build_spec(&grads, compression);
        let cluster = ClusterConfig::ec2(nodes);
        for strat in SyncStrategy::all() {
            let graph = strat.build(&cluster, &iter).unwrap();
            for cfg in [
                ExecConfig::hipress(),
                ExecConfig::baseline(),
                ExecConfig::byteps(),
            ] {
                let stats = Executor::new(cluster, cfg).run(&graph, &iter).unwrap();
                assert!(stats.makespan_ns > 0);
                for (g, &f) in stats.grad_finish_ns.iter().enumerate() {
                    assert!(f > 0, "{strat:?}: gradient {g} never finished");
                    assert!(f <= stats.makespan_ns);
                }
            }
        }
    }
}

/// Compressing never moves more bytes: the total wire volume under
/// compression is at most the raw volume (per strategy, when all
/// gradients opt in and are reasonably large).
#[test]
fn compression_reduces_wire_volume() {
    let mut rng = Xoshiro256::new(0x5150_0004);
    for _ in 0..CASES {
        let elems = rng.range_u64(2048, 40_000) as usize;
        let nodes = rng.range_u64(2, 6) as usize;
        let parts = rng.range_u64(1, 5) as usize;
        let grads = vec![(elems, parts, true)];
        let alg = Algorithm::OneBit;
        let c = alg.build().unwrap();
        let raw = build_spec(&grads, None);
        let cmp = build_spec(&grads, Some(CompressionSpec::of(c.as_ref())));
        let cluster = ClusterConfig::ec2(nodes);
        for strat in SyncStrategy::all() {
            let wire = |iter: &IterationSpec| -> u64 {
                strat
                    .build(&cluster, iter)
                    .unwrap()
                    .tasks()
                    .iter()
                    .filter(|t| t.prim == hipress_core::Primitive::Send)
                    .map(|t| t.bytes_wire)
                    .sum()
            };
            assert!(
                wire(&cmp) < wire(&raw),
                "{strat:?}: compressed wire volume must shrink"
            );
        }
    }
}

//! The CaSync runtime: a discrete-event executor for synchronization
//! task graphs.
//!
//! This is the paper's task manager (§3.1) plus the global
//! coordinator (§3.2), realized over the simulated substrates:
//!
//! * compute tasks (`encode`/`decode`/`merge`/`update`) run on the
//!   node's GPU kernel streams (or, in the on-CPU ablation, on a CPU
//!   executor with PCIe staging copies);
//! * `send`/`recv` pairs run over the NIC fabric; with **bulk
//!   synchronization** enabled, sends destined for the same link are
//!   queued per link by the coordinator and flushed as one batched
//!   transfer when a size threshold or timeout is reached ("the size
//!   of each batch is decided based on a specified timeout or a size
//!   threshold, whichever is met first", §3.2);
//! * **batch compression** groups small codec kernels per node into
//!   one launch with a single callback (§3.2);
//! * disabling **pipelining** serializes each node's compute and
//!   communication through one resource, reproducing the
//!   coarse-grained execution of conventional synchronization.
//!
//! Dependencies are tracked exactly as in Figure 2: a completed task
//! clears its dependents' pending edges and promotes any task whose
//! edges are all clear.

use crate::cluster::ClusterConfig;
use crate::graph::{Primitive, TaskGraph, TaskId};
use crate::plan::{CompressionSpec, IterationSpec};
use hipress_simevent::{Actor, Ctx, Engine, FifoResource, SimTime};
use hipress_simgpu::{CopyPath, DeviceSpec, GpuDevice};
use hipress_simnet::{Fabric, NodeId};
use hipress_trace::Tracer;
use hipress_util::{Error, Result};
use std::collections::HashMap;

/// Executor tuning knobs; the Figure 11 ablation toggles these.
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    /// Allow compute and communication of different tasks to overlap
    /// on a node. Off = coarse-grained serial execution.
    pub pipelining: bool,
    /// Enable the coordinator's per-link batching of small transfers.
    pub bulk_network: bool,
    /// Enable batching of small codec kernels into single launches.
    pub batch_compression: bool,
    /// Run codec kernels on the CPU (with PCIe staging copies) —
    /// the on-CPU baseline of §2.5/§6.3.
    pub on_cpu_codec: bool,
    /// Run aggregator-side tasks on the host CPU — the BytePS server
    /// architecture (its servers are CPU processes; §2.2). CaSync
    /// aggregates on GPU, which is a large part of its advantage when
    /// compression multiplies server-side work.
    pub cpu_servers: bool,
    /// Extra memory passes per codec kernel (BytePS staging copies).
    pub codec_extra_passes: f64,
    /// Fixed CPU-path cost charged per transmitted message (tensor
    /// registration, RPC marshalling, ZMQ push/pull in BytePS's
    /// engine; effectively zero for NCCL point-to-point).
    pub rpc_overhead_ns: u64,
    /// Coordinator flush threshold per link batch.
    pub link_batch_bytes: u64,
    /// Coordinator flush timeout per link batch.
    pub link_batch_timeout_ns: u64,
    /// Codec tasks smaller than this are batched.
    pub comp_batch_max_task_bytes: u64,
    /// Codec batch flush threshold.
    pub comp_batch_bytes: u64,
    /// Codec batch flush timeout.
    pub comp_batch_timeout_ns: u64,
    /// Kernel streams per GPU used for synchronization work.
    pub gpu_streams: usize,
}

impl ExecConfig {
    /// The full HiPress configuration: everything on.
    pub fn hipress() -> Self {
        Self {
            pipelining: true,
            bulk_network: true,
            batch_compression: true,
            on_cpu_codec: false,
            cpu_servers: false,
            codec_extra_passes: 0.0,
            rpc_overhead_ns: 0,
            link_batch_bytes: 4 * 1024 * 1024,
            link_batch_timeout_ns: 100_000,
            comp_batch_max_task_bytes: 256 * 1024,
            comp_batch_bytes: 2 * 1024 * 1024,
            comp_batch_timeout_ns: 30_000,
            gpu_streams: 2,
        }
    }

    /// Baseline runtime (BytePS / Horovod): pipelined execution but no
    /// compression-aware coordinator or kernel batching.
    pub fn baseline() -> Self {
        Self {
            bulk_network: false,
            batch_compression: false,
            ..Self::hipress()
        }
    }

    /// The BytePS runtime: baseline plus CPU-side servers and the
    /// extra staging copies its layered architecture performs (§6.3).
    pub fn byteps() -> Self {
        Self {
            cpu_servers: true,
            codec_extra_passes: 1.0,
            rpc_overhead_ns: 150_000,
            ..Self::baseline()
        }
    }

    /// Disables pipelining (Figure 11 "on-GPU" rung, before the
    /// pipelining optimization is stacked on).
    pub fn without_pipelining(mut self) -> Self {
        self.pipelining = false;
        self
    }

    /// Moves codec kernels to the CPU (Figure 11 "on-CPU" rung).
    pub fn with_cpu_codec(mut self) -> Self {
        self.on_cpu_codec = true;
        self
    }
}

/// Execution statistics for one iteration.
#[derive(Debug, Clone)]
pub struct ExecStats {
    /// Completion time of the last task (ns from backward start).
    pub makespan_ns: u64,
    /// Per-gradient synchronization finish: the latest `Update` (or,
    /// for graphs without updates, the latest task) of each gradient.
    pub grad_finish_ns: Vec<u64>,
    /// Per-node `(uplink, downlink)` busy ns.
    pub network_busy_ns: Vec<(u64, u64)>,
    /// Per-node synchronization-GPU busy ns (codec + merge kernels).
    pub sync_gpu_busy_ns: Vec<u64>,
    /// Per-node CPU busy ns (on-CPU codecs, CPU-side servers).
    pub cpu_busy_ns: Vec<u64>,
    /// Number of batched network flushes the coordinator performed.
    pub link_flushes: u64,
    /// Number of batched codec launches.
    pub comp_batch_launches: u64,
    /// Total events processed.
    pub events: u64,
}

impl ExecStats {
    /// The paper's "communication ratio": the busiest node's network
    /// activity over the makespan (Table 1).
    pub fn comm_ratio(&self) -> f64 {
        if self.makespan_ns == 0 {
            return 0.0;
        }
        let busiest = self
            .network_busy_ns
            .iter()
            .map(|&(u, d)| u.max(d))
            .max()
            .unwrap_or(0);
        busiest as f64 / self.makespan_ns as f64
    }
}

/// Events inside the executor.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Seed the source tasks.
    Kick,
    /// Begin executing a task whose dependencies (and earliest time)
    /// are satisfied.
    Start(TaskId),
    /// A task completed.
    Finished(TaskId),
    /// Coordinator timeout flush for link (src, dst); the generation
    /// guards against stale timers.
    FlushLink { src: u32, dst: u32, gen: u32 },
    /// Timeout flush for a node's codec batch.
    FlushComp { node: u32, gen: u32 },
}

#[derive(Default)]
struct LinkBatch {
    sends: Vec<TaskId>,
    bytes: u64,
    gen: u32,
    /// Whether a timer is pending for the current generation.
    armed: bool,
}

#[derive(Default)]
struct CompBatch {
    tasks: Vec<(TaskId, u64)>, // (task, body cost ns)
    bytes: u64,
    gen: u32,
    armed: bool,
}

/// One buffered span: a task's simulated execution window.
struct SpanRec {
    node: usize,
    category: &'static str,
    ts_ns: u64,
    dur_ns: u64,
    args: Vec<(&'static str, u64)>,
}

/// One buffered instant event (message arrival, batch launch).
struct InstantRec {
    node: usize,
    name: &'static str,
    category: &'static str,
    ts_ns: u64,
    args: Vec<(&'static str, u64)>,
}

/// Span/instant buffer filled while the simulation runs. Events are
/// recorded out of timeline order (the scheduler books windows ahead
/// of the virtual clock), so they are buffered here and lowered onto
/// the tracer's per-node tracks, time-sorted, after the run.
#[derive(Default)]
struct TraceRec {
    spans: Vec<SpanRec>,
    instants: Vec<InstantRec>,
}

/// Trace category for a primitive — the same names CaSync-RT records,
/// which is what lets a simulated and a measured trace of one plan
/// align track-for-track in views and `trace-diff`.
fn prim_category(p: Primitive) -> &'static str {
    match p {
        Primitive::Source => "source",
        Primitive::Encode => "encode",
        Primitive::Decode => "decode",
        Primitive::Merge => "merge",
        Primitive::Send => "send",
        Primitive::Recv => "recv",
        Primitive::Update => "update",
        Primitive::Barrier => "barrier",
    }
}

/// The scheduler actor: owns all executor state.
struct Scheduler {
    graph: TaskGraph,
    cfg: ExecConfig,
    device: DeviceSpec,
    cpu_device: DeviceSpec,
    compression: Option<CompressionSpec>,
    fabric: Fabric,
    gpus: Vec<GpuDevice>,
    cpus: Vec<FifoResource>,
    /// One serial resource per node used when pipelining is off.
    serial: Vec<FifoResource>,
    indeg: Vec<u32>,
    dependents: Vec<Vec<u32>>,
    ready_at: Vec<u64>,
    finish_at: Vec<u64>,
    done: Vec<bool>,
    /// For each `Send` task: the arrival time of its transfer, once
    /// scheduled.
    arrival: HashMap<TaskId, u64>,
    link_batches: HashMap<(u32, u32), LinkBatch>,
    comp_batches: Vec<CompBatch>,
    grad_finish: Vec<u64>,
    link_flushes: u64,
    comp_batch_launches: u64,
    finished_tasks: usize,
    /// Recvs that executed before their batched transfer was flushed:
    /// send task → waiting recv task.
    pending_recvs: HashMap<TaskId, TaskId>,
    /// Buffered trace events when running under a tracer.
    rec: Option<TraceRec>,
}

impl Scheduler {
    /// Buffers a span for `id` over `[start, end)`, with the same
    /// argument set CaSync-RT attaches to its task spans.
    fn record_task_span(&mut self, id: TaskId, start: u64, end: u64) {
        if self.rec.is_none() {
            return;
        }
        let t = self.graph.task(id);
        let (node, category) = (t.node, prim_category(t.prim));
        let mut args = vec![
            ("grad", u64::from(t.chunk.grad)),
            ("part", u64::from(t.chunk.part)),
            ("task", u64::from(id.0)),
        ];
        if t.prim == Primitive::Send {
            args.push(("bytes_wire", t.bytes_wire));
            args.push(("bytes_raw", t.bytes_raw));
        }
        if let Some(rec) = &mut self.rec {
            rec.spans.push(SpanRec {
                node,
                category,
                ts_ns: start,
                dur_ns: end - start,
                args,
            });
        }
    }

    fn codec_passes(&self, prim: Primitive) -> f64 {
        let spec = self.compression.expect("codec task without compression");
        let base = match prim {
            Primitive::Encode => spec.encode_passes,
            Primitive::Decode => spec.decode_passes,
            _ => unreachable!("not a codec primitive"),
        };
        base + self.cfg.codec_extra_passes
    }

    /// Whether a task executes on the host CPU under the current
    /// runtime configuration.
    fn runs_on_cpu(&self, id: TaskId) -> bool {
        let t = self.graph.task(id);
        (self.cfg.on_cpu_codec && matches!(t.prim, Primitive::Encode | Primitive::Decode))
            || (self.cfg.cpu_servers && t.at_aggregator)
    }

    /// Body cost (without launch overhead) of a compute task on the
    /// executing device.
    fn compute_body_ns(&self, id: TaskId) -> u64 {
        let t = self.graph.task(id);
        let dev = if self.runs_on_cpu(id) {
            &self.cpu_device
        } else {
            &self.device
        };
        let bw = dev.effective_bandwidth.as_bytes_per_sec();
        let bytes_moved = match t.prim {
            Primitive::Encode => t.bytes_raw as f64 * self.codec_passes(Primitive::Encode),
            Primitive::Decode => {
                // Sweep the compressed input, write the dense output.
                t.bytes_wire as f64 * self.codec_passes(Primitive::Decode) + t.bytes_raw as f64
            }
            Primitive::Merge => t.bytes_raw as f64 * 3.0,
            Primitive::Update => t.bytes_raw as f64,
            _ => 0.0,
        };
        (bytes_moved / bw * 1e9).ceil() as u64
    }

    /// Launch overhead for a compute task.
    fn launch_ns(&self, id: TaskId) -> u64 {
        let t = self.graph.task(id);
        if self.cfg.on_cpu_codec && matches!(t.prim, Primitive::Encode | Primitive::Decode) {
            // CPU dispatch plus the PCIe staging copy of the dense
            // gradient (D2H before encode, H2D after decode).
            self.cpu_device.kernel_launch_ns + self.device.copy_ns(CopyPath::Pcie, t.bytes_raw)
        } else if self.runs_on_cpu(id) {
            // Server-side CPU work: data arrived in host memory, no
            // PCIe staging.
            self.cpu_device.kernel_launch_ns
        } else {
            self.device.kernel_launch_ns
        }
    }

    /// Runs a task once its dependencies are met, at time `now`.
    fn execute(&mut self, ctx: &mut Ctx<'_, Ev>, id: TaskId, now: u64) {
        let prim = self.graph.task(id).prim;
        match prim {
            Primitive::Source | Primitive::Barrier => {
                self.finish(ctx, id, now);
            }
            Primitive::Encode | Primitive::Decode | Primitive::Merge | Primitive::Update => {
                let is_codec = matches!(prim, Primitive::Encode | Primitive::Decode);
                let on_cpu = self.runs_on_cpu(id);
                let bytes = self.graph.task(id).bytes_raw;
                if self.cfg.batch_compression
                    && is_codec
                    && !on_cpu
                    && self.cfg.pipelining
                    && bytes <= self.cfg.comp_batch_max_task_bytes
                {
                    self.enqueue_comp_batch(ctx, id, now);
                } else {
                    let dur = self.launch_ns(id) + self.compute_body_ns(id);
                    let node = self.graph.task(id).node;
                    let (start, end) = self.acquire_compute(node, now, dur, on_cpu);
                    self.record_task_span(id, start, end);
                    self.finish_later(ctx, id, end);
                }
            }
            Primitive::Send => {
                // Per-message engine overhead (RPC marshalling) on the
                // sender's CPU path; the transfer is initiated when it
                // clears.
                let now = if self.cfg.rpc_overhead_ns > 0 {
                    let (_, end) = self.cpus[self.graph.task(id).node]
                        .acquire(SimTime::from_ns(now), self.cfg.rpc_overhead_ns);
                    end.as_ns()
                } else {
                    now
                };
                if self.cfg.bulk_network && self.cfg.pipelining {
                    self.enqueue_link_batch(ctx, id, now);
                } else {
                    self.transfer_now(ctx, &[id], now);
                }
                // The send task itself completes at dispatch; the
                // transfer's arrival gates the paired recv.
                self.finish(ctx, id, now);
            }
            Primitive::Recv => {
                let send_dep = self
                    .graph
                    .task(id)
                    .deps
                    .iter()
                    .copied()
                    .find(|d| self.graph.task(*d).prim == Primitive::Send)
                    .expect("validated graphs pair each recv with a send");
                match self.arrival.get(&send_dep) {
                    Some(&arr) => {
                        let t = arr.max(now);
                        self.finish(ctx, id, t);
                    }
                    None => {
                        // The send sits in a pending link batch; the
                        // flush completes this recv at arrival.
                        self.pending_recvs.insert(send_dep, id);
                    }
                }
            }
        }
    }

    fn acquire_compute(&mut self, node: usize, now: u64, dur: u64, on_cpu: bool) -> (u64, u64) {
        let t = SimTime::from_ns(now);
        if !self.cfg.pipelining {
            let (s, e) = self.serial[node].acquire(t, dur);
            return (s.as_ns(), e.as_ns());
        }
        if on_cpu {
            let (s, e) = self.cpus[node].acquire(t, dur);
            return (s.as_ns(), e.as_ns());
        }
        let stream = self.gpus[node].least_busy_stream(t);
        let (s, e) = self.gpus[node].launch_costed(t, stream, dur);
        (s.as_ns(), e.as_ns())
    }

    fn enqueue_comp_batch(&mut self, ctx: &mut Ctx<'_, Ev>, id: TaskId, now: u64) {
        let node = self.graph.task(id).node;
        let body = self.compute_body_ns(id);
        let bytes = self.graph.task(id).bytes_raw;
        // Batching amortizes launches under load; an idle GPU gains
        // nothing from waiting, so flush immediately when a stream is
        // free (the coordinator only delays work that would queue
        // anyway).
        let t = SimTime::from_ns(now);
        let stream = self.gpus[node].least_busy_stream(t);
        let gpu_idle = self.gpus[node].stream_free_at(stream, t) <= t;
        let batch = &mut self.comp_batches[node];
        batch.tasks.push((id, body));
        batch.bytes += bytes;
        if batch.bytes >= self.cfg.comp_batch_bytes || gpu_idle {
            self.flush_comp(ctx, node, now);
        } else if !batch.armed {
            batch.armed = true;
            let gen = batch.gen;
            ctx.send_self_after(
                self.cfg.comp_batch_timeout_ns,
                Ev::FlushComp {
                    node: node as u32,
                    gen,
                },
            );
        }
    }

    fn flush_comp(&mut self, ctx: &mut Ctx<'_, Ev>, node: usize, now: u64) {
        let batch = &mut self.comp_batches[node];
        if batch.tasks.is_empty() {
            batch.gen += 1;
            batch.armed = false;
            return;
        }
        let tasks = std::mem::take(&mut batch.tasks);
        batch.bytes = 0;
        batch.gen += 1;
        batch.armed = false;
        // One launch, one callback, for the whole batch (SS3.2).
        let dur: u64 = self.device.kernel_launch_ns + tasks.iter().map(|&(_, b)| b).sum::<u64>();
        let (start, end) = self.acquire_compute(node, now, dur, false);
        self.comp_batch_launches += 1;
        if let Some(rec) = &mut self.rec {
            rec.instants.push(InstantRec {
                node,
                name: "batch",
                category: "batch",
                ts_ns: now,
                args: vec![("size", tasks.len() as u64)],
            });
        }
        for (id, _) in tasks {
            // Batched tasks share the single launch window.
            self.record_task_span(id, start, end);
            self.finish_later(ctx, id, end);
        }
    }

    fn enqueue_link_batch(&mut self, ctx: &mut Ctx<'_, Ev>, id: TaskId, now: u64) {
        let t = self.graph.task(id);
        let key = (t.node as u32, t.peer.expect("send has a peer") as u32);
        // The coordinator transmits on idle links immediately (its
        // job is to pick non-conflicting links, SS3.2); batching only
        // delays transfers that would queue behind a busy link.
        let idle = self.fabric.link_idle(
            SimTime::from_ns(now),
            NodeId(key.0 as usize),
            NodeId(key.1 as usize),
        );
        let batch = self.link_batches.entry(key).or_default();
        batch.sends.push(id);
        batch.bytes += t.bytes_wire;
        if batch.bytes >= self.cfg.link_batch_bytes || idle {
            self.flush_link(ctx, key, now);
        } else if !batch.armed {
            batch.armed = true;
            let gen = batch.gen;
            ctx.send_self_after(
                self.cfg.link_batch_timeout_ns,
                Ev::FlushLink {
                    src: key.0,
                    dst: key.1,
                    gen,
                },
            );
        }
    }

    fn flush_link(&mut self, ctx: &mut Ctx<'_, Ev>, key: (u32, u32), now: u64) {
        let batch = self.link_batches.entry(key).or_default();
        if batch.sends.is_empty() {
            batch.gen += 1;
            batch.armed = false;
            return;
        }
        let sends = std::mem::take(&mut batch.sends);
        batch.bytes = 0;
        batch.gen += 1;
        batch.armed = false;
        self.link_flushes += 1;
        self.transfer_now(ctx, &sends, now);
    }

    /// Performs (or schedules) the physical transfer for a group of
    /// sends sharing a link, completing their paired recvs at arrival.
    fn transfer_now(&mut self, ctx: &mut Ctx<'_, Ev>, sends: &[TaskId], now: u64) {
        debug_assert!(!sends.is_empty());
        let first = self.graph.task(sends[0]);
        let (src, dst) = (first.node, first.peer.expect("send has a peer"));
        let bytes: u64 = sends.iter().map(|&s| self.graph.task(s).bytes_wire).sum();
        let mut t = SimTime::from_ns(now);
        if !self.cfg.pipelining {
            // Non-pipelined execution: the node is blocked for the
            // serialization window as well, and the transfer cannot
            // start before the node is free.
            let ser = self
                .fabric
                .isolated_transfer_ns(NodeId(src), NodeId(dst), bytes)
                .saturating_sub(self.fabric.spec(NodeId(src)).latency_ns);
            let (start, _) = self.serial[src].acquire(t, ser);
            t = start;
        }
        let plan = self.fabric.transfer(t, NodeId(src), NodeId(dst), bytes);
        let arr = plan.arrive.as_ns();
        let start = t.as_ns();
        for &s in sends {
            self.arrival.insert(s, arr);
            // The send's span is its wire occupancy: transfer start to
            // arrival on the sender's track, plus a message-arrival
            // instant on the receiver's.
            self.record_task_span(s, start, arr);
            if self.rec.is_some() {
                let bytes_wire = self.graph.task(s).bytes_wire;
                if let Some(rec) = &mut self.rec {
                    rec.instants.push(InstantRec {
                        node: dst,
                        name: "msg",
                        category: "fabric",
                        ts_ns: arr,
                        args: vec![("bytes", bytes_wire), ("task", u64::from(s.0))],
                    });
                }
            }
            // If the paired recv already executed and is waiting on
            // this arrival, complete it now.
            if let Some(recv) = self.pending_recvs.remove(&s) {
                self.finish_later(ctx, recv, arr);
            }
        }
    }

    fn finish_later(&mut self, ctx: &mut Ctx<'_, Ev>, id: TaskId, at: u64) {
        let now = ctx.now().as_ns();
        debug_assert!(at >= now);
        ctx.send_after(at - now, ctx.self_id(), Ev::Finished(id));
    }

    fn finish(&mut self, ctx: &mut Ctx<'_, Ev>, id: TaskId, at: u64) {
        debug_assert!(at >= ctx.now().as_ns());
        if at == ctx.now().as_ns() {
            self.complete(ctx, id, at);
        } else {
            self.finish_later(ctx, id, at);
        }
    }

    /// Marks `id` done and promotes dependents (Figure 2 steps 2–3).
    fn complete(&mut self, ctx: &mut Ctx<'_, Ev>, id: TaskId, now: u64) {
        if self.done[id.0 as usize] {
            return;
        }
        self.done[id.0 as usize] = true;
        self.finish_at[id.0 as usize] = now;
        self.finished_tasks += 1;
        let prim = self.graph.task(id).prim;
        if matches!(
            prim,
            Primitive::Source | Primitive::Barrier | Primitive::Recv
        ) {
            // Instantaneous in the cost model: zero-duration marks at
            // completion keep one span per task on the timeline.
            self.record_task_span(id, now, now);
        }
        let t = self.graph.task(id);
        if t.prim == Primitive::Update {
            for m in self.graph.flow_members(t.chunk.grad) {
                let g = m as usize;
                self.grad_finish[g] = self.grad_finish[g].max(now);
            }
        }
        for i in 0..self.dependents[id.0 as usize].len() {
            let dep = self.dependents[id.0 as usize][i];
            self.indeg[dep as usize] -= 1;
            let ready = self.ready_at[dep as usize].max(now);
            self.ready_at[dep as usize] = ready;
            if self.indeg[dep as usize] == 0 {
                let dep_id = TaskId(dep);
                debug_assert!(ready >= now, "readiness cannot precede completion");
                if ready > now {
                    // A gradient not yet produced by backward (its
                    // earliest time is in the future): start later.
                    ctx.send_after(ready - now, ctx.self_id(), Ev::Start(dep_id));
                } else {
                    self.execute(ctx, dep_id, ready);
                }
            }
        }
    }
}

impl Actor<Ev> for Scheduler {
    fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, msg: Ev) {
        match msg {
            Ev::Kick => {
                // Seed: every zero-indegree task starts at its
                // earliest time.
                for i in 0..self.graph.len() {
                    if self.indeg[i] == 0 {
                        let id = TaskId(i as u32);
                        ctx.send_self_after(self.ready_at[i], Ev::Start(id));
                    }
                }
            }
            Ev::Start(id) => {
                self.execute(ctx, id, ctx.now().as_ns());
            }
            Ev::Finished(id) => {
                self.complete(ctx, id, ctx.now().as_ns());
            }
            Ev::FlushLink { src, dst, gen } => {
                let key = (src, dst);
                if let Some(b) = self.link_batches.get(&key) {
                    if b.gen == gen && !b.sends.is_empty() {
                        self.flush_link(ctx, key, ctx.now().as_ns());
                    }
                }
            }
            Ev::FlushComp { node, gen } => {
                let b = &self.comp_batches[node as usize];
                if b.gen == gen && !b.tasks.is_empty() {
                    self.flush_comp(ctx, node as usize, ctx.now().as_ns());
                }
            }
        }
    }
}

/// The public executor: builds the scheduler, runs it, and extracts
/// statistics.
pub struct Executor {
    cluster: ClusterConfig,
    cfg: ExecConfig,
}

impl Executor {
    /// Creates an executor for a cluster with the given runtime
    /// configuration.
    pub fn new(cluster: ClusterConfig, cfg: ExecConfig) -> Self {
        Self { cluster, cfg }
    }

    /// Executes one iteration's task graph and returns its timing
    /// statistics. Time zero is the start of the backward pass
    /// (gradient `Source` tasks carry their readiness offsets).
    ///
    /// # Errors
    ///
    /// Returns an error if the graph is invalid for the cluster or the
    /// simulation livelocks.
    pub fn run(&self, graph: &TaskGraph, iter: &IterationSpec) -> Result<ExecStats> {
        self.run_inner(graph, iter, None)
    }

    /// Like [`Executor::run`], additionally lowering every task's
    /// simulated execution window into `tracer`: one `node{i}` thread
    /// track per cluster node (timestamps in simulated nanoseconds,
    /// origin at backward start), span categories matching CaSync-RT's
    /// (`source`/`encode`/…/`barrier`), `msg` arrival instants on the
    /// receiver's track, `batch` instants for batched codec launches,
    /// and a `run` span on the `engine` track covering the makespan.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Executor::run`].
    pub fn run_traced(
        &self,
        graph: &TaskGraph,
        iter: &IterationSpec,
        tracer: &Tracer,
    ) -> Result<ExecStats> {
        self.run_inner(graph, iter, Some(tracer))
    }

    fn run_inner(
        &self,
        graph: &TaskGraph,
        iter: &IterationSpec,
        tracer: Option<&Tracer>,
    ) -> Result<ExecStats> {
        // Structural guard: the scheduler indexes per-node resources
        // and resolves each recv's paired send, so those invariants
        // must hold even in release builds. The full defect catalogue
        // lives in `hipress-lint`, which debug builds run via the
        // strategy/interpreter hooks and `hipress lint` runs offline.
        graph.topo_order()?;
        for t in graph.tasks() {
            if t.node >= self.cluster.nodes {
                return Err(Error::sim(format!(
                    "task {:?} on unknown node {}",
                    t.id, t.node
                )));
            }
            match t.prim {
                Primitive::Send => {
                    let peer = t
                        .peer
                        .ok_or_else(|| Error::sim(format!("send {:?} lacks a peer", t.id)))?;
                    if peer == t.node || peer >= self.cluster.nodes {
                        return Err(Error::sim(format!("send {:?} has bad peer {peer}", t.id)));
                    }
                }
                Primitive::Recv => {
                    if !t
                        .deps
                        .iter()
                        .any(|d| graph.task(*d).prim == Primitive::Send)
                    {
                        return Err(Error::sim(format!(
                            "recv {:?} has no send dependency",
                            t.id
                        )));
                    }
                }
                _ => {}
            }
        }
        let n = self.cluster.nodes;
        let fabric = Fabric::homogeneous(n, self.cluster.effective_link())?;
        let gpus = (0..n)
            .map(|_| GpuDevice::new(self.cluster.gpu, self.cfg.gpu_streams.max(1)))
            .collect();
        let tasks = graph.len();
        let mut dependents: Vec<Vec<u32>> = vec![Vec::new(); tasks];
        let mut indeg = vec![0u32; tasks];
        for t in graph.tasks() {
            for d in &t.deps {
                dependents[d.0 as usize].push(t.id.0);
                indeg[t.id.0 as usize] += 1;
            }
        }
        let scheduler = Scheduler {
            graph: graph.clone(),
            cfg: self.cfg,
            device: self.cluster.gpu,
            cpu_device: DeviceSpec::cpu(),
            compression: iter.compression,
            fabric,
            gpus,
            cpus: vec![FifoResource::new(); n],
            serial: vec![FifoResource::new(); n],
            indeg,
            dependents,
            ready_at: graph.tasks().iter().map(|t| t.earliest_ns).collect(),
            finish_at: vec![u64::MAX; tasks],
            done: vec![false; tasks],
            arrival: HashMap::new(),
            link_batches: HashMap::new(),
            comp_batches: (0..n).map(|_| CompBatch::default()).collect(),
            grad_finish: vec![0; iter.gradients.len()],
            link_flushes: 0,
            comp_batch_launches: 0,
            finished_tasks: 0,
            pending_recvs: HashMap::new(),
            rec: tracer.map(|_| TraceRec::default()),
        };
        let mut engine: Engine<Ev> = Engine::new();
        let actor = engine.add_actor(Box::new(scheduler));
        engine.schedule(SimTime::ZERO, actor, Ev::Kick);
        engine.run(None)?;
        let events = engine.events_handled();
        let s = engine.actor::<Scheduler>(actor);
        if s.finished_tasks != tasks {
            return Err(Error::sim(format!(
                "executor stalled: {}/{} tasks completed (deadlocked dependencies?)",
                s.finished_tasks, tasks
            )));
        }
        let makespan = s.finish_at.iter().copied().max().unwrap_or(0);
        if let Some(tr) = tracer {
            let engine_track = tr.thread_track("engine");
            let node_tracks: Vec<_> = (0..n)
                .map(|i| tr.thread_track(&format!("node{i}")))
                .collect();
            if let Some(rec) = &s.rec {
                let mut order: Vec<usize> = (0..rec.spans.len()).collect();
                order.sort_by_key(|&i| (rec.spans[i].ts_ns, rec.spans[i].node));
                for i in order {
                    let sp = &rec.spans[i];
                    tr.record_span(
                        node_tracks[sp.node],
                        sp.category,
                        sp.category,
                        sp.ts_ns,
                        sp.dur_ns,
                        &sp.args,
                    );
                }
                let mut order: Vec<usize> = (0..rec.instants.len()).collect();
                order.sort_by_key(|&i| (rec.instants[i].ts_ns, rec.instants[i].node));
                for i in order {
                    let ev = &rec.instants[i];
                    tr.instant(
                        node_tracks[ev.node],
                        ev.name,
                        ev.category,
                        ev.ts_ns,
                        &ev.args,
                    );
                }
            }
            tr.record_span(
                engine_track,
                "run",
                "run",
                0,
                makespan,
                &[("nodes", n as u64)],
            );
        }
        let network_busy_ns = (0..n)
            .map(|i| {
                (
                    s.fabric.uplink_busy_ns(NodeId(i)),
                    s.fabric.downlink_busy_ns(NodeId(i)),
                )
            })
            .collect();
        let sync_gpu_busy_ns = (0..n).map(|i| s.gpus[i].kernel_busy_ns()).collect();
        let cpu_busy_ns = (0..n).map(|i| s.cpus[i].busy_ns()).collect();
        Ok(ExecStats {
            makespan_ns: makespan,
            grad_finish_ns: s.grad_finish.clone(),
            network_busy_ns,
            sync_gpu_busy_ns,
            cpu_busy_ns,
            link_flushes: s.link_flushes,
            comp_batch_launches: s.comp_batch_launches,
            events,
        })
    }
}

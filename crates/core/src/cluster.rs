//! Cluster configuration shared by strategies, the planner, and the
//! executor.

use hipress_simgpu::DeviceSpec;
use hipress_simnet::LinkSpec;
use hipress_util::{Error, Result};

/// A homogeneous training cluster (the paper assumes homogeneity,
/// §3.3).
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Number of nodes (each is both a worker and, for PS, a
    /// co-located aggregator, as in §6.1).
    pub nodes: usize,
    /// GPUs per node (8 on EC2, 2 locally).
    pub gpus_per_node: usize,
    /// Inter-node link spec.
    pub link: LinkSpec,
    /// GPU device model.
    pub gpu: DeviceSpec,
    /// Effective fraction of nominal link bandwidth the transport
    /// achieves at application level (RDMA+NCCL ≈ 0.7; the TCP
    /// fallback BytePS uses on EC2, where it lacks EFA support,
    /// ≈ 0.45 — §6.1).
    pub transport_efficiency: f64,
}

impl ClusterConfig {
    /// The paper's EC2 cluster: 16 nodes × 8 V100, 100 Gbps.
    pub fn ec2(nodes: usize) -> Self {
        Self {
            nodes,
            gpus_per_node: 8,
            link: LinkSpec::gbps100(),
            gpu: DeviceSpec::v100(),
            transport_efficiency: 0.7,
        }
    }

    /// The paper's local cluster: 16 nodes × 2 GTX 1080 Ti, 56 Gbps.
    pub fn local(nodes: usize) -> Self {
        Self {
            nodes,
            gpus_per_node: 2,
            link: LinkSpec::gbps56(),
            gpu: DeviceSpec::gtx1080ti(),
            transport_efficiency: 0.7,
        }
    }

    /// Switches to TCP transport (BytePS on EC2; §6.1 notes BytePS
    /// cannot use EFA).
    pub fn with_tcp(mut self) -> Self {
        self.transport_efficiency = 0.45;
        self
    }

    /// Overrides the link spec (Figure 12a bandwidth sweeps).
    pub fn with_link(mut self, link: LinkSpec) -> Self {
        self.link = link;
        self
    }

    /// Total GPU count.
    pub fn total_gpus(&self) -> usize {
        self.nodes * self.gpus_per_node
    }

    /// The link spec adjusted for transport efficiency — what the
    /// executor actually builds the fabric from.
    pub fn effective_link(&self) -> LinkSpec {
        LinkSpec::new(
            hipress_util::units::Bandwidth::bytes_per_sec(
                self.link.bandwidth.as_bytes_per_sec() * self.transport_efficiency,
            ),
            self.link.latency_ns,
        )
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.nodes == 0 {
            return Err(Error::config("cluster needs at least one node"));
        }
        if self.gpus_per_node == 0 {
            return Err(Error::config("nodes need at least one GPU"));
        }
        if !(0.0..=1.0).contains(&self.transport_efficiency) || self.transport_efficiency == 0.0 {
            return Err(Error::config("transport efficiency must be in (0, 1]"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let ec2 = ClusterConfig::ec2(16);
        assert_eq!(ec2.total_gpus(), 128);
        assert_eq!(ec2.gpu.name, "V100");
        let local = ClusterConfig::local(16);
        assert_eq!(local.total_gpus(), 32);
        assert_eq!(local.gpu.name, "1080Ti");
        assert!(ec2.validate().is_ok());
    }

    #[test]
    fn tcp_derates_bandwidth() {
        let rdma = ClusterConfig::ec2(4);
        let tcp = ClusterConfig::ec2(4).with_tcp();
        assert!(
            tcp.effective_link().bandwidth.as_gbps() < rdma.effective_link().bandwidth.as_gbps()
        );
        // Nominal spec unchanged.
        assert_eq!(tcp.link.bandwidth, rdma.link.bandwidth);
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut c = ClusterConfig::ec2(0);
        assert!(c.validate().is_err());
        c.nodes = 2;
        c.gpus_per_node = 0;
        assert!(c.validate().is_err());
        c.gpus_per_node = 1;
        c.transport_efficiency = 0.0;
        assert!(c.validate().is_err());
        c.transport_efficiency = 0.5;
        assert!(c.validate().is_ok());
    }
}

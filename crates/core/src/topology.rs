//! Communication topology, decoupled from synchronization strategies.
//!
//! §3.1: "We first decouple the communication topology from gradient
//! synchronization strategies. We represent the topology as a directed
//! graph, where the vertex set contains training nodes and the edge
//! set specifies the connections between these nodes." Nodes carry one
//! of two fundamental roles — worker and aggregator — and a node may
//! hold both (the co-located deployments of §6.1).

use hipress_util::{Error, Result};

/// A node's role in gradient synchronization (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Roles {
    /// Produces gradients and initiates synchronization.
    pub worker: bool,
    /// Aggregates gradients and relays results.
    pub aggregator: bool,
}

/// A directed communication topology over cluster nodes.
#[derive(Debug, Clone)]
pub struct Topology {
    roles: Vec<Roles>,
    edges: Vec<(usize, usize)>,
    kind: TopologyKind,
}

/// The structural family of a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyKind {
    /// Clockwise ring: every node is both worker and aggregator.
    Ring,
    /// Bipartite worker↔aggregator connections with co-located roles
    /// (every node is both; traffic to the local aggregator is free).
    ColocatedPs,
}

impl Topology {
    /// A clockwise ring over `n` nodes (Figure 1b).
    ///
    /// # Errors
    ///
    /// Rings need at least two nodes.
    pub fn ring(n: usize) -> Result<Topology> {
        if n < 2 {
            return Err(Error::config("a ring needs at least two nodes"));
        }
        Ok(Topology {
            roles: vec![
                Roles {
                    worker: true,
                    aggregator: true,
                };
                n
            ],
            edges: (0..n).map(|i| (i, (i + 1) % n)).collect(),
            kind: TopologyKind::Ring,
        })
    }

    /// A co-located PS bipartite graph over `n` nodes (Figure 1a with
    /// the §6.1 co-location): every ordered pair is connected.
    ///
    /// # Errors
    ///
    /// Needs at least two nodes.
    pub fn colocated_ps(n: usize) -> Result<Topology> {
        if n < 2 {
            return Err(Error::config("PS needs at least two nodes"));
        }
        let mut edges = Vec::with_capacity(n * (n - 1));
        for w in 0..n {
            for a in 0..n {
                if w != a {
                    edges.push((w, a));
                }
            }
        }
        Ok(Topology {
            roles: vec![
                Roles {
                    worker: true,
                    aggregator: true,
                };
                n
            ],
            edges,
            kind: TopologyKind::ColocatedPs,
        })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.roles.len()
    }

    /// Whether the topology has no nodes (never true once built).
    pub fn is_empty(&self) -> bool {
        self.roles.is_empty()
    }

    /// The structural family.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// The node's roles.
    pub fn roles(&self, node: usize) -> Roles {
        self.roles[node]
    }

    /// Directed edges (src, dst).
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Whether `src → dst` is a topology edge.
    pub fn connected(&self, src: usize, dst: usize) -> bool {
        self.edges.contains(&(src, dst))
    }

    /// The ring successor of `node`.
    ///
    /// # Panics
    ///
    /// Panics on non-ring topologies.
    pub fn successor(&self, node: usize) -> usize {
        assert_eq!(self.kind, TopologyKind::Ring, "successor is a ring notion");
        (node + 1) % self.len()
    }

    /// The aggregator serving chunk `c` of gradient `g` under the
    /// load-spreading assignment the CaSync-PS strategy uses.
    ///
    /// # Panics
    ///
    /// Panics on non-PS topologies.
    pub fn aggregator_of(&self, grad: usize, chunk: usize) -> usize {
        assert_eq!(
            self.kind,
            TopologyKind::ColocatedPs,
            "aggregator assignment is a PS notion"
        );
        (grad + chunk) % self.len()
    }

    /// The ring owner of chunk `c` of gradient `g` (the node at which
    /// aggregation completes).
    ///
    /// # Panics
    ///
    /// Panics on non-ring topologies.
    pub fn owner_of(&self, grad: usize, chunk: usize) -> usize {
        assert_eq!(self.kind, TopologyKind::Ring, "ownership is a ring notion");
        (grad + chunk) % self.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_structure() {
        let t = Topology::ring(4).unwrap();
        assert_eq!(t.len(), 4);
        assert_eq!(t.kind(), TopologyKind::Ring);
        assert_eq!(t.edges().len(), 4);
        assert!(t.connected(0, 1));
        assert!(t.connected(3, 0));
        assert!(!t.connected(0, 2));
        assert_eq!(t.successor(3), 0);
        // Every node holds both roles.
        for i in 0..4 {
            assert!(t.roles(i).worker && t.roles(i).aggregator);
        }
    }

    #[test]
    fn ps_structure() {
        let t = Topology::colocated_ps(3).unwrap();
        assert_eq!(t.kind(), TopologyKind::ColocatedPs);
        assert_eq!(t.edges().len(), 6); // Full bipartite minus self.
        for w in 0..3 {
            for a in 0..3 {
                assert_eq!(t.connected(w, a), w != a);
            }
        }
    }

    #[test]
    fn assignments_spread_load() {
        let t = Topology::colocated_ps(4).unwrap();
        let aggs: std::collections::HashSet<usize> =
            (0..4).map(|c| t.aggregator_of(0, c)).collect();
        assert_eq!(aggs.len(), 4, "chunks must spread across aggregators");
        let r = Topology::ring(4).unwrap();
        let owners: std::collections::HashSet<usize> = (0..4).map(|c| r.owner_of(1, c)).collect();
        assert_eq!(owners.len(), 4);
    }

    #[test]
    fn degenerate_rejected() {
        assert!(Topology::ring(1).is_err());
        assert!(Topology::colocated_ps(0).is_err());
    }

    #[test]
    #[should_panic(expected = "ring notion")]
    fn successor_on_ps_panics() {
        Topology::colocated_ps(3).unwrap().successor(0);
    }
}

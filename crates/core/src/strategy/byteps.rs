//! The BytePS-style baseline Parameter Server.
//!
//! Without compression this is BytePS's strength: every tensor is
//! partitioned into 4 MiB chunks spread round-robin over co-located
//! aggregators, giving fine-grained pipelining and load balance
//! (§2.2, §2.5 "fine-grained approach").
//!
//! With compression it reproduces the BytePS-onebit co-design the
//! paper measures (§2.5, Table 1): compression is bolted on at
//! *whole-gradient* granularity — the gradient is encoded once on the
//! worker and the compressed blob, which cannot be partitioned for
//! aggregation, is shipped to a single server. Large gradients
//! therefore lose partition parallelism, and every hop pays extra
//! staging copies (modelled as one extra memory pass on each codec
//! kernel via `EXTRA_COPY_PASSES`).

use crate::graph::{Primitive, SendSrc, TaskGraph, TaskId};
use crate::plan::{CompressionSpec, IterationSpec};
use crate::strategy::util::{chunk_sizes, Emit};

/// BytePS's partition size for uncompressed tensors.
const PARTITION_BYTES: u64 = 4 * 1024 * 1024;

/// Builds the BytePS task graph for one iteration on `n` nodes.
pub(crate) fn build(n: usize, iter: &IterationSpec) -> TaskGraph {
    let mut graph = TaskGraph::new();
    let mut e = Emit {
        graph: &mut graph,
        iter,
    };
    for (g, grad) in iter.gradients.iter().enumerate() {
        match iter.compression {
            Some(spec) => build_compressed_gradient(&mut e, n, g, grad.bytes, spec),
            None => build_raw_gradient(&mut e, n, g, grad.bytes),
        }
    }
    graph
}

/// Uncompressed path: 4 MiB partitions round-robin over servers.
fn build_raw_gradient(e: &mut Emit<'_>, n: usize, g: usize, bytes: u64) {
    let k = (bytes.div_ceil(PARTITION_BYTES) as usize).max(1);
    let chunks = chunk_sizes(bytes, k);
    for (c, &chunk_bytes) in chunks.iter().enumerate() {
        if chunk_bytes == 0 {
            continue;
        }
        let agg = (c + g) % n;
        let sources: Vec<TaskId> = (0..n).map(|w| e.source(w, g, c, chunk_bytes)).collect();
        let mut merge_tail = sources[agg];
        for w in 0..n {
            if w == agg {
                continue;
            }
            let (_, recv) = e.send_recv(
                w,
                agg,
                g,
                c,
                chunk_bytes,
                chunk_bytes,
                SendSrc::Raw,
                vec![sources[w]],
            );
            merge_tail = e.compute_at(
                Primitive::Merge,
                agg,
                g,
                c,
                chunk_bytes,
                chunk_bytes,
                vec![recv, merge_tail],
                true,
            );
        }
        e.compute(
            Primitive::Update,
            agg,
            g,
            c,
            chunk_bytes,
            chunk_bytes,
            vec![merge_tail],
        );
        for w in 0..n {
            if w == agg {
                continue;
            }
            let (_, recv) = e.send_recv(
                agg,
                w,
                g,
                c,
                chunk_bytes,
                chunk_bytes,
                SendSrc::Raw,
                vec![merge_tail],
            );
            e.compute(
                Primitive::Update,
                w,
                g,
                c,
                chunk_bytes,
                chunk_bytes,
                vec![recv],
            );
        }
    }
}

/// Compressed path: whole-gradient encode, single server, no
/// partitioning.
fn build_compressed_gradient(
    e: &mut Emit<'_>,
    n: usize,
    g: usize,
    bytes: u64,
    spec: CompressionSpec,
) {
    let c = 0usize;
    let agg = g % n;
    let wire = spec.compressed_bytes(bytes);
    let sources: Vec<TaskId> = (0..n).map(|w| e.source(w, g, c, bytes)).collect();
    let mut merge_tail = sources[agg];
    for w in 0..n {
        if w == agg {
            continue;
        }
        let enc = e.compute(Primitive::Encode, w, g, c, bytes, wire, vec![sources[w]]);
        let (_, recv) = e.send_recv(w, agg, g, c, bytes, wire, SendSrc::Encoded, vec![enc]);
        // The paper integrated an on-GPU onebit into BytePS for a
        // fair comparison (SS2.5 footnote), so server-side codec work
        // runs on the GPU; the architecture still pays staging copies
        // (codec_extra_passes) and loses partition parallelism.
        let dec = e.compute(Primitive::Decode, agg, g, c, bytes, wire, vec![recv]);
        merge_tail = e.compute(
            Primitive::Merge,
            agg,
            g,
            c,
            bytes,
            wire,
            vec![dec, merge_tail],
        );
    }
    let enc_back = e.compute(Primitive::Encode, agg, g, c, bytes, wire, vec![merge_tail]);
    // The server installs the reconstruction of what it broadcasts so
    // all replicas agree.
    e.compute(Primitive::Update, agg, g, c, bytes, wire, vec![enc_back]);
    for w in 0..n {
        if w == agg {
            continue;
        }
        let (_, recv) = e.send_recv(agg, w, g, c, bytes, wire, SendSrc::Encoded, vec![enc_back]);
        let dec = e.compute(Primitive::Decode, w, g, c, bytes, wire, vec![recv]);
        e.compute(Primitive::Update, w, g, c, bytes, wire, vec![dec]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{GradPlan, SyncGradient};
    use hipress_compress::Algorithm;

    fn spec(bytes: u64, compress: bool) -> IterationSpec {
        IterationSpec {
            gradients: vec![SyncGradient {
                name: "g".into(),
                bytes,
                ready_offset_ns: 0,
                // BytePS ignores CaSync plans; give a conspicuous one.
                plan: GradPlan {
                    compress: false,
                    partitions: 13,
                },
            }],
            compression: compress
                .then(|| CompressionSpec::of(Algorithm::OneBit.build().unwrap().as_ref())),
        }
    }

    #[test]
    fn raw_tensors_partitioned_at_4mib() {
        let n = 4;
        let bytes = 10 * 1024 * 1024;
        let g = build(n, &spec(bytes, false));
        // ceil(10MiB / 4MiB) = 3 chunks, each updated on n nodes.
        assert_eq!(g.count(Primitive::Update), 3 * n);
        assert_eq!(g.count(Primitive::Encode), 0);
        g.topo_order().unwrap();
    }

    #[test]
    fn compressed_tensors_are_not_partitioned() {
        let n = 4;
        let bytes = 10 * 1024 * 1024;
        let g = build(n, &spec(bytes, true));
        // Whole-gradient: exactly one chunk regardless of size.
        let parts: std::collections::HashSet<u32> =
            g.tasks().iter().map(|t| t.chunk.part).collect();
        assert_eq!(parts.len(), 1);
        // N-1 worker encodes + 1 server encode.
        assert_eq!(g.count(Primitive::Encode), n);
        g.topo_order().unwrap();
    }

    #[test]
    fn small_gradient_single_chunk() {
        let g = build(3, &spec(4096, false));
        assert_eq!(g.count(Primitive::Update), 3);
    }

    #[test]
    fn compressed_wire_sizes_shrink() {
        let g = build(3, &spec(1 << 22, true));
        for t in g.tasks() {
            if t.prim == Primitive::Send {
                assert!(t.bytes_wire < t.bytes_raw / 16);
            }
        }
    }
}

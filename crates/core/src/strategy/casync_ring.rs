//! CaSync-Ring: Ring-allreduce expressed as a CaSync task DAG.
//!
//! Each gradient is split into `K` partitions; partition `c` has an
//! owner node and travels the ring twice (§2.2, Figure 1b):
//!
//! * **aggregation** (N−1 hops): each hop decodes the incoming
//!   partial aggregate, merges it with the local chunk, re-encodes,
//!   and forwards — the hop-serial dependency chain of §3.3's β/γ
//!   analysis;
//! * **dissemination** (N−1 hops): the owner encodes the final
//!   aggregate once; every other node *forwards the received bytes
//!   verbatim* and decodes off the critical path, which is why all
//!   but the last decode overlap with transmission (§3.3).
//!
//! Unlike the conventional collective, nothing here is bulk
//! synchronous: chunks of all gradients flow through the ring
//! independently, which is what lets the executor pipeline
//! compression against communication.

use crate::graph::{Primitive, SendSrc, TaskGraph};
use crate::plan::IterationSpec;
use crate::strategy::util::{chunk_sizes, wire_bytes, Emit};
use crate::topology::Topology;

/// Builds the CaSync-Ring task graph for one iteration on `n` nodes.
pub(crate) fn build(n: usize, iter: &IterationSpec) -> TaskGraph {
    let topo = Topology::ring(n).expect("strategy entry validated n >= 2");
    let mut graph = TaskGraph::new();
    let mut e = Emit {
        graph: &mut graph,
        iter,
    };
    for (g, grad) in iter.gradients.iter().enumerate() {
        let compressed = iter.is_compressed(g);
        let chunks = chunk_sizes(grad.bytes, grad.plan.partitions);
        for (c, &chunk_bytes) in chunks.iter().enumerate() {
            if chunk_bytes == 0 {
                continue;
            }
            let wire = wire_bytes(iter, g, chunk_bytes);
            let owner = topo.owner_of(g, c);

            let sources: Vec<_> = (0..n).map(|w| e.source(w, g, c, chunk_bytes)).collect();

            // Aggregation: the partial aggregate starts at the node
            // after the owner and walks the ring back to the owner.
            let mut carry = sources[topo.successor(owner)];
            let mut holder = topo.successor(owner);
            for _hop in 0..n - 1 {
                let next = topo.successor(holder);
                let ready = if compressed {
                    e.compute(
                        Primitive::Encode,
                        holder,
                        g,
                        c,
                        chunk_bytes,
                        wire,
                        vec![carry],
                    )
                } else {
                    carry
                };
                let src = if compressed {
                    SendSrc::Encoded
                } else {
                    SendSrc::Raw
                };
                let (_, recv) =
                    e.send_recv(holder, next, g, c, chunk_bytes, wire, src, vec![ready]);
                let contribution = if compressed {
                    e.compute(Primitive::Decode, next, g, c, chunk_bytes, wire, vec![recv])
                } else {
                    recv
                };
                carry = e.compute(
                    Primitive::Merge,
                    next,
                    g,
                    c,
                    chunk_bytes,
                    wire,
                    vec![contribution, sources[next]],
                );
                holder = next;
            }
            debug_assert_eq!(holder, owner, "aggregation must end at the owner");

            // The owner encodes the aggregate once for dissemination
            // and installs the reconstruction of exactly those bytes
            // (not the raw sum), keeping its replica consistent with
            // every other node's decode.
            let mut outgoing = if compressed {
                e.compute(
                    Primitive::Encode,
                    owner,
                    g,
                    c,
                    chunk_bytes,
                    wire,
                    vec![carry],
                )
            } else {
                carry
            };
            e.compute(
                Primitive::Update,
                owner,
                g,
                c,
                chunk_bytes,
                wire,
                vec![outgoing],
            );
            // Dissemination: forward verbatim around the ring.
            let mut from = owner;
            for hop in 0..n - 1 {
                let to = topo.successor(from);
                // Hop 0 ships the owner's aggregate (encoded or its
                // raw accumulator); every later hop forwards the
                // received payload verbatim. Raw would be wrong past
                // hop 0: a non-owner's accumulator holds its local
                // partial, not the aggregate — the interpreter only
                // masked that because its topological order ran the
                // Update (which overwrites the accumulator) first,
                // an ordering a concurrent executor does not owe us.
                let src = match (compressed, hop) {
                    (false, 0) => SendSrc::Raw,
                    (true, 0) => SendSrc::Encoded,
                    (_, _) => SendSrc::Forward,
                };
                let (_, recv) = e.send_recv(from, to, g, c, chunk_bytes, wire, src, vec![outgoing]);
                let installed = if compressed {
                    e.compute(Primitive::Decode, to, g, c, chunk_bytes, wire, vec![recv])
                } else {
                    recv
                };
                e.compute(
                    Primitive::Update,
                    to,
                    g,
                    c,
                    chunk_bytes,
                    wire,
                    vec![installed],
                );
                // The next hop forwards what `to` received — it only
                // needs the recv, not the decode (overlap!).
                outgoing = recv;
                from = to;
            }
        }
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{CompressionSpec, GradPlan, SyncGradient};
    use hipress_compress::Algorithm;

    fn one_grad_spec(bytes: u64, k: usize, compress: bool) -> IterationSpec {
        IterationSpec {
            gradients: vec![SyncGradient {
                name: "g".into(),
                bytes,
                ready_offset_ns: 0,
                plan: GradPlan {
                    compress: true,
                    partitions: k,
                },
            }],
            compression: compress.then(|| {
                CompressionSpec::of(Algorithm::Tbq { tau: 0.1 }.build().unwrap().as_ref())
            }),
        }
    }

    #[test]
    fn codec_counts_match_table3() {
        // Table 3 for CaSync-Ring, K=1: encode ops = (N-1) + 1 = N,
        // decode ops = (N-1) + (N-1) = 2(N-1) total (of which only the
        // last dissemination decode is on the send path).
        let n = 6;
        let g = build(n, &one_grad_spec(4096, 1, true));
        assert_eq!(g.count(Primitive::Encode), n);
        assert_eq!(g.count(Primitive::Decode), 2 * (n - 1));
        assert_eq!(g.count(Primitive::Merge), n - 1);
        // 2(N-1) communication steps (alpha).
        assert_eq!(g.count(Primitive::Send), 2 * (n - 1));
    }

    #[test]
    fn every_node_updates_every_chunk() {
        let n = 4;
        let k = 3;
        let g = build(n, &one_grad_spec(1 << 16, k, true));
        assert_eq!(g.count(Primitive::Update), n * k);
    }

    #[test]
    fn dissemination_forwards_verbatim() {
        let n = 5;
        let g = build(n, &one_grad_spec(4096, 1, true));
        let forwards = g
            .tasks()
            .iter()
            .filter(|t| t.send_src == crate::graph::SendSrc::Forward)
            .count();
        // N-1 dissemination sends, the first is Encoded, the rest
        // forward: N-2 forwards.
        assert_eq!(forwards, n - 2);
    }

    #[test]
    fn raw_ring_has_no_codecs() {
        let g = build(4, &one_grad_spec(1 << 16, 2, false));
        assert_eq!(g.count(Primitive::Encode), 0);
        assert_eq!(g.count(Primitive::Decode), 0);
        assert_eq!(g.count(Primitive::Send), 2 * 2 * 3); // K * 2(N-1)
    }

    #[test]
    fn owners_rotate_across_chunks() {
        let n = 4;
        let g = build(n, &one_grad_spec(1 << 16, 4, false));
        // The final aggregation merge of each chunk lands on a
        // distinct owner.
        let mut owners: Vec<usize> = Vec::new();
        for c in 0..4u32 {
            let merges: Vec<_> = g
                .tasks()
                .iter()
                .filter(|t| t.prim == Primitive::Merge && t.chunk.part == c)
                .collect();
            owners.push(merges.last().unwrap().node);
        }
        owners.sort_unstable();
        assert_eq!(owners, vec![0, 1, 2, 3]);
    }

    #[test]
    fn graphs_validate() {
        // Full lint cleanliness is asserted in the hipress-lint
        // matrix tests; here just structural sanity.
        for n in [2usize, 3, 8] {
            for k in [1usize, 2, 5] {
                for comp in [false, true] {
                    let g = build(n, &one_grad_spec(1 << 14, k, comp));
                    g.topo_order().unwrap();
                }
            }
        }
    }
}

//! Synchronization strategies: compilers from an [`IterationSpec`] to
//! a [`TaskGraph`].
//!
//! Two CaSync strategies (the paper's contribution) and two baselines
//! (the systems it compares against) are implemented:
//!
//! * [`Strategy::CaSyncPs`] — PS with co-located aggregators,
//!   per-gradient selective compression and partitioning, fully
//!   pipelined task DAG (§3, §6.1),
//! * [`Strategy::CaSyncRing`] — Ring-allreduce recast as a pipelined
//!   task DAG with per-chunk compression,
//! * [`Strategy::BytePs`] — the BytePS baseline: 4 MiB tensor
//!   partitioning without compression; with compression, whole-tensor
//!   encode before transmission (compressed tensors cannot be
//!   partitioned for aggregation — the §2.5 incompatibility),
//! * [`Strategy::HorovodRing`] — the Horovod/Ring baseline: 64 MiB
//!   fusion buffers, serialized collectives; with compression, the
//!   coarse-grained coupled design whose steps are bulk-synchronous.

mod byteps;
mod casync_ps;
mod casync_ring;
mod horovod_ring;

use crate::cluster::ClusterConfig;
use crate::graph::TaskGraph;
use crate::plan::IterationSpec;
use hipress_util::{Error, Result};

pub(crate) mod util;

pub use horovod_ring::fusion_groups as horovod_fusion_groups;

/// The synchronization strategy used for an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// CaSync configured as a Parameter Server (co-located
    /// aggregators, as evaluated in §6).
    CaSyncPs,
    /// CaSync configured as Ring-allreduce.
    CaSyncRing,
    /// BytePS-style baseline PS.
    BytePs,
    /// Horovod-style baseline Ring-allreduce.
    HorovodRing,
}

impl Strategy {
    /// All strategies.
    pub fn all() -> [Strategy; 4] {
        [
            Strategy::CaSyncPs,
            Strategy::CaSyncRing,
            Strategy::BytePs,
            Strategy::HorovodRing,
        ]
    }

    /// Display label as used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::CaSyncPs => "CaSync-PS",
            Strategy::CaSyncRing => "CaSync-Ring",
            Strategy::BytePs => "BytePS",
            Strategy::HorovodRing => "Ring",
        }
    }

    /// Whether this is one of the paper's (CaSync) strategies as
    /// opposed to a baseline.
    pub fn is_casync(&self) -> bool {
        matches!(self, Strategy::CaSyncPs | Strategy::CaSyncRing)
    }

    /// Compiles one iteration into a task graph.
    ///
    /// # Errors
    ///
    /// Returns a configuration error for degenerate clusters (e.g., a
    /// ring of one node) or an invalid spec.
    pub fn build(&self, cluster: &ClusterConfig, iter: &IterationSpec) -> Result<TaskGraph> {
        cluster.validate()?;
        let n = cluster.nodes;
        if n < 2 {
            return Err(Error::config(
                "gradient synchronization needs at least two nodes",
            ));
        }
        for g in &iter.gradients {
            if g.bytes == 0 || g.bytes % 4 != 0 {
                return Err(Error::config(format!(
                    "gradient '{}' has invalid size {}",
                    g.name, g.bytes
                )));
            }
            if g.plan.partitions == 0 {
                return Err(Error::config(format!(
                    "gradient '{}' has zero partitions",
                    g.name
                )));
            }
        }
        let graph = match self {
            Strategy::CaSyncPs => casync_ps::build(n, iter),
            Strategy::CaSyncRing => casync_ring::build(n, iter),
            Strategy::BytePs => byteps::build(n, iter),
            Strategy::HorovodRing => horovod_ring::build(n, iter),
        };
        // Debug builds run the installed `hipress-lint` plan verifier
        // on every graph a strategy emits (release builds skip it;
        // `hipress lint` covers the matrix offline).
        #[cfg(debug_assertions)]
        crate::graph::run_debug_verifier(&graph, n)?;
        Ok(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{CompressionSpec, GradPlan, SyncGradient};
    use crate::ClusterConfig;
    use hipress_compress::Algorithm;

    pub(crate) fn spec_with(
        sizes: &[u64],
        compression: Option<Algorithm>,
        partitions: usize,
    ) -> IterationSpec {
        IterationSpec {
            gradients: sizes
                .iter()
                .enumerate()
                .map(|(i, &bytes)| SyncGradient {
                    name: format!("g{i}"),
                    bytes,
                    ready_offset_ns: (sizes.len() - i) as u64 * 1000,
                    plan: GradPlan {
                        compress: true,
                        partitions,
                    },
                })
                .collect(),
            compression: compression
                .map(|a| CompressionSpec::of(a.build().expect("algorithm").as_ref())),
        }
    }

    #[test]
    fn all_strategies_build_valid_graphs() {
        let cluster = ClusterConfig::ec2(4);
        for strat in Strategy::all() {
            for compression in [None, Some(Algorithm::OneBit)] {
                let iter = spec_with(&[4096, 1 << 20, 256], compression, 2);
                // Structural sanity here; full lint cleanliness is
                // asserted in the integration tests (tests/) and in
                // hipress-lint's own matrix tests — unit tests cannot
                // use hipress-lint (dev-dep cycle: the test-compiled
                // crate would not unify with the lib lint links).
                let g = strat.build(&cluster, &iter).unwrap();
                g.topo_order().unwrap();
                assert!(!g.is_empty(), "{strat:?}");
            }
        }
    }

    #[test]
    fn single_node_cluster_rejected() {
        let cluster = ClusterConfig::ec2(1);
        let iter = spec_with(&[4096], None, 1);
        assert!(Strategy::CaSyncRing.build(&cluster, &iter).is_err());
    }

    #[test]
    fn invalid_gradient_rejected() {
        let cluster = ClusterConfig::ec2(4);
        let mut iter = spec_with(&[4096], None, 1);
        iter.gradients[0].bytes = 6; // Not a multiple of 4.
        assert!(Strategy::CaSyncPs.build(&cluster, &iter).is_err());
        iter.gradients[0].bytes = 8;
        iter.gradients[0].plan.partitions = 0;
        assert!(Strategy::CaSyncPs.build(&cluster, &iter).is_err());
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            Strategy::all().iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 4);
        assert!(Strategy::CaSyncPs.is_casync());
        assert!(!Strategy::BytePs.is_casync());
    }
}

//! CaSync-PS: the Parameter Server strategy expressed as a CaSync
//! task DAG.
//!
//! Aggregators are co-located with workers (§6.1): every node is both.
//! Each gradient is split into `K` partitions (from its selective
//! compression plan); partition `c` is served by aggregator
//! `c mod N`, spreading load across all nodes like BytePS's
//! partitioned PS — but with compression-aware pipelining:
//!
//! ```text
//! worker w, chunk c (aggregator a):
//!   Source(w) → Encode(w) → Send(w→a) → Recv(a) → Decode(a) ─┐
//!                                         (×N−1 workers)      ├→ Merge(a)…
//!   Source(a) ────────────────────────────────────────────────┘
//!   Merge(a, all) → Encode(a) → Send(a→w) → Recv(w) → Decode(w) → Update(w)
//!                 └→ Update(a)
//! ```
//!
//! Without compression the encode/decode stages vanish and sends move
//! raw chunks — the same DAG CaSync uses for uncompressed gradients
//! under selective compression.

use crate::graph::{Primitive, SendSrc, TaskGraph, TaskId};
use crate::plan::IterationSpec;
use crate::strategy::util::{chunk_sizes, wire_bytes, Emit};
use crate::topology::Topology;

/// Builds the CaSync-PS task graph for one iteration on `n` nodes.
pub(crate) fn build(n: usize, iter: &IterationSpec) -> TaskGraph {
    let topo = Topology::colocated_ps(n).expect("strategy entry validated n >= 2");
    let mut graph = TaskGraph::new();
    let mut e = Emit {
        graph: &mut graph,
        iter,
    };
    for (g, grad) in iter.gradients.iter().enumerate() {
        let compressed = iter.is_compressed(g);
        let chunks = chunk_sizes(grad.bytes, grad.plan.partitions);
        for (c, &chunk_bytes) in chunks.iter().enumerate() {
            if chunk_bytes == 0 {
                continue;
            }
            let agg = topo.aggregator_of(g, c); // Load-spread assignment.
            let wire = wire_bytes(iter, g, chunk_bytes);

            // Every node holds its local chunk.
            let sources: Vec<TaskId> = (0..n).map(|w| e.source(w, g, c, chunk_bytes)).collect();

            // Push phase: remote workers ship their chunk to the
            // aggregator; contributions are merged serially (the
            // accumulator is a hazard).
            let mut merge_tail = sources[agg];
            for w in 0..n {
                if w == agg {
                    continue;
                }
                let ready = if compressed {
                    e.compute(
                        Primitive::Encode,
                        w,
                        g,
                        c,
                        chunk_bytes,
                        wire,
                        vec![sources[w]],
                    )
                } else {
                    sources[w]
                };
                let src = if compressed {
                    SendSrc::Encoded
                } else {
                    SendSrc::Raw
                };
                let (_, recv) = e.send_recv(w, agg, g, c, chunk_bytes, wire, src, vec![ready]);
                let contribution = if compressed {
                    e.compute(Primitive::Decode, agg, g, c, chunk_bytes, wire, vec![recv])
                } else {
                    recv
                };
                merge_tail = e.compute(
                    Primitive::Merge,
                    agg,
                    g,
                    c,
                    chunk_bytes,
                    wire,
                    vec![contribution, merge_tail],
                );
            }

            // Pull phase: the aggregator returns the result to every
            // remote worker. When compression is on, the aggregator
            // itself installs the *reconstruction* of what it sent
            // (decode∘encode of the aggregate, fused into the encode
            // kernel) — otherwise its replica would diverge from the
            // workers'.
            let result_ready = if compressed {
                e.compute(
                    Primitive::Encode,
                    agg,
                    g,
                    c,
                    chunk_bytes,
                    wire,
                    vec![merge_tail],
                )
            } else {
                merge_tail
            };
            e.compute(
                Primitive::Update,
                agg,
                g,
                c,
                chunk_bytes,
                wire,
                vec![result_ready],
            );
            for w in 0..n {
                if w == agg {
                    continue;
                }
                let src = if compressed {
                    SendSrc::Encoded
                } else {
                    SendSrc::Raw
                };
                let (_, recv) =
                    e.send_recv(agg, w, g, c, chunk_bytes, wire, src, vec![result_ready]);
                let installed = if compressed {
                    e.compute(Primitive::Decode, w, g, c, chunk_bytes, wire, vec![recv])
                } else {
                    recv
                };
                e.compute(
                    Primitive::Update,
                    w,
                    g,
                    c,
                    chunk_bytes,
                    wire,
                    vec![installed],
                );
            }
        }
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{CompressionSpec, GradPlan, SyncGradient};
    use hipress_compress::Algorithm;

    fn one_grad_spec(bytes: u64, k: usize, compress: bool) -> IterationSpec {
        IterationSpec {
            gradients: vec![SyncGradient {
                name: "g".into(),
                bytes,
                ready_offset_ns: 0,
                plan: GradPlan {
                    compress: true,
                    partitions: k,
                },
            }],
            compression: compress
                .then(|| CompressionSpec::of(Algorithm::OneBit.build().unwrap().as_ref())),
        }
    }

    #[test]
    fn operator_counts_match_cost_model() {
        // SS2.5: up to 3N-2 compression operators per gradient. For PS
        // with K=1: N-1 worker encodes + N-1 aggregator decodes +
        // 1 aggregator encode + N-1 worker decodes = 3N-2 total.
        let n = 5;
        let g = build(n, &one_grad_spec(4096, 1, true));
        let enc = g.count(Primitive::Encode);
        let dec = g.count(Primitive::Decode);
        assert_eq!(enc + dec, 3 * n - 2);
        assert_eq!(enc, n); // N-1 workers + 1 aggregator.
        assert_eq!(dec, 2 * (n - 1));
    }

    #[test]
    fn uncompressed_graph_has_no_codec_tasks() {
        let g = build(4, &one_grad_spec(4096, 2, false));
        assert_eq!(g.count(Primitive::Encode), 0);
        assert_eq!(g.count(Primitive::Decode), 0);
        // Raw wire size equals chunk size.
        assert!(g.tasks().iter().all(|t| t.bytes_wire == t.bytes_raw));
    }

    #[test]
    fn every_node_gets_an_update_per_chunk() {
        let n = 4;
        let k = 3;
        let g = build(n, &one_grad_spec(4096 * 3, k, true));
        assert_eq!(g.count(Primitive::Update), n * k);
    }

    #[test]
    fn partitions_spread_across_aggregators() {
        let n = 4;
        let g = build(n, &one_grad_spec(1 << 20, 4, true));
        // Each chunk has exactly one aggregator-side final encode; the
        // four chunks use four distinct nodes.
        let agg_nodes: std::collections::HashSet<usize> = g
            .tasks()
            .iter()
            .filter(|t| t.prim == Primitive::Merge)
            .map(|t| t.node)
            .collect();
        assert_eq!(agg_nodes.len(), 4);
    }

    #[test]
    fn compressed_wire_smaller_than_raw() {
        let g = build(4, &one_grad_spec(1 << 20, 1, true));
        for t in g.tasks() {
            if t.prim == Primitive::Send {
                assert!(t.bytes_wire < t.bytes_raw / 16, "onebit must shrink sends");
            }
        }
    }

    #[test]
    fn graph_is_valid() {
        // Full lint cleanliness is asserted in the hipress-lint
        // matrix tests; here just structural sanity.
        for k in [1usize, 2, 7] {
            for comp in [false, true] {
                let g = build(3, &one_grad_spec(4096, k, comp));
                g.topo_order().unwrap();
            }
        }
    }
}

//! Shared helpers for the strategy builders.

use crate::graph::{ChunkId, Primitive, SendSrc, TaskGraph, TaskId, TaskNode};
use crate::plan::IterationSpec;

/// Splits `bytes` (a multiple of 4) into `k` chunk sizes balanced to
/// the element, each a multiple of 4. Chunks may be zero-sized when a
/// tiny gradient is split more ways than it has elements; builders
/// skip those.
pub(crate) fn chunk_sizes(bytes: u64, k: usize) -> Vec<u64> {
    let elems = bytes / 4;
    let base = elems / k as u64;
    let extra = elems % k as u64;
    (0..k as u64)
        .map(|i| (base + u64::from(i < extra)) * 4)
        .collect()
}

/// The on-the-wire size of a chunk under the iteration's compression
/// setting for gradient `grad`.
pub(crate) fn wire_bytes(iter: &IterationSpec, grad: usize, chunk_bytes: u64) -> u64 {
    if iter.is_compressed(grad) {
        iter.compression
            .expect("is_compressed implies a compression spec")
            .compressed_bytes(chunk_bytes)
    } else {
        chunk_bytes
    }
}

/// A small builder wrapper that keeps the common task fields tidy.
pub(crate) struct Emit<'a> {
    /// The graph under construction.
    pub(crate) graph: &'a mut TaskGraph,
    /// The iteration being compiled.
    pub(crate) iter: &'a IterationSpec,
}

impl Emit<'_> {
    /// Adds a `Source` task for gradient `grad` chunk `part` on
    /// `node`, ready at the gradient's backward offset.
    pub(crate) fn source(&mut self, node: usize, grad: usize, part: usize, bytes: u64) -> TaskId {
        let g = &self.iter.gradients[grad];
        self.graph.add(TaskNode {
            id: TaskId(u32::MAX),
            node,
            prim: Primitive::Source,
            chunk: ChunkId {
                grad: grad as u32,
                part: part as u32,
            },
            bytes_raw: bytes,
            bytes_wire: bytes,
            peer: None,
            send_src: SendSrc::Raw,
            deps: Vec::new(),
            earliest_ns: g.ready_offset_ns,
            at_aggregator: false,
        })
    }

    /// Adds a compute task (`Encode`/`Decode`/`Merge`/`Update`).
    pub(crate) fn compute(
        &mut self,
        prim: Primitive,
        node: usize,
        grad: usize,
        part: usize,
        bytes_raw: u64,
        bytes_wire: u64,
        deps: Vec<TaskId>,
    ) -> TaskId {
        self.compute_at(prim, node, grad, part, bytes_raw, bytes_wire, deps, false)
    }

    /// Adds a compute task, optionally marked as aggregator-side
    /// (BytePS-style CPU servers).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn compute_at(
        &mut self,
        prim: Primitive,
        node: usize,
        grad: usize,
        part: usize,
        bytes_raw: u64,
        bytes_wire: u64,
        deps: Vec<TaskId>,
        at_aggregator: bool,
    ) -> TaskId {
        debug_assert!(prim.is_compute());
        self.graph.add(TaskNode {
            id: TaskId(u32::MAX),
            node,
            prim,
            chunk: ChunkId {
                grad: grad as u32,
                part: part as u32,
            },
            bytes_raw,
            bytes_wire,
            peer: None,
            send_src: SendSrc::Raw,
            deps,
            earliest_ns: 0,
            at_aggregator,
        })
    }

    /// Adds a matched `Send`/`Recv` pair moving `bytes_wire` from
    /// `from` to `to`; returns `(send, recv)`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn send_recv(
        &mut self,
        from: usize,
        to: usize,
        grad: usize,
        part: usize,
        bytes_raw: u64,
        bytes_wire: u64,
        src: SendSrc,
        deps: Vec<TaskId>,
    ) -> (TaskId, TaskId) {
        let chunk = ChunkId {
            grad: grad as u32,
            part: part as u32,
        };
        let send = self.graph.add(TaskNode {
            id: TaskId(u32::MAX),
            node: from,
            prim: Primitive::Send,
            chunk,
            bytes_raw,
            bytes_wire,
            peer: Some(to),
            send_src: src,
            deps,
            earliest_ns: 0,
            at_aggregator: false,
        });
        let recv = self.graph.add(TaskNode {
            id: TaskId(u32::MAX),
            node: to,
            prim: Primitive::Recv,
            chunk,
            bytes_raw,
            bytes_wire,
            peer: Some(from),
            send_src: SendSrc::Raw,
            deps: vec![send],
            earliest_ns: 0,
            at_aggregator: false,
        });
        (send, recv)
    }

    /// Adds a zero-cost barrier on `node` depending on `deps`.
    pub(crate) fn barrier(&mut self, node: usize, grad: usize, deps: Vec<TaskId>) -> TaskId {
        self.graph.add(TaskNode {
            id: TaskId(u32::MAX),
            node,
            prim: Primitive::Barrier,
            chunk: ChunkId {
                grad: grad as u32,
                part: 0,
            },
            bytes_raw: 0,
            bytes_wire: 0,
            peer: None,
            send_src: SendSrc::Raw,
            deps,
            earliest_ns: 0,
            at_aggregator: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_sizes_balanced_and_exact() {
        for (bytes, k) in [(400u64, 3usize), (4096, 16), (8, 4), (4, 3)] {
            let chunks = chunk_sizes(bytes, k);
            assert_eq!(chunks.len(), k);
            assert_eq!(chunks.iter().sum::<u64>(), bytes);
            assert!(chunks.iter().all(|c| c % 4 == 0));
            let max = chunks.iter().max().unwrap();
            let min = chunks.iter().min().unwrap();
            assert!(max - min <= 4, "{bytes} into {k}: {chunks:?}");
        }
    }

    #[test]
    fn tiny_gradient_produces_empty_chunks() {
        let chunks = chunk_sizes(8, 4);
        assert_eq!(chunks, vec![4, 4, 0, 0]);
    }
}

//! The Horovod-style baseline Ring-allreduce.
//!
//! Gradients are batched into 64 MiB *fusion buffers* in readiness
//! order; each buffer is ring-allreduced as one collective. Two
//! properties distinguish this baseline from CaSync-Ring:
//!
//! * **collectives serialize**: the communication runtime executes
//!   one collective at a time (a single NCCL stream / MPI context),
//!   so buffer `b+1` starts only after buffer `b` completes;
//! * **steps are bulk synchronous** when compression is coupled in
//!   (the Ring-DGC co-design, §2.5): the collective is a "global,
//!   atomic, bulk synchronization operation" — every ring step is a
//!   barrier across all chunks, so compression kernels cannot overlap
//!   the next step's communication.
//!
//! Without compression the per-buffer ring is the classic
//! bandwidth-optimal algorithm and the barrier costs little (chunks
//! are symmetric); with compression, the barrier plus the hop-serial
//! encode/decode chain is exactly what dilutes the compression
//! benefit in Table 1.

use crate::graph::{Primitive, SendSrc, TaskGraph, TaskId};
use crate::plan::IterationSpec;
use crate::strategy::util::{chunk_sizes, Emit};

/// Horovod's default fusion buffer size.
const FUSION_BYTES: u64 = 64 * 1024 * 1024;

/// A fusion buffer: a contiguous batch of gradients.
#[derive(Debug, Clone)]
struct Buffer {
    /// Gradient indices fused into this buffer.
    grads: Vec<usize>,
    /// Total bytes.
    bytes: u64,
    /// Ready when the latest member gradient is ready.
    ready_ns: u64,
}

/// Groups gradients into fusion buffers in readiness order.
fn fuse(iter: &IterationSpec) -> Vec<Buffer> {
    let mut order: Vec<usize> = (0..iter.gradients.len()).collect();
    order.sort_by_key(|&g| (iter.gradients[g].ready_offset_ns, g));
    let mut buffers: Vec<Buffer> = Vec::new();
    let mut current = Buffer {
        grads: Vec::new(),
        bytes: 0,
        ready_ns: 0,
    };
    for g in order {
        let bytes = iter.gradients[g].bytes;
        if !current.grads.is_empty() && current.bytes + bytes > FUSION_BYTES {
            buffers.push(std::mem::replace(
                &mut current,
                Buffer {
                    grads: Vec::new(),
                    bytes: 0,
                    ready_ns: 0,
                },
            ));
        }
        current.grads.push(g);
        current.bytes += bytes;
        current.ready_ns = current.ready_ns.max(iter.gradients[g].ready_offset_ns);
    }
    if !current.grads.is_empty() {
        buffers.push(current);
    }
    buffers
}

/// The fusion layout for an iteration: each group is the gradient
/// indices of one fusion buffer, in fusion order (readiness order).
/// The first member identifies the buffer's flow in the task graph.
pub fn fusion_groups(iter: &IterationSpec) -> Vec<Vec<usize>> {
    fuse(iter).into_iter().map(|b| b.grads).collect()
}

/// Builds the Horovod-Ring task graph for one iteration on `n` nodes.
pub(crate) fn build(n: usize, iter: &IterationSpec) -> TaskGraph {
    let mut graph = TaskGraph::new();
    let mut e = Emit {
        graph: &mut graph,
        iter,
    };
    let compressed = iter.compression.is_some();
    let buffers = fuse(iter);
    // The previous collective's completion tasks, gating the next.
    let mut prev_done: Vec<TaskId> = Vec::new();
    for buf in &buffers {
        // The buffer is identified by its first gradient; chunk index
        // enumerates the ring chunks.
        let lead = buf.grads[0];
        e.graph
            .set_flow_members(lead as u32, buf.grads.iter().map(|&g| g as u32).collect());
        let chunks = chunk_sizes(buf.bytes, n);
        // Sources of the fused buffer on each node, one per ring
        // chunk: ready when the last member gradient is ready AND the
        // previous collective is done (collectives serialize).
        let mut sources: Vec<Vec<TaskId>> = Vec::with_capacity(n);
        for w in 0..n {
            let gate: Vec<TaskId> = prev_done
                .iter()
                .filter(|d| e.graph.task(**d).node == w)
                .copied()
                .collect();
            let mut per_part = Vec::with_capacity(n);
            for (c, &chunk_bytes) in chunks.iter().enumerate() {
                per_part.push(e.graph.add(crate::graph::TaskNode {
                    id: crate::graph::TaskId(u32::MAX),
                    node: w,
                    prim: Primitive::Source,
                    chunk: crate::graph::ChunkId {
                        grad: lead as u32,
                        part: c as u32,
                    },
                    bytes_raw: chunk_bytes,
                    bytes_wire: chunk_bytes,
                    peer: None,
                    send_src: SendSrc::Raw,
                    deps: gate.clone(),
                    earliest_ns: buf.ready_ns,
                    at_aggregator: false,
                }));
            }
            sources.push(per_part);
        }
        let mut done: Vec<TaskId> = Vec::new();

        // Per-chunk ring with (optionally) a global barrier per step.
        // State per chunk: the task whose completion lets the chunk
        // proceed, and which node holds it.
        let mut carry: Vec<TaskId> = Vec::with_capacity(n);
        let mut holder: Vec<usize> = Vec::with_capacity(n);
        for c in 0..n {
            let owner = c; // Chunk c is owned by node c.
            carry.push(sources[(owner + 1) % n][c]);
            holder.push((owner + 1) % n);
        }
        // Aggregation steps.
        for _step in 0..n - 1 {
            let mut step_tasks: Vec<TaskId> = Vec::new();
            for (c, &chunk_bytes) in chunks.iter().enumerate() {
                if chunk_bytes == 0 {
                    continue;
                }
                let u = holder[c];
                let v = (u + 1) % n;
                let wire = wire_for(iter, chunk_bytes);
                let ready = if compressed {
                    e.compute(
                        Primitive::Encode,
                        u,
                        lead,
                        c,
                        chunk_bytes,
                        wire,
                        vec![carry[c]],
                    )
                } else {
                    carry[c]
                };
                let src = if compressed {
                    SendSrc::Encoded
                } else {
                    SendSrc::Raw
                };
                let (_, recv) = e.send_recv(u, v, lead, c, chunk_bytes, wire, src, vec![ready]);
                let contribution = if compressed {
                    e.compute(Primitive::Decode, v, lead, c, chunk_bytes, wire, vec![recv])
                } else {
                    recv
                };
                let merge = e.compute(
                    Primitive::Merge,
                    v,
                    lead,
                    c,
                    chunk_bytes,
                    wire,
                    vec![contribution, sources[v][c]],
                );
                carry[c] = merge;
                holder[c] = v;
                step_tasks.push(merge);
            }
            if compressed {
                // Bulk-synchronous step: all chunks complete the step
                // before any proceeds.
                let barrier = e.barrier(0, lead, step_tasks.clone());
                for c in 0..carry.len() {
                    if chunks[c] > 0 {
                        // Chain the barrier into each chunk's carry.
                        carry[c] = e.barrier(holder[c], lead, vec![carry[c], barrier]);
                    }
                }
            }
        }
        // Dissemination steps (allgather).
        let mut outgoing: Vec<TaskId> = Vec::new();
        for (c, &chunk_bytes) in chunks.iter().enumerate() {
            if chunk_bytes == 0 {
                outgoing.push(carry[c]);
                continue;
            }
            let owner = holder[c];
            let out = if compressed {
                e.compute(
                    Primitive::Encode,
                    owner,
                    lead,
                    c,
                    chunk_bytes,
                    wire_for(iter, chunk_bytes),
                    vec![carry[c]],
                )
            } else {
                carry[c]
            };
            // The owner installs the reconstruction of what it
            // disseminates (the raw sum when uncompressed).
            let upd = e.compute(
                Primitive::Update,
                owner,
                lead,
                c,
                chunk_bytes,
                wire_for(iter, chunk_bytes),
                vec![out],
            );
            done.push(upd);
            outgoing.push(out);
        }
        for step in 0..n - 1 {
            let mut step_tasks: Vec<TaskId> = Vec::new();
            for (c, &chunk_bytes) in chunks.iter().enumerate() {
                if chunk_bytes == 0 {
                    continue;
                }
                let from = holder[c];
                let to = (from + 1) % n;
                let wire = wire_for(iter, chunk_bytes);
                // Only the first hop sends the owner's own buffer;
                // later hops forward the payload just received. Raw
                // on later hops would re-read the local accumulator,
                // racing with the concurrent Update that installs the
                // received value into it.
                let src = match (compressed, step) {
                    (false, 0) => SendSrc::Raw,
                    (true, 0) => SendSrc::Encoded,
                    (_, _) => SendSrc::Forward,
                };
                let (_, recv) =
                    e.send_recv(from, to, lead, c, chunk_bytes, wire, src, vec![outgoing[c]]);
                let installed = if compressed {
                    e.compute(
                        Primitive::Decode,
                        to,
                        lead,
                        c,
                        chunk_bytes,
                        wire,
                        vec![recv],
                    )
                } else {
                    recv
                };
                let upd = e.compute(
                    Primitive::Update,
                    to,
                    lead,
                    c,
                    chunk_bytes,
                    wire,
                    vec![installed],
                );
                done.push(upd);
                outgoing[c] = recv;
                holder[c] = to;
                step_tasks.push(upd);
            }
            if compressed {
                let barrier = e.barrier(0, lead, step_tasks.clone());
                for c in 0..outgoing.len() {
                    if chunks[c] > 0 {
                        outgoing[c] = e.barrier(holder[c], lead, vec![outgoing[c], barrier]);
                    }
                }
            }
        }
        prev_done = done;
    }
    graph
}

fn wire_for(iter: &IterationSpec, chunk_bytes: u64) -> u64 {
    match iter.compression {
        Some(spec) => spec.compressed_bytes(chunk_bytes),
        None => chunk_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{CompressionSpec, GradPlan, SyncGradient};
    use hipress_compress::Algorithm;

    fn spec(sizes: &[u64], compress: bool) -> IterationSpec {
        IterationSpec {
            gradients: sizes
                .iter()
                .enumerate()
                .map(|(i, &bytes)| SyncGradient {
                    name: format!("g{i}"),
                    bytes,
                    ready_offset_ns: (sizes.len() - i) as u64 * 1_000_000,
                    plan: GradPlan::raw(),
                })
                .collect(),
            compression: compress.then(|| {
                CompressionSpec::of(Algorithm::Dgc { rate: 0.01 }.build().unwrap().as_ref())
            }),
        }
    }

    #[test]
    fn fusion_respects_64mib_and_readiness_order() {
        let sizes = vec![40 << 20, 40 << 20, 10 << 20, 5 << 20];
        let iter = spec(&sizes, false);
        let buffers = fuse(&iter);
        // Readiness order is reverse index (backward pass): g3 first.
        // g3(5M)+g2(10M)+g1(40M) = 55M fits; g0 starts a new buffer.
        assert_eq!(buffers.len(), 2);
        assert_eq!(buffers[0].grads, vec![3, 2, 1]);
        assert_eq!(buffers[1].grads, vec![0]);
        assert!(buffers[0].bytes <= FUSION_BYTES);
    }

    #[test]
    fn oversized_gradient_gets_own_buffer() {
        let iter = spec(&[100 << 20], false);
        let buffers = fuse(&iter);
        assert_eq!(buffers.len(), 1);
        assert_eq!(buffers[0].bytes, 100 << 20);
    }

    #[test]
    fn raw_ring_valid_and_barrier_free() {
        let n = 4;
        let g = build(n, &spec(&[16 << 20, 8 << 20], false));
        g.topo_order().unwrap();
        assert_eq!(g.count(Primitive::Barrier), 0);
        assert_eq!(g.count(Primitive::Encode), 0);
    }

    #[test]
    fn compressed_ring_is_bulk_synchronous() {
        let n = 4;
        let g = build(n, &spec(&[16 << 20], true));
        g.topo_order().unwrap();
        assert!(
            g.count(Primitive::Barrier) > 0,
            "coupled compression must barrier"
        );
        assert!(g.count(Primitive::Encode) > 0);
    }

    #[test]
    fn collectives_serialize_across_buffers() {
        let n = 3;
        // Two buffers: the second buffer's sources must depend on the
        // first buffer's updates (same node).
        let g = build(n, &spec(&[60 << 20, 60 << 20], false));
        g.topo_order().unwrap();
        let sources: Vec<_> = g
            .tasks()
            .iter()
            .filter(|t| t.prim == Primitive::Source && !t.deps.is_empty())
            .collect();
        // One source per (node, ring chunk) of the second buffer.
        assert_eq!(sources.len(), n * n, "second buffer's sources are gated");
        for s in sources {
            assert!(s
                .deps
                .iter()
                .all(|d| g.task(*d).prim == Primitive::Update && g.task(*d).node == s.node));
        }
    }

    #[test]
    fn every_node_updates_every_chunk() {
        let n = 4;
        let g = build(n, &spec(&[16 << 20], false));
        assert_eq!(g.count(Primitive::Update), n * n); // n chunks × n nodes.
    }
}

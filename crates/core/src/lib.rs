//! CaSync — the compression-aware gradient synchronization
//! architecture of HiPress (§3 of the paper).
//!
//! CaSync decomposes gradient synchronization into five primitives —
//! `encode`, `decode`, `merge`, `send`, `recv` — arranged into a task
//! DAG per gradient by a *strategy* (CaSync-PS or CaSync-Ring), and
//! executed asynchronously by a task manager that tracks dependencies
//! and two task queues (computing and communication). On top of that
//! sit the paper's three optimizations:
//!
//! * **pipelining** (§3.1): tasks from different gradients/partitions
//!   interleave freely, hiding compression behind communication and
//!   vice versa;
//! * **compression-aware bulk synchronization** (§3.2): a global
//!   coordinator batches small transfers per link and small
//!   compression kernels per GPU;
//! * **selective compression and partitioning** (§3.3): a per-gradient
//!   plan decides whether to compress and into how many partitions to
//!   split (computed by the `hipress-planner` crate).
//!
//! The same machinery expresses the paper's baselines — BytePS-style
//! PS and Horovod-style Ring-allreduce, each with or without coupled
//! compression — so HiPress and the systems it is compared against
//! run on identical substrates.
//!
//! Two execution backends consume the task graphs:
//!
//! * [`exec::Executor`] — the timing simulator (discrete events, FIFO
//!   NIC/GPU resources) producing iteration latencies, utilization
//!   timelines, and busy statistics;
//! * [`interp::interpret`] — the semantic interpreter that runs the
//!   same graph over *real tensors with real compression*, used to
//!   verify protocol correctness (all nodes converge to identical,
//!   correctly aggregated gradients).

#![forbid(unsafe_code)]

pub mod cluster;
pub mod exec;
pub mod graph;
pub mod interp;
pub mod plan;
pub mod strategy;
pub mod topology;

pub use cluster::ClusterConfig;
pub use exec::{ExecConfig, ExecStats, Executor};
pub use graph::{ChunkId, Primitive, TaskGraph, TaskId, TaskNode};
pub use plan::{CompressionSpec, GradPlan, IterationSpec, SyncGradient};
pub use strategy::Strategy;
pub use topology::{Roles, Topology, TopologyKind};

//! Per-iteration synchronization specifications and per-gradient
//! plans.

use hipress_compress::Compressor;

/// How a compression algorithm looks to the synchronization layer:
/// its size transformation and its kernel cost shape. Extracted from a
/// [`Compressor`] so the timing simulation does not need tensor data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionSpec {
    /// Compressed size as a fraction of the original (metadata
    /// amortized; exact sizes are computed per chunk).
    pub ratio: f64,
    /// Fixed metadata bytes per compressed chunk.
    pub metadata_bytes: u64,
    /// Memory sweeps per encode.
    pub encode_passes: f64,
    /// Memory sweeps (over the compressed input, plus one dense
    /// write) per decode.
    pub decode_passes: f64,
}

impl CompressionSpec {
    /// Derives the spec from a compressor implementation by probing
    /// its size function at a large element count.
    pub fn of(compressor: &dyn Compressor) -> Self {
        let probe = 1 << 22; // 4M elements.
        let zero = compressor.compressed_size(0);
        let full = compressor.compressed_size(probe);
        let ratio = (full - zero) as f64 / (probe as f64 * 4.0);
        let profile = compressor.cost_profile();
        Self {
            ratio,
            metadata_bytes: zero,
            encode_passes: profile.encode_passes,
            decode_passes: profile.decode_passes,
        }
    }

    /// Compressed size of a `bytes`-byte chunk.
    pub fn compressed_bytes(&self, bytes: u64) -> u64 {
        self.metadata_bytes + (bytes as f64 * self.ratio).ceil() as u64
    }
}

/// The selective compression and partitioning decision for one
/// gradient (§3.3): the `<compress?, K>` tuples of Table 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GradPlan {
    /// Whether to compress this gradient at all.
    pub compress: bool,
    /// Number of partitions to split the gradient into before
    /// compression.
    pub partitions: usize,
}

impl GradPlan {
    /// Compress without partitioning.
    pub fn compress_whole() -> Self {
        Self {
            compress: true,
            partitions: 1,
        }
    }

    /// Send raw, unpartitioned.
    pub fn raw() -> Self {
        Self {
            compress: false,
            partitions: 1,
        }
    }
}

/// One gradient to synchronize in an iteration.
#[derive(Debug, Clone)]
pub struct SyncGradient {
    /// Gradient name (stable across iterations).
    pub name: String,
    /// Size in bytes (fp32).
    pub bytes: u64,
    /// When the gradient becomes ready on every worker, as an offset
    /// from the start of the iteration's backward pass (reverse layer
    /// order; from `ModelSpec::backward_ready_offsets`).
    pub ready_offset_ns: u64,
    /// The selective compression and partitioning decision.
    pub plan: GradPlan,
}

/// Everything the strategy needs to lay out one iteration's
/// synchronization.
#[derive(Debug, Clone)]
pub struct IterationSpec {
    /// Gradients in forward-layer order.
    pub gradients: Vec<SyncGradient>,
    /// The compression algorithm in effect (None = no compression
    /// anywhere, regardless of per-gradient plans).
    pub compression: Option<CompressionSpec>,
}

impl IterationSpec {
    /// Total raw bytes across gradients.
    pub fn total_bytes(&self) -> u64 {
        self.gradients.iter().map(|g| g.bytes).sum()
    }

    /// Whether gradient `g` is compressed under this spec.
    pub fn is_compressed(&self, g: usize) -> bool {
        self.compression.is_some() && self.gradients[g].plan.compress
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipress_compress::Algorithm;

    #[test]
    fn spec_of_onebit() {
        let c = Algorithm::OneBit.build().unwrap();
        let spec = CompressionSpec::of(c.as_ref());
        // 1 bit per 32-bit element.
        assert!(
            (spec.ratio - 1.0 / 32.0).abs() < 1e-4,
            "ratio {}",
            spec.ratio
        );
        assert_eq!(spec.metadata_bytes, 16); // header + two means
        assert_eq!(spec.encode_passes, 2.0);
        // Compressed size of a 4MiB chunk ~ 128KiB + metadata.
        let m = 4 * 1024 * 1024;
        let c = spec.compressed_bytes(m);
        assert!((c as i64 - (m / 32 + 16) as i64).abs() < 8);
    }

    #[test]
    fn spec_of_dgc() {
        let c = Algorithm::Dgc { rate: 0.001 }.build().unwrap();
        let spec = CompressionSpec::of(c.as_ref());
        // 0.1% kept at 8B per survivor = ratio 0.002 of fp32 bytes.
        assert!((spec.ratio - 0.002).abs() < 1e-4, "ratio {}", spec.ratio);
    }

    #[test]
    fn plans() {
        assert!(GradPlan::compress_whole().compress);
        assert!(!GradPlan::raw().compress);
        assert_eq!(GradPlan::raw().partitions, 1);
    }

    #[test]
    fn iteration_spec_queries() {
        let spec = IterationSpec {
            gradients: vec![
                SyncGradient {
                    name: "a".into(),
                    bytes: 100,
                    ready_offset_ns: 0,
                    plan: GradPlan::compress_whole(),
                },
                SyncGradient {
                    name: "b".into(),
                    bytes: 50,
                    ready_offset_ns: 10,
                    plan: GradPlan::raw(),
                },
            ],
            compression: Some(CompressionSpec {
                ratio: 0.1,
                metadata_bytes: 8,
                encode_passes: 2.0,
                decode_passes: 1.0,
            }),
        };
        assert_eq!(spec.total_bytes(), 150);
        assert!(spec.is_compressed(0));
        assert!(!spec.is_compressed(1));
        let none = IterationSpec {
            compression: None,
            ..spec
        };
        assert!(!none.is_compressed(0));
    }
}

//! The synchronization task graph.
//!
//! A strategy compiles one training iteration into a DAG whose nodes
//! are instances of the paper's five primitives (plus two bookkeeping
//! pseudo-primitives). The DAG is what both execution backends
//! consume; it is also where CaSync's "task manager with a dependency
//! graph" (§3.1) materializes.

use hipress_util::{Error, Result};
use std::collections::VecDeque;
use std::sync::OnceLock;

/// The signature of an installed plan verifier: analyzes a graph for
/// a cluster of the given size and errs on any defect.
pub type DebugVerifier = fn(&TaskGraph, usize) -> Result<()>;

static DEBUG_VERIFIER: OnceLock<DebugVerifier> = OnceLock::new();

/// Installs a plan verifier that debug builds run on every graph a
/// strategy builds and every graph the interpreter executes.
///
/// `hipress-lint` registers its verifier here (via
/// `hipress_lint::install`); the indirection keeps this crate free of
/// a dependency on its own analyzer. Idempotent: the first installed
/// verifier wins.
pub fn install_debug_verifier(v: DebugVerifier) {
    let _ = DEBUG_VERIFIER.set(v);
}

/// Runs the installed verifier, if any (no-op otherwise).
///
/// # Errors
///
/// Propagates the verifier's error on any defect.
pub fn run_debug_verifier(graph: &TaskGraph, cluster_nodes: usize) -> Result<()> {
    match DEBUG_VERIFIER.get() {
        Some(v) => v(graph, cluster_nodes),
        None => Ok(()),
    }
}

/// The synchronization primitives (§3.1), plus bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Primitive {
    /// Pseudo-primitive: the gradient chunk becomes available on its
    /// worker (backward pass produced it, local aggregation done).
    Source,
    /// Compress a chunk (computing primitive).
    Encode,
    /// Decompress a received chunk (computing primitive).
    Decode,
    /// Aggregate a received (decoded or raw) chunk into the local
    /// accumulator (computing primitive).
    Merge,
    /// Transmit a chunk to a peer (communication primitive).
    Send,
    /// Receive a chunk from a peer (communication primitive).
    Recv,
    /// Pseudo-primitive: install the final aggregate locally (model
    /// update hand-off).
    Update,
    /// Pseudo-primitive: a zero-cost synchronization point. Used by
    /// the coarse-grained baseline (conventional Ring-allreduce) whose
    /// collectives are "global, atomic, bulk synchronization
    /// operations" (§2.5) — every step waits for the whole previous
    /// step.
    Barrier,
}

impl Primitive {
    /// Whether this primitive executes on the compute queue
    /// (`Q_comp`) as opposed to the communication queue (`Q_commu`).
    pub fn is_compute(&self) -> bool {
        matches!(
            self,
            Primitive::Encode | Primitive::Decode | Primitive::Merge | Primitive::Update
        )
    }
}

/// What a `Send` task transmits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendSrc {
    /// The chunk this node last encoded (normal compressed path).
    Encoded,
    /// The chunk this node last received, forwarded verbatim
    /// (Ring-allreduce dissemination phase — §3.3's "all decode
    /// operators except the last one can overlap with gradient
    /// transmission" relies on this).
    Forward,
    /// The raw local accumulator (no-compression path).
    Raw,
}

/// Identifies a gradient partition: gradient index within the
/// iteration and partition index within the gradient.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChunkId {
    /// Gradient index (forward-layer order).
    pub grad: u32,
    /// Partition index within the gradient.
    pub part: u32,
}

/// Identifies a task within a [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u32);

/// One primitive instance.
#[derive(Debug, Clone)]
pub struct TaskNode {
    /// The task's id (index in the graph).
    pub id: TaskId,
    /// The cluster node executing the task.
    pub node: usize,
    /// Which primitive this is.
    pub prim: Primitive,
    /// The gradient chunk the task operates on.
    pub chunk: ChunkId,
    /// Uncompressed chunk size in bytes (kernel cost driver).
    pub bytes_raw: u64,
    /// On-the-wire size in bytes (compressed if the chunk is
    /// compressed; equals `bytes_raw` otherwise).
    pub bytes_wire: u64,
    /// Peer node: destination for `Send`, source for `Recv`.
    pub peer: Option<usize>,
    /// What a `Send` transmits (meaningful only for `Send`).
    pub send_src: SendSrc,
    /// Tasks that must complete first.
    pub deps: Vec<TaskId>,
    /// Absolute earliest start (ns from iteration start); used by
    /// `Source` tasks to model backward-pass readiness.
    pub earliest_ns: u64,
    /// Whether this compute task runs on the aggregator (server)
    /// side. BytePS-style servers execute aggregation on the host
    /// CPU; the executor moves these tasks to the CPU when the
    /// runtime config says so.
    pub at_aggregator: bool,
}

/// The per-iteration DAG of synchronization tasks.
#[derive(Debug, Clone, Default)]
pub struct TaskGraph {
    tasks: Vec<TaskNode>,
    /// For flows that carry more than one gradient (the Horovod
    /// baseline's fusion buffers): flow id → member gradient indices.
    /// Flows absent here represent exactly their own gradient.
    flow_members: Vec<(u32, Vec<u32>)>,
}

impl TaskGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a task and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a dependency refers to a task that does not exist
    /// yet (builders add tasks in dependency order).
    pub fn add(&mut self, mut task: TaskNode) -> TaskId {
        let id = TaskId(self.tasks.len() as u32);
        for d in &task.deps {
            assert!(
                (d.0 as usize) < self.tasks.len(),
                "dependency {d:?} of task {id:?} does not exist yet"
            );
        }
        task.id = id;
        self.tasks.push(task);
        id
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The task with the given id.
    pub fn task(&self, id: TaskId) -> &TaskNode {
        &self.tasks[id.0 as usize]
    }

    /// Mutable access to the task with the given id. Mainly for tests
    /// that inject defects into otherwise-valid graphs; mutation can
    /// break the no-forward-dependency invariant [`TaskGraph::add`]
    /// enforces, which the verifier then reports.
    pub fn task_mut(&mut self, id: TaskId) -> &mut TaskNode {
        &mut self.tasks[id.0 as usize]
    }

    /// All tasks in insertion order.
    pub fn tasks(&self) -> &[TaskNode] {
        &self.tasks
    }

    /// Counts tasks of a primitive kind (the paper's "up to 3N−2
    /// extra operators per gradient" analysis, §2.5).
    pub fn count(&self, prim: Primitive) -> usize {
        self.tasks.iter().filter(|t| t.prim == prim).count()
    }

    /// Declares that flow `flow` carries the gradients `members`
    /// (fusion buffers). Used by the executor to attribute the flow's
    /// completion to every member gradient.
    pub fn set_flow_members(&mut self, flow: u32, members: Vec<u32>) {
        self.flow_members.push((flow, members));
    }

    /// The gradients carried by `flow` (defaults to the flow itself).
    pub fn flow_members(&self, flow: u32) -> Vec<u32> {
        self.flow_members
            .iter()
            .find(|(f, _)| *f == flow)
            .map(|(_, m)| m.clone())
            .unwrap_or_else(|| vec![flow])
    }

    /// A topological order of the tasks.
    ///
    /// Because `add` only permits dependencies on earlier tasks, the
    /// insertion order *is* topological; this verifies it and returns
    /// Kahn order for interpreters that want explicit readiness.
    ///
    /// # Errors
    ///
    /// Returns an error if any dependency edge is inconsistent.
    pub fn topo_order(&self) -> Result<Vec<TaskId>> {
        let n = self.tasks.len();
        let mut indeg = vec![0usize; n];
        let mut out: Vec<Vec<u32>> = vec![Vec::new(); n];
        for t in &self.tasks {
            for d in &t.deps {
                if d.0 as usize >= n || *d == t.id {
                    return Err(Error::sim(format!("bad dependency {d:?} on {:?}", t.id)));
                }
                indeg[t.id.0 as usize] += 1;
                out[d.0 as usize].push(t.id.0);
            }
        }
        let mut q: VecDeque<u32> = (0..n as u32).filter(|&i| indeg[i as usize] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = q.pop_front() {
            order.push(TaskId(i));
            for &s in &out[i as usize] {
                indeg[s as usize] -= 1;
                if indeg[s as usize] == 0 {
                    q.push_back(s);
                }
            }
        }
        if order.len() != n {
            return Err(Error::sim("dependency cycle in task graph"));
        }
        Ok(order)
    }

    /// Sync completion tasks: the `Update` (or final `Merge` for the
    /// chunk owner) whose completion marks a gradient fully
    /// synchronized on a node. Used by the executor to compute
    /// per-gradient finish times.
    pub fn is_completion(&self, t: &TaskNode) -> bool {
        t.prim == Primitive::Update
    }
}

/// Convenience constructor for [`TaskNode`] with defaults.
pub fn task(node: usize, prim: Primitive, chunk: ChunkId) -> TaskNode {
    TaskNode {
        id: TaskId(u32::MAX),
        node,
        prim,
        chunk,
        bytes_raw: 0,
        bytes_wire: 0,
        peer: None,
        send_src: SendSrc::Raw,
        deps: Vec::new(),
        earliest_ns: 0,
        at_aggregator: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk() -> ChunkId {
        ChunkId { grad: 0, part: 0 }
    }

    #[test]
    fn add_assigns_sequential_ids() {
        let mut g = TaskGraph::new();
        let a = g.add(task(0, Primitive::Source, chunk()));
        let b = g.add(TaskNode {
            deps: vec![a],
            ..task(0, Primitive::Encode, chunk())
        });
        assert_eq!(a, TaskId(0));
        assert_eq!(b, TaskId(1));
        assert_eq!(g.len(), 2);
        assert_eq!(g.task(b).deps, vec![a]);
    }

    #[test]
    fn topo_order_is_valid() {
        let mut g = TaskGraph::new();
        let a = g.add(task(0, Primitive::Source, chunk()));
        let b = g.add(TaskNode {
            deps: vec![a],
            ..task(0, Primitive::Encode, chunk())
        });
        let c = g.add(TaskNode {
            deps: vec![a, b],
            ..task(0, Primitive::Merge, chunk())
        });
        let order = g.topo_order().unwrap();
        let pos = |id: TaskId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(a) < pos(b));
        assert!(pos(b) < pos(c));
    }

    #[test]
    fn task_mut_allows_defect_injection() {
        let mut g = TaskGraph::new();
        let a = g.add(task(0, Primitive::Source, chunk()));
        g.task_mut(a).node = 3;
        assert_eq!(g.task(a).node, 3);
    }

    #[test]
    fn uninstalled_verifier_is_a_no_op() {
        let g = TaskGraph::new();
        assert!(run_debug_verifier(&g, 1).is_ok());
    }

    #[test]
    fn compute_vs_communication_queues() {
        assert!(Primitive::Encode.is_compute());
        assert!(Primitive::Merge.is_compute());
        assert!(!Primitive::Send.is_compute());
        assert!(!Primitive::Recv.is_compute());
        assert!(!Primitive::Source.is_compute());
    }

    #[test]
    #[should_panic(expected = "does not exist yet")]
    fn forward_dependency_panics() {
        let mut g = TaskGraph::new();
        g.add(TaskNode {
            deps: vec![TaskId(7)],
            ..task(0, Primitive::Encode, chunk())
        });
    }
}

//! Semantic interpreter: runs a synchronization task graph over
//! *real tensors with real compression*.
//!
//! The timing executor only needs task costs; this interpreter
//! instead executes the dataflow the graph describes — encoding with
//! an actual [`Compressor`], moving real bytes between nodes, merging
//! real floats — and checks the protocol-level invariants:
//!
//! * with no compression, every node must end up with the exact
//!   element-wise sum of all workers' gradients;
//! * with compression, every node must end up with **identical**
//!   values (replica consistency — divergent replicas would break
//!   synchronous SGD), and those values must be the correct
//!   composition of the algorithm's lossy steps.
//!
//! This is how we verify that CaSync-PS, CaSync-Ring, and the
//! baselines implement gradient synchronization correctly, not just
//! quickly.
//!
//! The unit of interpretation is a **flow**: one independently
//! synchronized tensor, identified by the `grad` field of the graph's
//! chunk ids. For CaSync and BytePS a flow is a gradient; for the
//! Horovod baseline a flow is a fusion buffer (the concatenation of
//! its member gradients, see
//! [`crate::strategy::horovod_fusion_groups`]).

use crate::graph::{Primitive, SendSrc, TaskGraph};
use hipress_compress::Compressor;
use hipress_tensor::Tensor;
use hipress_util::{Error, Result};
use std::collections::HashMap;

/// A value on the wire: raw tensor bytes or a compressed stream.
#[derive(Debug, Clone, PartialEq)]
enum Payload {
    Raw(Vec<f32>),
    Compressed(Vec<u8>),
}

/// Per-(node, chunk) interpreter state.
#[derive(Debug, Default)]
struct Cell {
    /// Local accumulator (starts as the local flow chunk).
    acc: Vec<f32>,
    /// Final installed aggregate.
    updated: Option<Vec<f32>>,
}

/// The interpretation result for one flow.
#[derive(Debug, Clone)]
pub struct FlowOutcome {
    /// The flow id (the `grad` field of its chunks).
    pub flow: u32,
    /// The synchronized tensor each node ended up with (dense,
    /// reassembled from chunks).
    pub per_node: Vec<Vec<f32>>,
}

impl FlowOutcome {
    /// Whether all nodes hold bit-identical results (the consistency
    /// invariant of synchronous data parallel training).
    pub fn replicas_consistent(&self) -> bool {
        self.per_node.windows(2).all(|w| w[0] == w[1])
    }

    /// Maximum absolute difference between node 0's result and a
    /// reference tensor.
    pub fn max_abs_error(&self, reference: &[f32]) -> f32 {
        self.per_node[0]
            .iter()
            .zip(reference)
            .fold(0.0f32, |m, (&a, &b)| m.max((a - b).abs()))
    }
}

/// Builds the per-flow input map for strategies whose flows are
/// plain gradients (CaSync-PS, CaSync-Ring, BytePS):
/// `worker_grads[w][g]` becomes flow `g`'s data on node `w`.
pub fn gradient_flows(worker_grads: &[Vec<Tensor>]) -> HashMap<u32, Vec<Tensor>> {
    let mut flows = HashMap::new();
    if worker_grads.is_empty() {
        return flows;
    }
    for g in 0..worker_grads[0].len() {
        flows.insert(
            g as u32,
            worker_grads.iter().map(|w| w[g].clone()).collect(),
        );
    }
    flows
}

/// Builds the per-flow input map for the Horovod baseline: each
/// fusion group becomes one flow (identified by its lead gradient)
/// holding the concatenation of the members.
pub fn fused_flows(
    worker_grads: &[Vec<Tensor>],
    groups: &[Vec<usize>],
) -> HashMap<u32, Vec<Tensor>> {
    let mut flows = HashMap::new();
    for group in groups {
        let lead = group[0] as u32;
        let per_node: Vec<Tensor> = worker_grads
            .iter()
            .map(|w| {
                let parts: Vec<Tensor> = group.iter().map(|&g| w[g].clone()).collect();
                Tensor::concat(&parts)
            })
            .collect();
        flows.insert(lead, per_node);
    }
    flows
}

/// Executes `graph` with the given per-flow, per-node input tensors.
///
/// # Errors
///
/// Returns an error if the graph is semantically malformed (a decode
/// with nothing received, chunks that do not tile their flow, ...) or
/// if required flow data is missing.
pub fn interpret(
    graph: &TaskGraph,
    nodes: usize,
    flows: &HashMap<u32, Vec<Tensor>>,
    compressor: Option<&dyn Compressor>,
    seed: u64,
) -> Result<Vec<FlowOutcome>> {
    // Debug builds verify the plan before executing it (the installed
    // `hipress-lint` analyzer; a no-op when nothing is installed).
    #[cfg(debug_assertions)]
    crate::graph::run_debug_verifier(graph, nodes)?;
    // Chunk boundaries per flow, derived from Source tasks: chunk
    // `part` covers a contiguous range, in part order.
    let mut chunk_elems: HashMap<(u32, u32), usize> = HashMap::new();
    for t in graph.tasks() {
        if t.prim == Primitive::Source {
            chunk_elems.insert((t.chunk.grad, t.chunk.part), (t.bytes_raw / 4) as usize);
        }
    }
    let mut flow_ids: Vec<u32> = {
        let mut v: Vec<u32> = chunk_elems.keys().map(|&(f, _)| f).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let mut chunk_start: HashMap<(u32, u32), usize> = HashMap::new();
    for &f in &flow_ids {
        let mut parts: Vec<u32> = chunk_elems
            .keys()
            .filter(|(ff, _)| *ff == f)
            .map(|&(_, p)| p)
            .collect();
        parts.sort_unstable();
        let mut start = 0usize;
        for p in parts {
            chunk_start.insert((f, p), start);
            start += chunk_elems[&(f, p)];
        }
        let data = flows
            .get(&f)
            .ok_or_else(|| Error::config(format!("missing data for flow {f}")))?;
        if data.len() != nodes {
            return Err(Error::config(format!(
                "flow {f}: {} node tensors for {nodes} nodes",
                data.len()
            )));
        }
        if data[0].len() != start {
            return Err(Error::sim(format!(
                "flow {f}: chunks cover {start} elements but the flow has {}",
                data[0].len()
            )));
        }
    }

    // Dataflow values keyed by producing task: what each `Recv`
    // delivered, what each `Encode` and `Decode` produced. Keying by
    // task (rather than one slot per node) keeps concurrent transfers
    // to the same node from clobbering each other — the dependency
    // edges, not program order, define who reads what.
    let mut recv_payload: HashMap<u32, Payload> = HashMap::new();
    let mut enc_out: HashMap<u32, Vec<u8>> = HashMap::new();
    let mut dec_out: HashMap<u32, Vec<f32>> = HashMap::new();
    let mut send_payload: HashMap<u32, Payload> = HashMap::new();

    // Finds the transitive dependency of `id` matching `pred`,
    // looking through zero-cost barriers.
    let find_dep = |id: crate::graph::TaskId, pred: &dyn Fn(Primitive) -> bool| {
        let mut stack: Vec<crate::graph::TaskId> = graph.task(id).deps.clone();
        while let Some(d) = stack.pop() {
            let dt = graph.task(d);
            if pred(dt.prim) {
                return Some(d);
            }
            if dt.prim == Primitive::Barrier {
                stack.extend(dt.deps.iter().copied());
            }
        }
        None
    };

    let mut cells: HashMap<(usize, u32, u32), Cell> = HashMap::new();
    let order = graph.topo_order()?;
    for id in order {
        let t = graph.task(id);
        let key = (t.node, t.chunk.grad, t.chunk.part);
        match t.prim {
            Primitive::Source => {
                let start = chunk_start[&(t.chunk.grad, t.chunk.part)];
                let len = (t.bytes_raw / 4) as usize;
                let data = &flows[&t.chunk.grad][t.node];
                let cell = cells.entry(key).or_default();
                cell.acc = data.as_slice()[start..start + len].to_vec();
            }
            Primitive::Encode => {
                let c = compressor.ok_or_else(|| Error::sim("encode without compressor"))?;
                let cell = cells
                    .get(&key)
                    .ok_or_else(|| Error::sim("encode before source"))?;
                let task_seed = seed ^ (id.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                enc_out.insert(id.0, c.encode(&cell.acc, task_seed));
            }
            Primitive::Decode => {
                let c = compressor.ok_or_else(|| Error::sim("decode without compressor"))?;
                let recv = find_dep(id, &|p| p == Primitive::Recv)
                    .ok_or_else(|| Error::sim("decode without a recv dependency"))?;
                match recv_payload.get(&recv.0) {
                    Some(Payload::Compressed(bytes)) => {
                        dec_out.insert(id.0, c.decode(bytes)?);
                    }
                    Some(Payload::Raw(_)) => {
                        return Err(Error::sim("decode of a raw payload"));
                    }
                    None => return Err(Error::sim("decode before recv delivered")),
                }
            }
            Primitive::Merge => {
                // The contribution is the decode (or raw recv) this
                // merge depends on; the accumulator is the node's cell.
                let contribution: Vec<f32> =
                    if let Some(d) = find_dep(id, &|p| p == Primitive::Decode) {
                        dec_out
                            .get(&d.0)
                            .cloned()
                            .ok_or_else(|| Error::sim("merge before decode"))?
                    } else if let Some(r) = find_dep(id, &|p| p == Primitive::Recv) {
                        match recv_payload.get(&r.0) {
                            Some(Payload::Raw(v)) => v.clone(),
                            Some(Payload::Compressed(_)) => {
                                return Err(Error::sim("raw merge of compressed payload"));
                            }
                            None => return Err(Error::sim("merge before recv delivered")),
                        }
                    } else {
                        return Err(Error::sim("merge with nothing to merge"));
                    };
                let cell = cells
                    .get_mut(&key)
                    .ok_or_else(|| Error::sim("merge with no accumulator"))?;
                if contribution.len() != cell.acc.len() {
                    return Err(Error::sim("merge length mismatch"));
                }
                for (a, b) in cell.acc.iter_mut().zip(contribution) {
                    *a += b;
                }
            }
            Primitive::Send => {
                let payload = match t.send_src {
                    SendSrc::Raw => {
                        let cell = cells
                            .get(&key)
                            .ok_or_else(|| Error::sim("raw send with no state"))?;
                        Payload::Raw(cell.acc.clone())
                    }
                    SendSrc::Encoded => {
                        let e = find_dep(id, &|p| p == Primitive::Encode)
                            .ok_or_else(|| Error::sim("encoded send without encode"))?;
                        Payload::Compressed(
                            enc_out
                                .get(&e.0)
                                .cloned()
                                .ok_or_else(|| Error::sim("send before encode ran"))?,
                        )
                    }
                    SendSrc::Forward => {
                        let r = find_dep(id, &|p| p == Primitive::Recv)
                            .ok_or_else(|| Error::sim("forward without recv"))?;
                        recv_payload
                            .get(&r.0)
                            .cloned()
                            .ok_or_else(|| Error::sim("forward before recv delivered"))?
                    }
                };
                send_payload.insert(id.0, payload);
            }
            Primitive::Recv => {
                let send = find_dep(id, &|p| p == Primitive::Send)
                    .ok_or_else(|| Error::sim("recv without its send"))?;
                let payload = send_payload
                    .get(&send.0)
                    .cloned()
                    .ok_or_else(|| Error::sim("recv before send"))?;
                recv_payload.insert(id.0, payload);
            }
            Primitive::Barrier => {}
            Primitive::Update => {
                let value: Vec<f32> = if let Some(d) = find_dep(id, &|p| p == Primitive::Decode) {
                    dec_out
                        .get(&d.0)
                        .cloned()
                        .ok_or_else(|| Error::sim("update before decode"))?
                } else if let Some(r) = find_dep(id, &|p| p == Primitive::Recv) {
                    match recv_payload.get(&r.0) {
                        Some(Payload::Raw(v)) => v.clone(),
                        Some(Payload::Compressed(_)) => {
                            return Err(Error::sim("raw update of compressed payload"));
                        }
                        None => return Err(Error::sim("update before recv delivered")),
                    }
                } else if let Some(e) = find_dep(id, &|p| p == Primitive::Encode) {
                    // The aggregate's owner installs the reconstruction
                    // of the bytes it disseminated, staying consistent
                    // with every decoding replica.
                    let c = compressor.ok_or_else(|| Error::sim("encode without compressor"))?;
                    let bytes = enc_out
                        .get(&e.0)
                        .ok_or_else(|| Error::sim("update before encode ran"))?;
                    c.decode(bytes)?
                } else {
                    // The aggregator/owner installs its own
                    // accumulator (no-compression path).
                    cells
                        .get(&key)
                        .ok_or_else(|| Error::sim("update with no state"))?
                        .acc
                        .clone()
                };
                let cell = cells
                    .get_mut(&key)
                    .ok_or_else(|| Error::sim("update with no state"))?;
                if value.len() != cell.acc.len() {
                    return Err(Error::sim("update length mismatch"));
                }
                cell.acc = value.clone();
                cell.updated = Some(value);
            }
        }
    }

    // Reassemble per-flow, per-node dense results.
    flow_ids.sort_unstable();
    let mut outcomes = Vec::with_capacity(flow_ids.len());
    for &f in &flow_ids {
        let elems = flows[&f][0].len();
        let mut per_node = Vec::with_capacity(nodes);
        for node in 0..nodes {
            let mut dense = vec![0.0f32; elems];
            for (&(ff, p), &start) in &chunk_start {
                if ff != f {
                    continue;
                }
                let len = chunk_elems[&(ff, p)];
                let cell = cells.get(&(node, ff, p)).ok_or_else(|| {
                    Error::sim(format!("node {node} never touched chunk ({ff},{p})"))
                })?;
                let value = cell.updated.as_ref().ok_or_else(|| {
                    Error::sim(format!("node {node} never updated chunk ({ff},{p})"))
                })?;
                dense[start..start + len].copy_from_slice(value);
            }
            per_node.push(dense);
        }
        outcomes.push(FlowOutcome { flow: f, per_node });
    }
    Ok(outcomes)
}

/// Reference result: the element-wise sum of a flow's tensors across
/// nodes.
pub fn reference_sum(flow: &[Tensor]) -> Vec<f32> {
    let elems = flow[0].len();
    let mut sum = vec![0.0f32; elems];
    for t in flow {
        for (s, &x) in sum.iter_mut().zip(t.as_slice()) {
            *s += x;
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::plan::{CompressionSpec, GradPlan, IterationSpec, SyncGradient};
    use crate::strategy::{horovod_fusion_groups, Strategy};
    use hipress_compress::Algorithm;
    use hipress_tensor::synth::{generate, GradientShape};

    fn worker_grads(nodes: usize, sizes: &[usize]) -> Vec<Vec<Tensor>> {
        (0..nodes)
            .map(|w| {
                sizes
                    .iter()
                    .enumerate()
                    .map(|(g, &n)| {
                        generate(
                            n,
                            GradientShape::Gaussian { std_dev: 1.0 },
                            (w * 1000 + g) as u64,
                        )
                    })
                    .collect()
            })
            .collect()
    }

    fn iter_spec(sizes: &[usize], alg: Option<Algorithm>, k: usize) -> IterationSpec {
        IterationSpec {
            gradients: sizes
                .iter()
                .enumerate()
                .map(|(i, &n)| SyncGradient {
                    name: format!("g{i}"),
                    bytes: (n * 4) as u64,
                    ready_offset_ns: 0,
                    plan: GradPlan {
                        compress: true,
                        partitions: k,
                    },
                })
                .collect(),
            compression: alg.map(|a| CompressionSpec::of(a.build().unwrap().as_ref())),
        }
    }

    fn flows_for(
        strat: Strategy,
        iter: &IterationSpec,
        grads: &[Vec<Tensor>],
    ) -> HashMap<u32, Vec<Tensor>> {
        match strat {
            Strategy::HorovodRing => fused_flows(grads, &horovod_fusion_groups(iter)),
            _ => gradient_flows(grads),
        }
    }

    /// Without compression, every strategy computes the exact sum on
    /// every node.
    #[test]
    fn uncompressed_sync_is_exact_everywhere() {
        let nodes = 4;
        let sizes = [100usize, 257, 31];
        let grads = worker_grads(nodes, &sizes);
        for strat in Strategy::all() {
            let iter = iter_spec(&sizes, None, 3);
            let cluster = ClusterConfig::ec2(nodes);
            let graph = strat.build(&cluster, &iter).unwrap();
            let flows = flows_for(strat, &iter, &grads);
            let out = interpret(&graph, nodes, &flows, None, 7).unwrap();
            assert!(!out.is_empty());
            for o in &out {
                assert!(o.replicas_consistent(), "{strat:?} flow {}", o.flow);
                let reference = reference_sum(&flows[&o.flow]);
                let err = o.max_abs_error(&reference);
                assert!(
                    err < 1e-4,
                    "{strat:?} flow {}: max error {err} vs exact sum",
                    o.flow
                );
            }
        }
    }

    /// With compression, all replicas agree bit-for-bit on every
    /// strategy — the consistency invariant lossy compression must
    /// not break.
    #[test]
    fn compressed_sync_replicas_agree() {
        let nodes = 3;
        let sizes = [512usize, 64];
        let grads = worker_grads(nodes, &sizes);
        for strat in Strategy::all() {
            for alg in [
                Algorithm::OneBit,
                Algorithm::Tbq { tau: 0.05 },
                Algorithm::TernGrad { bitwidth: 2 },
                Algorithm::Dgc { rate: 0.1 },
            ] {
                let iter = iter_spec(&sizes, Some(alg), 2);
                let cluster = ClusterConfig::ec2(nodes);
                let graph = strat.build(&cluster, &iter).unwrap();
                let c = alg.build().unwrap();
                let flows = flows_for(strat, &iter, &grads);
                let out = interpret(&graph, nodes, &flows, Some(c.as_ref()), 11).unwrap();
                for o in &out {
                    assert!(
                        o.replicas_consistent(),
                        "{strat:?} {} replicas diverged on flow {}",
                        c.name(),
                        o.flow
                    );
                }
            }
        }
    }

    /// Compressed PS with onebit: the result is close to the true sum
    /// in aggregate statistics (onebit preserves subset means).
    #[test]
    fn onebit_ps_preserves_scale() {
        let nodes = 4;
        let sizes = [4096usize];
        let grads = worker_grads(nodes, &sizes);
        let alg = Algorithm::OneBit;
        let iter = iter_spec(&sizes, Some(alg), 1);
        let cluster = ClusterConfig::ec2(nodes);
        let graph = Strategy::CaSyncPs.build(&cluster, &iter).unwrap();
        let c = alg.build().unwrap();
        let flows = gradient_flows(&grads);
        let out = interpret(&graph, nodes, &flows, Some(c.as_ref()), 3).unwrap();
        let reference = reference_sum(&flows[&0]);
        let ref_norm: f64 = reference
            .iter()
            .map(|&x| (x as f64).powi(2))
            .sum::<f64>()
            .sqrt();
        let got_norm: f64 = out[0].per_node[0]
            .iter()
            .map(|&x| (x as f64).powi(2))
            .sum::<f64>()
            .sqrt();
        // Same order of magnitude (lossy, but not degenerate).
        assert!(
            got_norm > ref_norm * 0.3 && got_norm < ref_norm * 3.0,
            "norm {got_norm} vs reference {ref_norm}"
        );
    }

    /// The selective plan's `compress: false` routes a gradient raw
    /// even when compression is configured.
    #[test]
    fn selective_compression_mixes_paths() {
        let nodes = 3;
        let sizes = [128usize, 1024];
        let grads = worker_grads(nodes, &sizes);
        let mut iter = iter_spec(&sizes, Some(Algorithm::OneBit), 1);
        iter.gradients[0].plan.compress = false; // Small gradient raw.
        let cluster = ClusterConfig::ec2(nodes);
        let graph = Strategy::CaSyncPs.build(&cluster, &iter).unwrap();
        let c = Algorithm::OneBit.build().unwrap();
        let flows = gradient_flows(&grads);
        let out = interpret(&graph, nodes, &flows, Some(c.as_ref()), 5).unwrap();
        // The raw gradient must be exact.
        let reference = reference_sum(&flows[&0]);
        assert!(out[0].max_abs_error(&reference) < 1e-4);
        assert!(out[0].replicas_consistent());
        assert!(out[1].replicas_consistent());
    }

    /// TernGrad's stochastic rounding must not break consistency: all
    /// replicas decode the same bytes even though encoding is
    /// randomized.
    #[test]
    fn stochastic_quantization_stays_consistent() {
        let nodes = 5;
        let sizes = [777usize];
        let grads = worker_grads(nodes, &sizes);
        let alg = Algorithm::TernGrad { bitwidth: 2 };
        let iter = iter_spec(&sizes, Some(alg), 3);
        let cluster = ClusterConfig::ec2(nodes);
        for strat in [Strategy::CaSyncPs, Strategy::CaSyncRing] {
            let graph = strat.build(&cluster, &iter).unwrap();
            let c = alg.build().unwrap();
            let flows = gradient_flows(&grads);
            let out = interpret(&graph, nodes, &flows, Some(c.as_ref()), 999).unwrap();
            assert!(out[0].replicas_consistent(), "{strat:?}");
        }
    }
}

//! Abstract syntax tree for the CompLL DSL.

/// DSL types (§4.3: "uint1, uint2, uint4, uint8, int32, float, and
/// array").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// Unsigned integer of 1, 2, 4, or 8 bits (packed in arrays).
    UInt(u8),
    /// 32-bit signed integer.
    Int32,
    /// 32-bit float.
    Float,
    /// Array of (packed) elements; appears as `T*` in signatures.
    Arr(ScalarTy),
    /// Opaque byte stream (`uint8*` in the encode/decode signatures).
    Bytes,
    /// An algorithm parameter struct (`EncodeParams params`).
    ParamStruct,
    /// No value (function without return).
    Void,
}

/// Scalar element types usable inside arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarTy {
    /// Packed unsigned with the given bit width.
    UInt(u8),
    /// 32-bit signed integer.
    Int32,
    /// 32-bit float.
    Float,
}

impl ScalarTy {
    /// Bits per element when packed.
    pub fn bits(&self) -> u32 {
        match self {
            ScalarTy::UInt(b) => *b as u32,
            ScalarTy::Int32 => 32,
            ScalarTy::Float => 32,
        }
    }
}

impl Ty {
    /// Parses a type name (`uint2`, `int32`, `float`, `void`).
    pub fn from_name(name: &str) -> Option<Ty> {
        match name {
            "uint1" => Some(Ty::UInt(1)),
            "uint2" => Some(Ty::UInt(2)),
            "uint4" => Some(Ty::UInt(4)),
            "uint8" => Some(Ty::UInt(8)),
            "int32" => Some(Ty::Int32),
            "float" => Some(Ty::Float),
            "void" => Some(Ty::Void),
            _ => None,
        }
    }

    /// The array type with this scalar as element.
    pub fn as_array(&self) -> Option<Ty> {
        match self {
            Ty::UInt(8) => Some(Ty::Bytes), // `uint8*` is the stream type.
            Ty::UInt(b) => Some(Ty::Arr(ScalarTy::UInt(*b))),
            Ty::Int32 => Some(Ty::Arr(ScalarTy::Int32)),
            Ty::Float => Some(Ty::Arr(ScalarTy::Float)),
            _ => None,
        }
    }

    /// Whether the type is numeric (usable in arithmetic).
    pub fn is_numeric(&self) -> bool {
        matches!(self, Ty::UInt(_) | Ty::Int32 | Ty::Float)
    }
}

/// A `param` block: named algorithm parameters (Figure 5 line 1-3).
#[derive(Debug, Clone, PartialEq)]
pub struct ParamBlock {
    /// Struct-like name (`EncodeParams`).
    pub name: String,
    /// Field declarations.
    pub fields: Vec<(String, Ty)>,
}

/// A function definition (user-defined function or encode/decode).
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: Ty,
    /// Parameters: name, type.
    pub params: Vec<(String, Ty)>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source line of the definition.
    pub line: u32,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `ty name = expr;` or `ty name;`
    Decl(String, Ty, Option<Expr>),
    /// `lvalue = expr;` (lvalue is an identifier).
    Assign(String, Expr),
    /// `return expr;` / `return;`
    Return(Option<Expr>),
    /// `if (cond) { .. } else { .. }`
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// Bare expression statement (a call for effects).
    Expr(Expr),
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Variable reference.
    Var(String),
    /// Member access (`params.bitwidth`, `gradient.size`).
    Member(Box<Expr>, String),
    /// Indexing (`sorted[k - 1]`).
    Index(Box<Expr>, Box<Expr>),
    /// Function or operator call; `random<float>(a,b)` carries the
    /// type argument.
    Call {
        /// Callee name.
        name: String,
        /// Optional `<type>` argument (only `random` uses it).
        ty_arg: Option<Ty>,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Unary negation / logical not.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-x`
    Neg,
    /// `!x`
    Not,
}

/// A whole DSL program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// `param` blocks.
    pub params: Vec<ParamBlock>,
    /// File-scope variable declarations (shared between udfs and the
    /// entry points, like Figure 5's `float min, max, gap;`).
    pub globals: Vec<(String, Ty)>,
    /// All functions, including `encode` / `decode`.
    pub functions: Vec<Function>,
}

impl Program {
    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// The user-defined functions (everything except encode/decode).
    pub fn udfs(&self) -> impl Iterator<Item = &Function> {
        self.functions
            .iter()
            .filter(|f| f.name != "encode" && f.name != "decode")
    }
}

//! Lines-of-code accounting for Table 5.
//!
//! Table 5 splits an algorithm's implementation cost into "logic"
//! (the encode/decode bodies plus parameter and global declarations),
//! "udf" (user-defined helper functions), the number of distinct
//! common operators used, and the integration cost (always 0 with
//! CompLL: the generated code plugs into CaSync automatically).

use crate::ast::Program;
use crate::ops::OPERATORS;
use std::collections::BTreeSet;

/// The Table 5 row for one algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocReport {
    /// Non-empty, non-comment source lines of algorithm logic
    /// (encode/decode, param blocks, globals).
    pub logic: usize,
    /// Non-empty, non-comment source lines of user-defined functions.
    pub udf: usize,
    /// Distinct common operators invoked.
    pub operators: BTreeSet<String>,
    /// Manual integration lines (always 0: CompLL integrates
    /// automatically).
    pub integration: usize,
}

impl LocReport {
    /// Total DSL lines (logic + udf).
    pub fn total(&self) -> usize {
        self.logic + self.udf
    }
}

/// Computes the Table 5 accounting for a DSL source and its parsed
/// program.
///
/// Lines are classified by tracking which top-level item they belong
/// to: `param` blocks and globals count as logic, `encode`/`decode`
/// count as logic, everything else counts as udf.
pub fn count(source: &str, prog: &Program) -> LocReport {
    let mut logic = 0usize;
    let mut udf = 0usize;

    // Build the set of line ranges belonging to udf functions by
    // scanning for their definitions and matching braces.
    #[derive(Clone, Copy, PartialEq)]
    enum Zone {
        Logic,
        Udf,
    }
    let lines: Vec<&str> = source.lines().collect();
    let mut zone_of_line = vec![Zone::Logic; lines.len()];
    // Identify udf body line spans from the parsed function start
    // lines (1-based) + brace matching.
    for f in prog.udfs() {
        let start = (f.line as usize).saturating_sub(1);
        let mut depth = 0i32;
        let mut seen_open = false;
        for (i, line) in lines.iter().enumerate().skip(start) {
            for c in line.chars() {
                if c == '{' {
                    depth += 1;
                    seen_open = true;
                } else if c == '}' {
                    depth -= 1;
                }
            }
            zone_of_line[i] = Zone::Udf;
            if seen_open && depth <= 0 {
                break;
            }
        }
    }

    for (i, raw) in lines.iter().enumerate() {
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with("//") {
            continue;
        }
        match zone_of_line[i] {
            Zone::Logic => logic += 1,
            Zone::Udf => udf += 1,
        }
    }

    let mut operators = BTreeSet::new();
    for f in &prog.functions {
        collect_ops(&f.body, &mut operators);
    }

    LocReport {
        logic,
        udf,
        operators,
        integration: 0,
    }
}

fn collect_ops(stmts: &[crate::ast::Stmt], out: &mut BTreeSet<String>) {
    use crate::ast::{Expr, Stmt};
    fn walk_expr(e: &Expr, out: &mut BTreeSet<String>) {
        match e {
            Expr::Call { name, args, .. } => {
                if OPERATORS.contains(&name.as_str()) {
                    out.insert(name.clone());
                }
                for a in args {
                    walk_expr(a, out);
                }
            }
            Expr::Member(b, _) => walk_expr(b, out),
            Expr::Index(b, i) => {
                walk_expr(b, out);
                walk_expr(i, out);
            }
            Expr::Unary(_, i) => walk_expr(i, out),
            Expr::Bin(_, l, r) => {
                walk_expr(l, out);
                walk_expr(r, out);
            }
            _ => {}
        }
    }
    for s in stmts {
        match s {
            Stmt::Decl(_, _, Some(e)) | Stmt::Assign(_, e) | Stmt::Expr(e) => walk_expr(e, out),
            Stmt::Return(Some(e)) => walk_expr(e, out),
            Stmt::If(c, t, e) => {
                walk_expr(c, out);
                collect_ops(t, out);
                collect_ops(e, out);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    #[test]
    fn classifies_logic_vs_udf() {
        let src = "\
param P { float rate; }
float t;
uint1 keep(float x) {
    if (abs(x) >= t) { return 1; }
    return 0;
}
void encode(float* gradient, uint8* compressed, P params) {
    t = params.rate;
    int32* I = filter_idx(gradient, keep);
    float* V = gather(gradient, I);
    compressed = concat(I.size, I, V);
}
";
        let prog = compile(src).unwrap();
        let report = count(src, &prog);
        // udf = the 4 lines of `keep`.
        assert_eq!(report.udf, 4, "{report:?}");
        // logic = param block + global + the 6 encode lines.
        assert_eq!(report.logic, 8, "{report:?}");
        assert_eq!(report.integration, 0);
        let ops: Vec<&str> = report.operators.iter().map(String::as_str).collect();
        assert_eq!(ops, vec!["concat", "filter_idx", "gather"]);
        assert_eq!(report.total(), 12);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let src = "\
// A comment.
float t;

void encode(float* gradient, uint8* compressed) {
    // inner comment
    compressed = concat(t);
}
";
        let prog = compile(src).unwrap();
        let report = count(src, &prog);
        assert_eq!(report.logic, 4);
        assert_eq!(report.udf, 0);
    }
}

//! The five state-of-the-art algorithms written in the CompLL DSL
//! (§4.4, Table 5), each validated against the handwritten
//! `hipress-compress` implementation by the integration tests.
//!
//! TernGrad is generated per bitwidth (the DSL's packed-array element
//! types are static, so CompLL instantiates the program for the
//! configured precision — the paper's Figure 5 likewise fixes
//! "bitwidth = 2 for clarity").

use crate::compiled::{param_values, CompiledAlgorithm};
use crate::ops::Value;
use hipress_util::{Error, Result};

/// onebit (Seide et al.): sign bit per element, subset-mean
/// reconstruction levels.
pub const ONEBIT_DSL: &str = r#"
float neg_mean; float pos_mean;
uint1 isPos(float x) { if (x > 0) { return 1; } return 0; }
uint1 isNeg(float x) { if (x > 0) { return 0; } return 1; }
uint1 signOf(float elem) {
    if (elem > 0) { return 1; }
    return 0;
}
float signToFloat(uint1 q) {
    if (q == 1) { return pos_mean; }
    return neg_mean;
}
void encode(float* gradient, uint8* compressed) {
    float* p = filter(gradient, isPos);
    float* n = filter(gradient, isNeg);
    pos_mean = 0.0; neg_mean = 0.0;
    if (p.size > 0) { pos_mean = reduce(p, sum) / p.size; }
    if (n.size > 0) { neg_mean = reduce(n, sum) / n.size; }
    uint1* Q = map(gradient, signOf);
    compressed = concat(neg_mean, pos_mean, Q);
}
void decode(uint8* compressed, float* gradient) {
    neg_mean = extract(compressed);
    pos_mean = extract(compressed);
    uint1* Q = extract(compressed, gradient.size);
    gradient = map(Q, signToFloat);
}
"#;

/// TBQ (Strom): threshold binary quantization, ±τ.
pub const TBQ_DSL: &str = r#"
param TbqParams { float tau; }
float tau;
uint2 quantize(float elem) {
    if (elem >= tau) { return 1; }
    if (elem <= -tau) { return 2; }
    return 0;
}
float dequantize(uint2 q) {
    if (q == 1) { return tau; }
    if (q == 2) { return -tau; }
    return 0.0;
}
void encode(float* gradient, uint8* compressed, TbqParams params) {
    tau = params.tau;
    uint2* Q = map(gradient, quantize);
    compressed = concat(tau, Q);
}
void decode(uint8* compressed, float* gradient, TbqParams params) {
    tau = extract(compressed);
    uint2* Q = extract(compressed, gradient.size);
    gradient = map(Q, dequantize);
}
"#;

/// TernGrad (Wen et al.), generalized linear stochastic quantization —
/// the Figure 5 listing plus its decoder. `{U}` is instantiated with
/// the packed element type for the configured bitwidth.
pub const TERNGRAD_DSL_TEMPLATE: &str = r#"
param TernParams { uint8 bitwidth; }
float min, max, gap;
{U} floatToUint(float elem) {
    float r = (elem - min) / gap;
    return floor(r + random<float>(0, 1));
}
float uintToFloat({U} q) {
    return min + q * gap;
}
void encode(float* gradient, uint8* compressed, TernParams params) {
    min = reduce(gradient, smaller);
    max = reduce(gradient, greater);
    gap = (max - min) / ((1 << params.bitwidth) - 1);
    uint8 tail = gradient.size % (1 << params.bitwidth);
    {U}* Q = map(gradient, floatToUint);
    compressed = concat(params.bitwidth, tail, min, max, Q);
}
void decode(uint8* compressed, float* gradient, TernParams params) {
    uint8 bitwidth = extract(compressed);
    uint8 tail = extract(compressed);
    min = extract(compressed);
    max = extract(compressed);
    gap = (max - min) / ((1 << params.bitwidth) - 1);
    {U}* Q = extract(compressed, gradient.size);
    gradient = map(Q, uintToFloat);
}
"#;

/// DGC (Lin et al.): top-k sparsification by sorted-magnitude
/// threshold.
pub const DGC_DSL: &str = r#"
param DgcParams { float rate; }
float threshold;
float absf(float x) { return abs(x); }
uint1 keep(float x) {
    if (abs(x) >= threshold) { return 1; }
    return 0;
}
void encode(float* gradient, uint8* compressed, DgcParams params) {
    if (gradient.size == 0) {
        compressed = concat(0);
        return;
    }
    int32 k = ceil(gradient.size * params.rate);
    if (k < 1) { k = 1; }
    if (k > gradient.size) { k = gradient.size; }
    float* mags = map(gradient, absf);
    float* sorted = sort(mags, greater);
    threshold = sorted[k - 1];
    int32* I = filter_idx(gradient, keep);
    float* V = gather(gradient, I);
    compressed = concat(I.size, I, V);
}
void decode(uint8* compressed, float* gradient, DgcParams params) {
    int32 count = extract(compressed);
    int32* I = extract(compressed, count);
    float* V = extract(compressed, count);
    gradient = scatter(I, V, gradient.size);
}
"#;

/// GradDrop (Aji & Heafield): sampled-threshold magnitude dropping.
pub const GRADDROP_DSL: &str = r#"
param DropParams { float rate; }
float threshold;
float absf(float x) { return abs(x); }
uint1 keep(float x) {
    if (abs(x) >= threshold) { return 1; }
    return 0;
}
void encode(float* gradient, uint8* compressed, DropParams params) {
    if (gradient.size == 0) {
        compressed = concat(0);
        return;
    }
    float* mags = map(gradient, absf);
    float* s = sample(mags, max(256, gradient.size / 100));
    float* sorted = sort(s, greater);
    int32 keepn = ceil(sorted.size * params.rate);
    if (keepn < 1) { keepn = 1; }
    if (keepn > sorted.size) { keepn = sorted.size; }
    threshold = sorted[keepn - 1];
    int32* I = filter_idx(gradient, keep);
    float* V = gather(gradient, I);
    compressed = concat(I.size, I, V);
}
void decode(uint8* compressed, float* gradient, DropParams params) {
    int32 count = extract(compressed);
    int32* I = extract(compressed, count);
    float* V = extract(compressed, count);
    gradient = scatter(I, V, gradient.size);
}
"#;

/// AdaComp-style adaptive residual compression (Chen et al. 2017) —
/// one of the two extra algorithms §4.4 uses to demonstrate CompLL's
/// expressiveness ("AdaComp needs map, reduce, filter, concat and
/// extract common operators"). Elements are kept when their magnitude
/// reaches an adaptive per-gradient threshold derived from the
/// maximum magnitude.
pub const ADACOMP_DSL: &str = r#"
param AdaParams { float fraction; }
float threshold;
float absf(float x) { return abs(x); }
float maxAbs(float a, float b) { return max(abs(a), abs(b)); }
uint1 keep(float x) {
    if (abs(x) >= threshold) { return 1; }
    return 0;
}
void encode(float* gradient, uint8* compressed, AdaParams params) {
    if (gradient.size == 0) {
        compressed = concat(0);
        return;
    }
    float peak = reduce(gradient, maxAbs);
    threshold = peak * params.fraction;
    int32* I = filter_idx(gradient, keep);
    float* V = gather(gradient, I);
    compressed = concat(I.size, I, V);
}
void decode(uint8* compressed, float* gradient, AdaParams params) {
    int32 count = extract(compressed);
    int32* I = extract(compressed, count);
    float* V = extract(compressed, count);
    gradient = scatter(I, V, gradient.size);
}
"#;

/// Builds the AdaComp-style algorithm keeping elements above
/// `fraction` of the peak magnitude.
pub fn adacomp(fraction: f64) -> Result<CompiledAlgorithm> {
    CompiledAlgorithm::new(
        "compll-adacomp",
        ADACOMP_DSL,
        param_values(&[("fraction", Value::F(fraction))]),
    )
}

/// Builds the CompLL onebit algorithm.
pub fn onebit() -> Result<CompiledAlgorithm> {
    CompiledAlgorithm::new("compll-onebit", ONEBIT_DSL, param_values(&[]))
}

/// Builds the CompLL TBQ algorithm with threshold `tau`.
pub fn tbq(tau: f32) -> Result<CompiledAlgorithm> {
    CompiledAlgorithm::new(
        "compll-tbq",
        TBQ_DSL,
        param_values(&[("tau", Value::F(tau as f64))]),
    )
}

/// Builds the CompLL TernGrad algorithm at the given bitwidth
/// (1, 2, 4, or 8).
pub fn terngrad(bitwidth: u8) -> Result<CompiledAlgorithm> {
    let uty = match bitwidth {
        1 => "uint1",
        2 => "uint2",
        4 => "uint4",
        8 => "uint8",
        other => {
            return Err(Error::dsl(format!(
                "terngrad bitwidth {other} unsupported (1/2/4/8)"
            )));
        }
    };
    let src = TERNGRAD_DSL_TEMPLATE.replace("{U}", uty);
    CompiledAlgorithm::new(
        "compll-terngrad",
        &src,
        param_values(&[("bitwidth", Value::U(bitwidth as u64, 8))]),
    )
}

/// Builds the CompLL DGC algorithm keeping `rate` of the elements.
pub fn dgc(rate: f64) -> Result<CompiledAlgorithm> {
    CompiledAlgorithm::new(
        "compll-dgc",
        DGC_DSL,
        param_values(&[("rate", Value::F(rate))]),
    )
}

/// Builds the CompLL GradDrop algorithm keeping about `rate` of the
/// elements.
pub fn graddrop(rate: f64) -> Result<CompiledAlgorithm> {
    CompiledAlgorithm::new(
        "compll-graddrop",
        GRADDROP_DSL,
        param_values(&[("rate", Value::F(rate))]),
    )
}

/// All five algorithms at the paper's default parameters (§6.1).
pub fn paper_suite() -> Result<Vec<CompiledAlgorithm>> {
    Ok(vec![
        onebit()?,
        tbq(0.05)?,
        terngrad(2)?,
        dgc(0.001)?,
        graddrop(0.01)?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipress_compress::Compressor;

    #[test]
    fn all_five_compile_and_roundtrip() {
        let grad: Vec<f32> = (0..2000)
            .map(|i| ((i * 37 % 200) as f32 - 100.0) / 50.0)
            .collect();
        for alg in paper_suite().unwrap() {
            let enc = alg.encode(&grad, 3);
            let dec = alg.decode(&enc).unwrap();
            assert_eq!(dec.len(), grad.len(), "{}", alg.name());
            assert!(dec.iter().all(|x| x.is_finite()), "{}", alg.name());
        }
    }

    #[test]
    fn adacomp_keeps_peak_elements() {
        let alg = adacomp(0.5).unwrap();
        let grad = [0.1f32, -2.0, 0.3, 1.5, 0.9, -1.1];
        let dec = alg.decode(&alg.encode(&grad, 0)).unwrap();
        // Peak |x| = 2.0; threshold 1.0: -2.0, 1.5, -1.1 survive.
        assert_eq!(dec, vec![0.0, -2.0, 0.0, 1.5, 0.0, -1.1]);
        assert_eq!(alg.kind(), hipress_compress::AlgorithmKind::Sparsification);
    }

    #[test]
    fn terngrad_rejects_bad_bitwidth() {
        assert!(terngrad(3).is_err());
        assert!(terngrad(0).is_err());
    }

    #[test]
    fn dsl_line_counts_are_compact() {
        // Table 5's point: each algorithm takes tens of DSL lines, not
        // the hundreds-to-thousands of the open-source versions.
        for alg in paper_suite().unwrap() {
            let report = alg.loc_report();
            assert!(
                report.total() < 60,
                "{}: {} lines is not compact",
                alg.name(),
                report.total()
            );
            assert!(report.operators.len() >= 3, "{}", alg.name());
            assert_eq!(report.integration, 0);
        }
    }

    #[test]
    fn cuda_generated_for_each() {
        for alg in paper_suite().unwrap() {
            let cuda = alg.cuda_source();
            assert!(cuda.contains("extern \"C\""), "{}", alg.name());
            assert!(cuda.contains("compll_op_"), "{}", alg.name());
        }
    }
}

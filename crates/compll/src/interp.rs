//! Evaluator: executes a checked CompLL program on real gradients.
//!
//! This is what makes a DSL-defined algorithm a *working* compressor:
//! `run_encode` runs the program's `encode` entry point over an
//! actual `f32` gradient and returns the bytes it `concat`ed into the
//! `compressed` stream; `run_decode` reverses it. The semantics match
//! what the generated GPU code would compute (bit-packed sub-byte
//! arrays, C-style numeric conversion, stochastic `random<float>`).

use crate::ast::*;
use crate::ops::{concat_append, ExtractCursor, PackedArr, Value};
use hipress_util::rng::{Rng64, Xoshiro256};
use hipress_util::{Error, Result};
use std::collections::HashMap;

/// Scalar parameter values supplied by the integration layer (the
/// fields of the `param` block).
pub type ParamValues = HashMap<String, Value>;

/// Executes the program's `encode` over `gradient`, returning the
/// compressed stream.
///
/// # Errors
///
/// Returns a DSL error for any runtime fault (missing entry point,
/// type confusion the checker could not see, stream exhaustion).
pub fn run_encode(
    prog: &Program,
    params: &ParamValues,
    gradient: &[f32],
    seed: u64,
) -> Result<Vec<u8>> {
    let f = prog
        .function("encode")
        .ok_or_else(|| Error::dsl("program has no encode function"))?;
    let mut interp = Interp::new(prog, params, seed);
    let mut scope = HashMap::new();
    scope.insert(f.params[0].0.clone(), Value::FArr(gradient.to_vec()));
    scope.insert(f.params[1].0.clone(), Value::Bytes(Vec::new()));
    if let Some((pname, _)) = f.params.get(2) {
        scope.insert(pname.clone(), Value::Params);
    }
    let out_name = f.params[1].0.clone();
    interp.exec_block(&f.body, &mut scope)?;
    match scope.remove(&out_name) {
        Some(Value::Bytes(b)) => Ok(b),
        other => Err(Error::dsl(format!(
            "encode did not produce a compressed stream (found {other:?})"
        ))),
    }
}

/// Executes the program's `decode` over `stream`, producing a dense
/// gradient of `n` elements.
///
/// # Errors
///
/// Returns a DSL error for runtime faults, including a decoded
/// gradient of the wrong length.
pub fn run_decode(
    prog: &Program,
    params: &ParamValues,
    stream: &[u8],
    n: usize,
    seed: u64,
) -> Result<Vec<f32>> {
    let f = prog
        .function("decode")
        .ok_or_else(|| Error::dsl("program has no decode function"))?;
    let mut interp = Interp::new(prog, params, seed);
    interp.cursor = Some(ExtractCursor::new(stream));
    let mut scope = HashMap::new();
    scope.insert(f.params[0].0.clone(), Value::Bytes(stream.to_vec()));
    scope.insert(f.params[1].0.clone(), Value::FArr(vec![0.0; n]));
    if let Some((pname, _)) = f.params.get(2) {
        scope.insert(pname.clone(), Value::Params);
    }
    let out_name = f.params[1].0.clone();
    interp.exec_block(&f.body, &mut scope)?;
    match scope.remove(&out_name) {
        Some(Value::FArr(v)) if v.len() == n => Ok(v),
        Some(Value::FArr(v)) => Err(Error::dsl(format!(
            "decode produced {} elements, expected {n}",
            v.len()
        ))),
        other => Err(Error::dsl(format!(
            "decode did not produce a gradient (found {other:?})"
        ))),
    }
}

/// Control flow outcome of a statement.
enum Flow {
    Normal,
    Return(Value),
}

struct Interp<'p> {
    prog: &'p Program,
    params: &'p ParamValues,
    globals: HashMap<String, Value>,
    rng: Xoshiro256,
    cursor: Option<ExtractCursor<'p>>,
    steps: u64,
}

/// Hard cap on evaluation steps (runaway-program backstop).
const MAX_STEPS: u64 = 500_000_000;

impl<'p> Interp<'p> {
    fn new(prog: &'p Program, params: &'p ParamValues, seed: u64) -> Self {
        let mut globals = HashMap::new();
        for (name, ty) in &prog.globals {
            globals.insert(name.clone(), default_value(*ty));
        }
        Self {
            prog,
            params,
            globals,
            rng: Xoshiro256::new(seed),
            cursor: None,
            steps: 0,
        }
    }

    fn tick(&mut self) -> Result<()> {
        self.steps += 1;
        if self.steps > MAX_STEPS {
            return Err(Error::dsl("DSL program exceeded its step budget"));
        }
        Ok(())
    }

    fn exec_block(&mut self, stmts: &[Stmt], scope: &mut HashMap<String, Value>) -> Result<Flow> {
        for stmt in stmts {
            self.tick()?;
            match stmt {
                Stmt::Decl(name, ty, init) => {
                    let v = match init {
                        Some(e) => {
                            let raw = self.eval_rhs(e, *ty, scope)?;
                            coerce(raw, *ty)?
                        }
                        None => default_value(*ty),
                    };
                    scope.insert(name.clone(), v);
                }
                Stmt::Assign(name, e) => {
                    let target_ty = self.var_ty_hint(name, scope);
                    let raw = match target_ty {
                        Some(ty) => {
                            let v = self.eval_rhs(e, ty, scope)?;
                            coerce(v, ty)?
                        }
                        None => self.eval(e, scope)?,
                    };
                    if let Some(slot) = scope.get_mut(name) {
                        *slot = raw;
                    } else if let Some(slot) = self.globals.get_mut(name) {
                        *slot = raw;
                    } else {
                        return Err(Error::dsl(format!("assignment to unknown '{name}'")));
                    }
                }
                Stmt::Return(e) => {
                    let v = match e {
                        Some(e) => self.eval(e, scope)?,
                        None => Value::Unit,
                    };
                    return Ok(Flow::Return(v));
                }
                Stmt::If(cond, then, els) => {
                    let c = self.eval(cond, scope)?.truthy()?;
                    let flow = if c {
                        self.exec_block(then, scope)?
                    } else {
                        self.exec_block(els, scope)?
                    };
                    if let Flow::Return(v) = flow {
                        return Ok(Flow::Return(v));
                    }
                }
                Stmt::Expr(e) => {
                    self.eval(e, scope)?;
                }
            }
        }
        Ok(Flow::Normal)
    }

    /// The declared type of a variable, if known (for coercing
    /// assignments to globals and locals declared with a type).
    fn var_ty_hint(&self, name: &str, _scope: &HashMap<String, Value>) -> Option<Ty> {
        self.prog
            .globals
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| *t)
    }

    /// Evaluates a right-hand side, handling context-typed `extract`.
    fn eval_rhs(
        &mut self,
        e: &Expr,
        target: Ty,
        scope: &mut HashMap<String, Value>,
    ) -> Result<Value> {
        if let Expr::Call { name, args, .. } = e {
            if name == "extract" {
                let count = match args.get(1) {
                    Some(c) => Some(self.eval(c, scope)?.as_i64()?.max(0) as usize),
                    None => None,
                };
                let cursor = self
                    .cursor
                    .as_mut()
                    .ok_or_else(|| Error::dsl("extract outside decode"))?;
                return match (target, count) {
                    (Ty::Float, None) => Ok(Value::F(cursor.float()?)),
                    (Ty::Int32, None) => Ok(Value::I(cursor.int32()?)),
                    (Ty::UInt(b), None) => Ok(Value::U(cursor.uint(b)?, b)),
                    (Ty::Arr(ScalarTy::Float), Some(n)) => Ok(Value::FArr(cursor.farr(n)?)),
                    (Ty::Arr(ScalarTy::Int32), Some(n)) => Ok(Value::IArr(cursor.iarr(n)?)),
                    (Ty::Arr(ScalarTy::UInt(b)), Some(n)) => Ok(Value::UArr(cursor.uarr(b, n)?)),
                    (Ty::Bytes, Some(n)) => Ok(Value::UArr(cursor.uarr(8, n)?)),
                    (t, c) => Err(Error::dsl(format!(
                        "extract into {t:?} with count {c:?} is not supported"
                    ))),
                };
            }
        }
        self.eval(e, scope)
    }

    fn lookup(&self, name: &str, scope: &HashMap<String, Value>) -> Option<Value> {
        scope
            .get(name)
            .cloned()
            .or_else(|| self.globals.get(name).cloned())
    }

    fn eval(&mut self, e: &Expr, scope: &mut HashMap<String, Value>) -> Result<Value> {
        self.tick()?;
        match e {
            Expr::Int(v) => Ok(Value::I(*v)),
            Expr::Float(v) => Ok(Value::F(*v)),
            Expr::Var(name) => self
                .lookup(name, scope)
                .ok_or_else(|| Error::dsl(format!("unknown variable '{name}'"))),
            Expr::Member(base, field) => {
                let b = self.eval(base, scope)?;
                match (&b, field.as_str()) {
                    (Value::Params, field) => self
                        .params
                        .get(field)
                        .cloned()
                        .ok_or_else(|| Error::dsl(format!("parameter '{field}' not supplied"))),
                    (_, "size") => Ok(Value::I(b.size()? as i64)),
                    (other, f) => Err(Error::dsl(format!("no member '{f}' on {other:?}"))),
                }
            }
            Expr::Index(base, idx) => {
                let b = self.eval(base, scope)?;
                let i = self.eval(idx, scope)?.as_i64()?;
                if i < 0 {
                    return Err(Error::dsl(format!("negative index {i}")));
                }
                let i = i as usize;
                match b {
                    Value::FArr(v) => v
                        .get(i)
                        .map(|&x| Value::F(x as f64))
                        .ok_or_else(|| Error::dsl(format!("index {i} out of bounds"))),
                    Value::IArr(v) => v
                        .get(i)
                        .map(|&x| Value::I(x as i64))
                        .ok_or_else(|| Error::dsl(format!("index {i} out of bounds"))),
                    Value::UArr(p) => {
                        if i < p.len {
                            Ok(Value::U(p.get(i), p.bits))
                        } else {
                            Err(Error::dsl(format!("index {i} out of bounds")))
                        }
                    }
                    Value::Bytes(b) => b
                        .get(i)
                        .map(|&x| Value::U(x as u64, 8))
                        .ok_or_else(|| Error::dsl(format!("index {i} out of bounds"))),
                    other => Err(Error::dsl(format!("cannot index {other:?}"))),
                }
            }
            Expr::Unary(op, inner) => {
                let v = self.eval(inner, scope)?;
                match op {
                    UnOp::Neg => match v {
                        Value::F(x) => Ok(Value::F(-x)),
                        Value::I(x) => Ok(Value::I(-x)),
                        Value::U(x, _) => Ok(Value::I(-(x as i64))),
                        other => Err(Error::dsl(format!("negation of {other:?}"))),
                    },
                    UnOp::Not => Ok(Value::I(i64::from(!v.truthy()?))),
                }
            }
            Expr::Bin(op, lhs, rhs) => {
                let l = self.eval(lhs, scope)?;
                // Short-circuit logical operators.
                if *op == BinOp::And {
                    if !l.truthy()? {
                        return Ok(Value::I(0));
                    }
                    let r = self.eval(rhs, scope)?;
                    return Ok(Value::I(i64::from(r.truthy()?)));
                }
                if *op == BinOp::Or {
                    if l.truthy()? {
                        return Ok(Value::I(1));
                    }
                    let r = self.eval(rhs, scope)?;
                    return Ok(Value::I(i64::from(r.truthy()?)));
                }
                let r = self.eval(rhs, scope)?;
                eval_binop(*op, &l, &r)
            }
            Expr::Call { name, args, .. } => self.call(name, args, scope),
        }
    }

    /// Resolves an operator's udf argument to a function name.
    fn udf_name(arg: &Expr) -> Result<&str> {
        match arg {
            Expr::Var(name) => Ok(name),
            other => Err(Error::dsl(format!(
                "expected a function name, found {other:?}"
            ))),
        }
    }

    /// Calls a user-defined function with evaluated arguments.
    fn call_udf(&mut self, name: &str, args: &[Value]) -> Result<Value> {
        // Builtin binary reducers.
        match name {
            "smaller" => {
                return Ok(Value::F(args[0].as_f64()?.min(args[1].as_f64()?)));
            }
            "greater" => {
                return Ok(Value::F(args[0].as_f64()?.max(args[1].as_f64()?)));
            }
            "sum" => {
                return Ok(Value::F(args[0].as_f64()? + args[1].as_f64()?));
            }
            _ => {}
        }
        let f = self
            .prog
            .function(name)
            .ok_or_else(|| Error::dsl(format!("unknown function '{name}'")))?;
        if f.params.len() != args.len() {
            return Err(Error::dsl(format!(
                "{name} takes {} arguments, got {}",
                f.params.len(),
                args.len()
            )));
        }
        let mut scope: HashMap<String, Value> = HashMap::new();
        for ((pname, pty), arg) in f.params.iter().zip(args.iter().cloned()) {
            scope.insert(pname.clone(), coerce(arg, *pty)?);
        }
        match self.exec_block(&f.body, &mut scope)? {
            Flow::Return(v) => coerce(v, f.ret),
            Flow::Normal if f.ret == Ty::Void => Ok(Value::Unit),
            Flow::Normal => Err(Error::dsl(format!(
                "{name} fell off the end without return"
            ))),
        }
    }

    fn call(
        &mut self,
        name: &str,
        args: &[Expr],
        scope: &mut HashMap<String, Value>,
    ) -> Result<Value> {
        match name {
            "floor" | "ceil" | "abs" | "sqrt" => {
                let x = self.eval(&args[0], scope)?.as_f64()?;
                let v = match name {
                    "floor" => x.floor(),
                    "ceil" => x.ceil(),
                    "abs" => x.abs(),
                    _ => x.sqrt(),
                };
                Ok(Value::F(v))
            }
            "min" | "max" => {
                let a = self.eval(&args[0], scope)?.as_f64()?;
                let b = self.eval(&args[1], scope)?.as_f64()?;
                Ok(Value::F(if name == "min" { a.min(b) } else { a.max(b) }))
            }
            "random" => {
                let a = self.eval(&args[0], scope)?.as_f64()?;
                let b = self.eval(&args[1], scope)?.as_f64()?;
                Ok(Value::F(self.rng.range_f64(a, b)))
            }
            "reduce" => {
                let arr = self.eval(&args[0], scope)?;
                let udf = Self::udf_name(&args[1])?.to_string();
                let Value::FArr(v) = arr else {
                    return Err(Error::dsl("reduce needs a float array"));
                };
                if v.is_empty() {
                    return Ok(Value::F(0.0));
                }
                let mut acc = Value::F(v[0] as f64);
                for &x in &v[1..] {
                    self.tick()?;
                    acc = self.call_udf(&udf, &[acc, Value::F(x as f64)])?;
                }
                Ok(acc)
            }
            "map" => {
                let arr = self.eval(&args[0], scope)?;
                let udf = Self::udf_name(&args[1])?.to_string();
                let ret = self.prog.function(&udf).map(|f| f.ret).unwrap_or(Ty::Float);
                let inputs: Vec<Value> = match arr {
                    Value::FArr(v) => v.into_iter().map(|x| Value::F(x as f64)).collect(),
                    Value::IArr(v) => v.into_iter().map(|x| Value::I(x as i64)).collect(),
                    Value::UArr(p) => p.iter().map(|x| Value::U(x, p.bits)).collect(),
                    Value::Bytes(b) => b.into_iter().map(|x| Value::U(x as u64, 8)).collect(),
                    other => return Err(Error::dsl(format!("map over {other:?}"))),
                };
                match ret {
                    Ty::Float => {
                        let mut out = Vec::with_capacity(inputs.len());
                        for x in inputs {
                            self.tick()?;
                            out.push(self.call_udf(&udf, &[x])?.as_f64()? as f32);
                        }
                        Ok(Value::FArr(out))
                    }
                    Ty::Int32 => {
                        let mut out = Vec::with_capacity(inputs.len());
                        for x in inputs {
                            self.tick()?;
                            out.push(self.call_udf(&udf, &[x])?.as_i64()? as i32);
                        }
                        Ok(Value::IArr(out))
                    }
                    Ty::UInt(b) => {
                        let mut vals = Vec::with_capacity(inputs.len());
                        for x in inputs {
                            self.tick()?;
                            vals.push(self.call_udf(&udf, &[x])?.as_i64()?.max(0) as u64);
                        }
                        Ok(Value::UArr(PackedArr::from_values(b, vals)))
                    }
                    other => Err(Error::dsl(format!("map udf returns {other:?}"))),
                }
            }
            "filter" | "filter_idx" => {
                let arr = self.eval(&args[0], scope)?;
                let udf = Self::udf_name(&args[1])?.to_string();
                let Value::FArr(v) = arr else {
                    return Err(Error::dsl(format!("{name} needs a float array")));
                };
                let mut vals = Vec::new();
                let mut idxs = Vec::new();
                for (i, &x) in v.iter().enumerate() {
                    self.tick()?;
                    if self.call_udf(&udf, &[Value::F(x as f64)])?.truthy()? {
                        vals.push(x);
                        idxs.push(i as i32);
                    }
                }
                if name == "filter" {
                    Ok(Value::FArr(vals))
                } else {
                    Ok(Value::IArr(idxs))
                }
            }
            "gather" => {
                let Value::FArr(v) = self.eval(&args[0], scope)? else {
                    return Err(Error::dsl("gather needs a float array"));
                };
                let Value::IArr(idx) = self.eval(&args[1], scope)? else {
                    return Err(Error::dsl("gather needs int32 indices"));
                };
                let mut out = Vec::with_capacity(idx.len());
                for i in idx {
                    let x = v
                        .get(i as usize)
                        .ok_or_else(|| Error::dsl(format!("gather index {i} out of bounds")))?;
                    out.push(*x);
                }
                Ok(Value::FArr(out))
            }
            "scatter" => {
                let Value::IArr(idx) = self.eval(&args[0], scope)? else {
                    return Err(Error::dsl("scatter needs int32 indices"));
                };
                let Value::FArr(vals) = self.eval(&args[1], scope)? else {
                    return Err(Error::dsl("scatter needs float values"));
                };
                let n = self.eval(&args[2], scope)?.as_i64()?.max(0) as usize;
                if idx.len() != vals.len() {
                    return Err(Error::dsl("scatter index/value length mismatch"));
                }
                let mut out = vec![0.0f32; n];
                for (i, v) in idx.into_iter().zip(vals) {
                    let slot = out.get_mut(i as usize).ok_or_else(|| {
                        Error::dsl(format!("scatter index {i} out of bounds for {n}"))
                    })?;
                    *slot = v;
                }
                Ok(Value::FArr(out))
            }
            "sort" => {
                let Value::FArr(mut v) = self.eval(&args[0], scope)? else {
                    return Err(Error::dsl("sort needs a float array"));
                };
                let udf = Self::udf_name(&args[1])?.to_string();
                match udf.as_str() {
                    "greater" => v.sort_by(|a, b| b.total_cmp(a)),
                    "smaller" => v.sort_by(f32::total_cmp),
                    _ => {
                        // User comparator: udf(a, b) truthy ⇒ a first.
                        // Evaluate pairwise on a simple merge-insertion
                        // to keep udf calls bounded: use sort_by with
                        // cached keys is impossible for arbitrary udfs,
                        // so fall back to an O(n log n) comparison sort
                        // that may call the udf ~n log n times.
                        let mut err = None;
                        let mut this =
                            std::mem::replace(self, Interp::new(self.prog, self.params, 0));
                        v.sort_by(|a, b| {
                            if err.is_some() {
                                return std::cmp::Ordering::Equal;
                            }
                            match this.call_udf(&udf, &[Value::F(*a as f64), Value::F(*b as f64)]) {
                                Ok(r) => match r.truthy() {
                                    Ok(true) => std::cmp::Ordering::Less,
                                    Ok(false) => std::cmp::Ordering::Greater,
                                    Err(e) => {
                                        err = Some(e);
                                        std::cmp::Ordering::Equal
                                    }
                                },
                                Err(e) => {
                                    err = Some(e);
                                    std::cmp::Ordering::Equal
                                }
                            }
                        });
                        *self = this;
                        if let Some(e) = err {
                            return Err(e);
                        }
                    }
                }
                Ok(Value::FArr(v))
            }
            "sample" => {
                let Value::FArr(v) = self.eval(&args[0], scope)? else {
                    return Err(Error::dsl("sample needs a float array"));
                };
                let n = self.eval(&args[1], scope)?.as_i64()?.max(0) as usize;
                if v.is_empty() {
                    return Ok(Value::FArr(Vec::new()));
                }
                let mut out = Vec::with_capacity(n);
                for _ in 0..n {
                    out.push(v[self.rng.index(v.len())]);
                }
                Ok(Value::FArr(out))
            }
            "concat" => {
                let mut out = Vec::new();
                for a in args {
                    let v = self.eval(a, scope)?;
                    concat_append(&mut out, &v)?;
                }
                Ok(Value::Bytes(out))
            }
            "extract" => Err(Error::dsl(
                "extract may only appear as the whole right-hand side of an assignment",
            )),
            _ => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, scope)?);
                }
                self.call_udf(name, &vals)
            }
        }
    }
}

/// The zero value of a type.
fn default_value(ty: Ty) -> Value {
    match ty {
        Ty::Float => Value::F(0.0),
        Ty::Int32 => Value::I(0),
        Ty::UInt(b) => Value::U(0, b),
        Ty::Arr(ScalarTy::Float) => Value::FArr(Vec::new()),
        Ty::Arr(ScalarTy::Int32) => Value::IArr(Vec::new()),
        Ty::Arr(ScalarTy::UInt(b)) => Value::UArr(PackedArr {
            bits: b,
            len: 0,
            data: Vec::new(),
        }),
        Ty::Bytes => Value::Bytes(Vec::new()),
        Ty::ParamStruct => Value::Params,
        Ty::Void => Value::Unit,
    }
}

/// C-style conversion of a value to a declared type.
fn coerce(v: Value, ty: Ty) -> Result<Value> {
    Ok(match (ty, v) {
        (Ty::Float, v @ Value::F(_)) => v,
        (Ty::Float, v) => Value::F(v.as_f64()?),
        (Ty::Int32, v @ Value::I(_)) => v,
        (Ty::Int32, v) => Value::I(v.as_i64()?),
        (Ty::UInt(b), v) => {
            let raw = v.as_i64()?.max(0) as u64;
            let mask = if b >= 8 { 0xFF } else { (1u64 << b) - 1 };
            Value::U(raw & mask, b)
        }
        (Ty::Void, _) => Value::Unit,
        // `uint8*` duality: packed 8-bit arrays and byte streams share
        // a layout.
        (Ty::Bytes, Value::UArr(p)) if p.bits == 8 => Value::Bytes(p.data),
        (Ty::Arr(ScalarTy::UInt(8)), Value::Bytes(b)) => {
            let len = b.len();
            Value::UArr(PackedArr {
                bits: 8,
                len,
                data: b,
            })
        }
        (_, v) => v, // Arrays/streams pass through; checker verified.
    })
}

fn eval_binop(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    use BinOp::*;
    let both_int = !matches!(l, Value::F(_)) && !matches!(r, Value::F(_));
    match op {
        Shl | Shr | Rem => {
            let a = l.as_i64()?;
            let b = r.as_i64()?;
            let v = match op {
                Shl => a.checked_shl(b.clamp(0, 63) as u32).unwrap_or(0),
                Shr => a.checked_shr(b.clamp(0, 63) as u32).unwrap_or(0),
                _ => {
                    if b == 0 {
                        return Err(Error::dsl("remainder by zero"));
                    }
                    a % b
                }
            };
            Ok(Value::I(v))
        }
        Eq | Ne | Lt | Gt | Le | Ge => {
            let a = l.as_f64()?;
            let b = r.as_f64()?;
            let t = match op {
                Eq => a == b,
                Ne => a != b,
                Lt => a < b,
                Gt => a > b,
                Le => a <= b,
                _ => a >= b,
            };
            Ok(Value::I(i64::from(t)))
        }
        Add | Sub | Mul | Div => {
            if both_int {
                let a = l.as_i64()?;
                let b = r.as_i64()?;
                let v = match op {
                    Add => a.wrapping_add(b),
                    Sub => a.wrapping_sub(b),
                    Mul => a.wrapping_mul(b),
                    _ => {
                        if b == 0 {
                            return Err(Error::dsl("division by zero"));
                        }
                        a / b
                    }
                };
                Ok(Value::I(v))
            } else {
                let a = l.as_f64()?;
                let b = r.as_f64()?;
                let v = match op {
                    Add => a + b,
                    Sub => a - b,
                    Mul => a * b,
                    _ => a / b,
                };
                Ok(Value::F(v))
            }
        }
        And | Or => unreachable!("short-circuited in eval"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    fn params(kv: &[(&str, Value)]) -> ParamValues {
        kv.iter().map(|(k, v)| (k.to_string(), v.clone())).collect()
    }

    #[test]
    fn figure5_terngrad_runs() {
        let src = r#"
            param EncodeParams { uint8 bitwidth; }
            float min, max, gap;
            uint2 floatToUint(float elem) {
                float r = (elem - min) / gap;
                return floor(r + random<float>(0, 1));
            }
            void encode(float* gradient, uint8* compressed, EncodeParams params) {
                min = reduce(gradient, smaller);
                max = reduce(gradient, greater);
                gap = (max - min) / ((1 << params.bitwidth) - 1);
                uint2* Q = map(gradient, floatToUint);
                compressed = concat(params.bitwidth, min, max, Q);
            }
        "#;
        let prog = compile(src).unwrap();
        let p = params(&[("bitwidth", Value::U(2, 8))]);
        let grad = vec![0.0f32, 1.0, 2.0, 3.0, 1.5];
        let out = run_encode(&prog, &p, &grad, 42).unwrap();
        // 1 byte bitwidth + 4 min + 4 max + ceil(5*2/8)=2 bytes.
        assert_eq!(out.len(), 1 + 4 + 4 + 2);
        assert_eq!(out[0], 2);
    }

    #[test]
    fn encode_decode_roundtrip_sign_algorithm() {
        let src = r#"
            float neg; float pos;
            uint1 signOf(float elem) {
                if (elem > 0) { return 1; }
                return 0;
            }
            float toVal(uint1 q) {
                if (q == 1) { return pos; }
                return neg;
            }
            uint1 isPos(float x) { if (x > 0) { return 1; } return 0; }
            uint1 isNeg(float x) { if (x > 0) { return 0; } return 1; }
            void encode(float* gradient, uint8* compressed) {
                float* p = filter(gradient, isPos);
                float* n = filter(gradient, isNeg);
                pos = 0.0; neg = 0.0;
                if (p.size > 0) { pos = reduce(p, sum) / p.size; }
                if (n.size > 0) { neg = reduce(n, sum) / n.size; }
                uint1* Q = map(gradient, signOf);
                compressed = concat(neg, pos, Q);
            }
            void decode(uint8* compressed, float* gradient) {
                neg = extract(compressed);
                pos = extract(compressed);
                uint1* Q = extract(compressed, gradient.size);
                gradient = map(Q, toVal);
            }
        "#;
        let prog = compile(src).unwrap();
        let p = params(&[]);
        let grad = vec![2.0f32, 4.0, -1.0, -3.0];
        let enc = run_encode(&prog, &p, &grad, 0).unwrap();
        let dec = run_decode(&prog, &p, &enc, grad.len(), 0).unwrap();
        assert_eq!(dec, vec![3.0, 3.0, -2.0, -2.0]);
    }

    #[test]
    fn sparse_scatter_roundtrip() {
        let src = r#"
            float threshold;
            uint1 keep(float x) { if (abs(x) >= threshold) { return 1; } return 0; }
            float absf(float x) { return abs(x); }
            void encode(float* gradient, uint8* compressed) {
                float* mags = map(gradient, absf);
                float* sorted = sort(mags, greater);
                threshold = sorted[1];
                int32* I = filter_idx(gradient, keep);
                float* V = gather(gradient, I);
                compressed = concat(I.size, I, V);
            }
            void decode(uint8* compressed, float* gradient) {
                int32 count = extract(compressed);
                int32* I = extract(compressed, count);
                float* V = extract(compressed, count);
                gradient = scatter(I, V, gradient.size);
            }
        "#;
        let prog = compile(src).unwrap();
        let p = params(&[]);
        let grad = vec![0.1f32, -5.0, 0.2, 4.0, 0.0];
        let enc = run_encode(&prog, &p, &grad, 0).unwrap();
        let dec = run_decode(&prog, &p, &enc, grad.len(), 0).unwrap();
        assert_eq!(dec, vec![0.0, -5.0, 0.0, 4.0, 0.0]);
    }

    #[test]
    fn runtime_errors_are_reported() {
        let prog = compile(
            "void encode(float* gradient, uint8* compressed) { float x = gradient[999999]; compressed = concat(x); }",
        )
        .unwrap();
        let err = run_encode(&prog, &params(&[]), &[1.0], 0).unwrap_err();
        assert!(err.to_string().contains("out of bounds"), "{err}");
    }

    #[test]
    fn missing_param_is_reported() {
        let prog = compile(
            "param P { float rate; } void encode(float* gradient, uint8* compressed, P params) { float r = params.rate; compressed = concat(r); }",
        )
        .unwrap();
        let err = run_encode(&prog, &params(&[]), &[1.0], 0).unwrap_err();
        assert!(err.to_string().contains("not supplied"), "{err}");
    }

    #[test]
    fn division_by_zero_is_reported() {
        let prog = compile(
            "void encode(float* gradient, uint8* compressed) { int32 x = 1 / 0; compressed = concat(x); }",
        )
        .unwrap();
        assert!(run_encode(&prog, &params(&[]), &[1.0], 0).is_err());
    }
}

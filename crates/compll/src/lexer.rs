//! Tokenizer for the CompLL DSL.
//!
//! The surface syntax is the C subset of Figure 5: declarations,
//! assignments, `if`/`else`, `return`, function calls, arithmetic and
//! shifts, `//` comments, and line-continuation backslashes.

use hipress_util::{Error, Result};

/// One lexical token with its source line (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword candidate.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating literal.
    Float(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `=`
    Assign,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
}

/// Tokenizes `source`.
///
/// # Errors
///
/// Returns a DSL error naming the offending character and line.
pub fn lex(source: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let bytes: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    let mut line: u32 = 1;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            // Line continuation (Figure 5 uses trailing backslashes).
            '\\' => i += 1,
            '/' if i + 1 < bytes.len() && bytes[i + 1] == '/' => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == '*' => {
                i += 2;
                while i + 1 < bytes.len() && !(bytes[i] == '*' && bytes[i + 1] == '/') {
                    if bytes[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                if i + 1 >= bytes.len() {
                    return Err(Error::dsl(format!("unterminated comment at line {line}")));
                }
                i += 2;
            }
            '(' => push1(&mut out, Tok::LParen, line, &mut i),
            ')' => push1(&mut out, Tok::RParen, line, &mut i),
            '{' => push1(&mut out, Tok::LBrace, line, &mut i),
            '}' => push1(&mut out, Tok::RBrace, line, &mut i),
            '[' => push1(&mut out, Tok::LBracket, line, &mut i),
            ']' => push1(&mut out, Tok::RBracket, line, &mut i),
            ',' => push1(&mut out, Tok::Comma, line, &mut i),
            ';' => push1(&mut out, Tok::Semi, line, &mut i),
            '.' => push1(&mut out, Tok::Dot, line, &mut i),
            '*' => push1(&mut out, Tok::Star, line, &mut i),
            '/' => push1(&mut out, Tok::Slash, line, &mut i),
            '%' => push1(&mut out, Tok::Percent, line, &mut i),
            '+' => push1(&mut out, Tok::Plus, line, &mut i),
            '-' => push1(&mut out, Tok::Minus, line, &mut i),
            '!' if peek(&bytes, i + 1) == Some('=') => push2(&mut out, Tok::Ne, line, &mut i),
            '!' => push1(&mut out, Tok::Bang, line, &mut i),
            '=' if peek(&bytes, i + 1) == Some('=') => push2(&mut out, Tok::Eq, line, &mut i),
            '=' => push1(&mut out, Tok::Assign, line, &mut i),
            '<' if peek(&bytes, i + 1) == Some('<') => push2(&mut out, Tok::Shl, line, &mut i),
            '<' if peek(&bytes, i + 1) == Some('=') => push2(&mut out, Tok::Le, line, &mut i),
            '<' => push1(&mut out, Tok::Lt, line, &mut i),
            '>' if peek(&bytes, i + 1) == Some('>') => push2(&mut out, Tok::Shr, line, &mut i),
            '>' if peek(&bytes, i + 1) == Some('=') => push2(&mut out, Tok::Ge, line, &mut i),
            '>' => push1(&mut out, Tok::Gt, line, &mut i),
            '&' if peek(&bytes, i + 1) == Some('&') => push2(&mut out, Tok::AndAnd, line, &mut i),
            '|' if peek(&bytes, i + 1) == Some('|') => push2(&mut out, Tok::OrOr, line, &mut i),
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == '.') {
                    i += 1;
                }
                // Don't swallow a trailing member access like `3.size`.
                let text: String = bytes[start..i].iter().collect();
                if text.ends_with('.') {
                    i -= 1;
                }
                let text: String = bytes[start..i].iter().collect();
                if text.contains('.') {
                    let v = text.parse::<f64>().map_err(|_| {
                        Error::dsl(format!("bad float literal '{text}' line {line}"))
                    })?;
                    out.push(Token {
                        kind: Tok::Float(v),
                        line,
                    });
                } else {
                    let v = text
                        .parse::<i64>()
                        .map_err(|_| Error::dsl(format!("bad int literal '{text}' line {line}")))?;
                    out.push(Token {
                        kind: Tok::Int(v),
                        line,
                    });
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                out.push(Token {
                    kind: Tok::Ident(bytes[start..i].iter().collect()),
                    line,
                });
            }
            other => {
                return Err(Error::dsl(format!(
                    "unexpected character '{other}' at line {line}"
                )));
            }
        }
    }
    Ok(out)
}

fn peek(bytes: &[char], i: usize) -> Option<char> {
    bytes.get(i).copied()
}

fn push1(out: &mut Vec<Token>, kind: Tok, line: u32, i: &mut usize) {
    out.push(Token { kind, line });
    *i += 1;
}

fn push2(out: &mut Vec<Token>, kind: Tok, line: u32, i: &mut usize) {
    out.push(Token { kind, line });
    *i += 2;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("a = b + 1;"),
            vec![
                Tok::Ident("a".into()),
                Tok::Assign,
                Tok::Ident("b".into()),
                Tok::Plus,
                Tok::Int(1),
                Tok::Semi
            ]
        );
    }

    #[test]
    fn operators_two_char() {
        assert_eq!(
            kinds("== != <= >= << >> && ||"),
            vec![
                Tok::Eq,
                Tok::Ne,
                Tok::Le,
                Tok::Ge,
                Tok::Shl,
                Tok::Shr,
                Tok::AndAnd,
                Tok::OrOr
            ]
        );
    }

    #[test]
    fn literals() {
        assert_eq!(
            kinds("3 3.5 0.25"),
            vec![Tok::Int(3), Tok::Float(3.5), Tok::Float(0.25)]
        );
    }

    #[test]
    fn member_access_after_ident_not_float() {
        assert_eq!(
            kinds("gradient.size"),
            vec![
                Tok::Ident("gradient".into()),
                Tok::Dot,
                Tok::Ident("size".into())
            ]
        );
    }

    #[test]
    fn comments_and_continuations_skipped() {
        let src = "a = 1; // comment\nb = \\\n2; /* multi\nline */ c = 3;";
        let k = kinds(src);
        assert_eq!(k.len(), 12);
        assert_eq!(k[4], Tok::Ident("b".into()));
    }

    #[test]
    fn line_numbers_advance() {
        let toks = lex("a\nb\n\nc").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("a # b").is_err());
        assert!(lex("/* unterminated").is_err());
    }
}

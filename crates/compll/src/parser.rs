//! Recursive-descent parser for the CompLL DSL.

use crate::ast::*;
use crate::lexer::{Tok, Token};
use hipress_util::{Error, Result};

/// Parses a token stream into a [`Program`].
pub fn parse(tokens: &[Token]) -> Result<Program> {
    let mut p = Parser {
        tokens,
        pos: 0,
        param_names: Vec::new(),
    };
    p.program()
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
    param_names: Vec<String>,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn line(&self) -> u32 {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(0)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, want: &Tok) -> Result<()> {
        let line = self.line();
        match self.bump() {
            Some(ref got) if got == want => Ok(()),
            got => Err(Error::dsl(format!(
                "line {line}: expected {want:?}, found {got:?}"
            ))),
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        let line = self.line();
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            got => Err(Error::dsl(format!(
                "line {line}: expected identifier, found {got:?}"
            ))),
        }
    }

    fn eat(&mut self, want: &Tok) -> bool {
        if self.peek() == Some(want) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn program(&mut self) -> Result<Program> {
        let mut prog = Program::default();
        while let Some(tok) = self.peek() {
            match tok {
                Tok::Ident(kw) if kw == "param" => {
                    self.bump();
                    let block = self.param_block()?;
                    self.param_names.push(block.name.clone());
                    prog.params.push(block);
                }
                Tok::Ident(_) => {
                    // A type name starts either a global declaration
                    // or a function definition; disambiguate by
                    // looking past `ty [*] name`.
                    self.item(&mut prog)?;
                }
                other => {
                    return Err(Error::dsl(format!(
                        "line {}: unexpected token {other:?} at top level",
                        self.line()
                    )));
                }
            }
        }
        Ok(prog)
    }

    fn param_block(&mut self) -> Result<ParamBlock> {
        let name = self.expect_ident()?;
        self.expect(&Tok::LBrace)?;
        let mut fields = Vec::new();
        while !self.eat(&Tok::RBrace) {
            let ty = self.ty()?;
            let fname = self.expect_ident()?;
            self.expect(&Tok::Semi)?;
            fields.push((fname, ty));
        }
        Ok(ParamBlock { name, fields })
    }

    /// Parses a type, with optional `*` making it an array/stream.
    fn ty(&mut self) -> Result<Ty> {
        let line = self.line();
        let name = self.expect_ident()?;
        let base = match Ty::from_name(&name) {
            Some(t) => t,
            None if self.param_names.contains(&name) => Ty::ParamStruct,
            None => return Err(Error::dsl(format!("line {line}: unknown type '{name}'"))),
        };
        if self.eat(&Tok::Star) {
            base.as_array()
                .ok_or_else(|| Error::dsl(format!("line {line}: '{name}*' is not a valid array")))
        } else {
            Ok(base)
        }
    }

    /// A global declaration list (`float min, max, gap;`) or a
    /// function definition.
    fn item(&mut self, prog: &mut Program) -> Result<()> {
        let line = self.line();
        let ty = self.ty()?;
        let name = self.expect_ident()?;
        if self.peek() == Some(&Tok::LParen) {
            // Function definition.
            self.bump();
            let mut params = Vec::new();
            if !self.eat(&Tok::RParen) {
                loop {
                    let pty = self.ty()?;
                    let pname = self.expect_ident()?;
                    params.push((pname, pty));
                    if self.eat(&Tok::RParen) {
                        break;
                    }
                    self.expect(&Tok::Comma)?;
                }
            }
            // Parameter-struct types appear as bare identifiers
            // (`EncodeParams params`): handled in `ty()`? No — they
            // fail `Ty::from_name`. Re-parse: we only reach here when
            // all parameter types were valid primitive types, so
            // param-struct parameters are handled by the caller via a
            // dedicated path below.
            let body = self.block()?;
            prog.functions.push(Function {
                name,
                ret: ty,
                params,
                body,
                line,
            });
            Ok(())
        } else {
            // Global declaration(s).
            prog.globals.push((name, ty));
            while self.eat(&Tok::Comma) {
                let next = self.expect_ident()?;
                prog.globals.push((next, ty));
            }
            self.expect(&Tok::Semi)?;
            Ok(())
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>> {
        self.expect(&Tok::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&Tok::RBrace) {
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt> {
        let line = self.line();
        match self.peek() {
            Some(Tok::Ident(kw)) if kw == "return" => {
                self.bump();
                if self.eat(&Tok::Semi) {
                    Ok(Stmt::Return(None))
                } else {
                    let e = self.expr()?;
                    self.expect(&Tok::Semi)?;
                    Ok(Stmt::Return(Some(e)))
                }
            }
            Some(Tok::Ident(kw)) if kw == "if" => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen)?;
                let then = self.block()?;
                let els = if matches!(self.peek(), Some(Tok::Ident(k)) if k == "else") {
                    self.bump();
                    self.block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If(cond, then, els))
            }
            Some(Tok::Ident(name)) if Ty::from_name(name).is_some() => {
                // Declaration.
                let ty = self.ty()?;
                let vname = self.expect_ident()?;
                let init = if self.eat(&Tok::Assign) {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Decl(vname, ty, init))
            }
            Some(Tok::Ident(_)) => {
                // Assignment or expression statement.
                let checkpoint = self.pos;
                let name = self.expect_ident()?;
                if self.eat(&Tok::Assign) {
                    let e = self.expr()?;
                    self.expect(&Tok::Semi)?;
                    Ok(Stmt::Assign(name, e))
                } else {
                    self.pos = checkpoint;
                    let e = self.expr()?;
                    self.expect(&Tok::Semi)?;
                    Ok(Stmt::Expr(e))
                }
            }
            other => Err(Error::dsl(format!(
                "line {line}: unexpected statement start {other:?}"
            ))),
        }
    }

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat(&Tok::OrOr) {
            let rhs = self.and_expr()?;
            lhs = Expr::Bin(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.cmp_expr()?;
        while self.eat(&Tok::AndAnd) {
            let rhs = self.cmp_expr()?;
            lhs = Expr::Bin(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let lhs = self.shift_expr()?;
        let op = match self.peek() {
            Some(Tok::Eq) => Some(BinOp::Eq),
            Some(Tok::Ne) => Some(BinOp::Ne),
            Some(Tok::Lt) => Some(BinOp::Lt),
            Some(Tok::Gt) => Some(BinOp::Gt),
            Some(Tok::Le) => Some(BinOp::Le),
            Some(Tok::Ge) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.shift_expr()?;
            Ok(Expr::Bin(op, Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn shift_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.add_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Shl) => BinOp::Shl,
                Some(Tok::Shr) => BinOp::Shr,
                _ => break,
            };
            self.bump();
            let rhs = self.add_expr()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                Some(Tok::Percent) => BinOp::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        if self.eat(&Tok::Minus) {
            let e = self.unary_expr()?;
            return Ok(Expr::Unary(UnOp::Neg, Box::new(e)));
        }
        if self.eat(&Tok::Bang) {
            let e = self.unary_expr()?;
            return Ok(Expr::Unary(UnOp::Not, Box::new(e)));
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr> {
        let mut e = self.primary_expr()?;
        loop {
            if self.eat(&Tok::Dot) {
                let field = self.expect_ident()?;
                e = Expr::Member(Box::new(e), field);
            } else if self.eat(&Tok::LBracket) {
                let idx = self.expr()?;
                self.expect(&Tok::RBracket)?;
                e = Expr::Index(Box::new(e), Box::new(idx));
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> Result<Expr> {
        let line = self.line();
        match self.bump() {
            Some(Tok::Int(v)) => Ok(Expr::Int(v)),
            Some(Tok::Float(v)) => Ok(Expr::Float(v)),
            Some(Tok::LParen) => {
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                // `random<float>(a, b)` — the one generic call form.
                let ty_arg = if name == "random" && self.peek() == Some(&Tok::Lt) {
                    self.bump();
                    let ty = self.ty()?;
                    self.expect(&Tok::Gt)?;
                    Some(ty)
                } else {
                    None
                };
                if self.eat(&Tok::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.eat(&Tok::RParen) {
                                break;
                            }
                            self.expect(&Tok::Comma)?;
                        }
                    }
                    Ok(Expr::Call { name, ty_arg, args })
                } else if ty_arg.is_some() {
                    Err(Error::dsl(format!(
                        "line {line}: generic call without arguments"
                    )))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            got => Err(Error::dsl(format!(
                "line {line}: unexpected token {got:?} in expression"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Result<Program> {
        parse(&lex(src).unwrap())
    }

    #[test]
    fn parses_figure5_shape() {
        let src = r#"
            param EncodeParams {
                uint8 bitwidth;
            }
            float min, max, gap;
            uint2 floatToUint(float elem) {
                float r = (elem - min) / gap;
                return floor(r + random<float>(0, 1));
            }
            void encode(float* gradient, uint8* compressed, \
                        EncodeParams params) {
                min = reduce(gradient, smaller);
                max = reduce(gradient, greater);
                gap = (max - min) / ((1 << params.bitwidth) - 1);
                uint2* Q = map(gradient, floatToUint);
                compressed = concat(params.bitwidth, min, max, Q);
            }
        "#;
        let prog = parse_src(src).unwrap();
        assert_eq!(prog.params.len(), 1);
        assert_eq!(
            prog.params[0].fields,
            vec![("bitwidth".into(), Ty::UInt(8))]
        );
        assert_eq!(prog.globals.len(), 3);
        assert!(prog.function("encode").is_some());
        assert!(prog.function("floatToUint").is_some());
        let f = prog.function("floatToUint").unwrap();
        assert_eq!(f.ret, Ty::UInt(2));
    }

    #[test]
    fn precedence() {
        let prog = parse_src("void f() { int32 x = 1 + 2 * 3 << 1; }").unwrap();
        let Stmt::Decl(_, _, Some(e)) = &prog.functions[0].body[0] else {
            panic!("expected decl");
        };
        // ((1 + (2*3)) << 1)
        match e {
            Expr::Bin(BinOp::Shl, lhs, _) => match lhs.as_ref() {
                Expr::Bin(BinOp::Add, _, rhs) => {
                    assert!(matches!(rhs.as_ref(), Expr::Bin(BinOp::Mul, _, _)));
                }
                other => panic!("wrong lhs {other:?}"),
            },
            other => panic!("wrong root {other:?}"),
        }
    }

    #[test]
    fn if_else_and_return() {
        let prog = parse_src("uint1 sign(float x) { if (x > 0) { return 1; } else { return 0; } }")
            .unwrap();
        assert!(matches!(prog.functions[0].body[0], Stmt::If(_, _, _)));
    }

    #[test]
    fn member_and_index() {
        let prog = parse_src("void f(float* g) { float t = g[3].size; }");
        // `.size` on an indexed element is nonsense but parses; the
        // type checker rejects it.
        assert!(prog.is_ok());
    }

    #[test]
    fn unary_minus() {
        let prog = parse_src("void f() { float x = -1.5; float y = -x; }").unwrap();
        assert_eq!(prog.functions[0].body.len(), 2);
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_src("void f( {").is_err());
        assert!(parse_src("banana x;").is_err());
        assert!(parse_src("void f() { return 1 }").is_err());
    }
}

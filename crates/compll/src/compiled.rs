//! The integration layer: a compiled DSL program as a drop-in
//! [`Compressor`].
//!
//! This is CompLL's "automated integration into DNN systems" (§4.3):
//! anything written in the DSL becomes a [`CompiledAlgorithm`], which
//! implements the same [`Compressor`] trait the handwritten library
//! does — so CaSync, the planner, and the training framework accept
//! it without a single line of manual glue (the "integration = 0"
//! column of Table 5).

use crate::ast::Program;
use crate::interp::{run_decode, run_encode, ParamValues};
use crate::loc::{count, LocReport};
use crate::ops::{operator_passes, Value};
use hipress_compress::{AlgorithmKind, Compressor, KernelCostProfile};
use hipress_util::rng::{Rng64, Xoshiro256};
use hipress_util::{Error, Result};

/// Framing magic for CompLL-generated streams.
const MAGIC: [u8; 2] = [0xC1, 0x17];

/// A DSL program compiled into a usable compression algorithm.
pub struct CompiledAlgorithm {
    // (Not `derive(Debug)`: the AST dump would be enormous.)
    name: &'static str,
    source: String,
    prog: Program,
    params: ParamValues,
    /// Affine compressed-size model fitted by probing.
    size_intercept: f64,
    size_slope: f64,
    cost: KernelCostProfile,
    kind: AlgorithmKind,
}

impl CompiledAlgorithm {
    /// Compiles `source` and prepares it for use under `name` with
    /// the given parameter values.
    ///
    /// # Errors
    ///
    /// Returns DSL errors from compilation, or if the program lacks
    /// `encode`/`decode`, or if a probe run fails.
    pub fn new(name: &str, source: &str, params: ParamValues) -> Result<Self> {
        let prog = crate::compile(source)?;
        if prog.function("encode").is_none() || prog.function("decode").is_none() {
            return Err(Error::dsl(format!(
                "algorithm '{name}' must define both encode and decode"
            )));
        }
        // Automatic cost model: sum the passes of the operators each
        // entry point invokes.
        let report = count(source, &prog);
        let encode_passes: f64 = entry_passes(&prog, "encode");
        let decode_passes: f64 = entry_passes(&prog, "decode");
        let kind =
            if report.operators.contains("filter_idx") || report.operators.contains("scatter") {
                AlgorithmKind::Sparsification
            } else {
                AlgorithmKind::Quantization
            };
        let mut this = Self {
            name: Box::leak(name.to_string().into_boxed_str()),
            source: source.to_string(),
            prog,
            params,
            size_intercept: 0.0,
            size_slope: 4.0,
            cost: KernelCostProfile {
                encode_passes: encode_passes.max(1.0),
                decode_passes: decode_passes.max(0.5),
            },
            kind,
        };
        this.fit_size_model()?;
        Ok(this)
    }

    /// Probes the encoder at two sizes with synthetic data and fits
    /// the affine compressed-size model.
    fn fit_size_model(&mut self) -> Result<()> {
        let mut rng = Xoshiro256::new(0xC0117);
        let probe = |this: &Self, n: usize, rng: &mut Xoshiro256| -> Result<f64> {
            let grad: Vec<f32> = (0..n).map(|_| rng.next_gaussian() as f32).collect();
            Ok(this.encode(&grad, 7).len() as f64)
        };
        let (n1, n2) = (2048usize, 8192usize);
        let s1 = probe(self, n1, &mut rng)?;
        let s2 = probe(self, n2, &mut rng)?;
        self.size_slope = (s2 - s1) / (n2 - n1) as f64;
        self.size_intercept = s1 - self.size_slope * n1 as f64;
        Ok(())
    }

    /// The DSL source.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The Table 5 accounting for this algorithm.
    pub fn loc_report(&self) -> LocReport {
        count(&self.source, &self.prog)
    }

    /// The generated CUDA translation unit.
    pub fn cuda_source(&self) -> String {
        crate::cuda::emit(&self.prog, self.name)
    }
}

/// Total operator passes reachable from an entry point (one level of
/// udf calls is enough: udfs are element-wise and cannot call
/// operators on whole arrays meaningfully, but we walk them anyway).
fn entry_passes(prog: &Program, entry: &str) -> f64 {
    use crate::ast::{Expr, Stmt};
    fn walk_expr(e: &Expr, acc: &mut f64) {
        match e {
            Expr::Call { name, args, .. } => {
                *acc += operator_passes(name);
                for a in args {
                    walk_expr(a, acc);
                }
            }
            Expr::Member(b, _) => walk_expr(b, acc),
            Expr::Index(b, i) => {
                walk_expr(b, acc);
                walk_expr(i, acc);
            }
            Expr::Unary(_, i) => walk_expr(i, acc),
            Expr::Bin(_, l, r) => {
                walk_expr(l, acc);
                walk_expr(r, acc);
            }
            _ => {}
        }
    }
    fn walk(stmts: &[Stmt], acc: &mut f64) {
        for s in stmts {
            match s {
                Stmt::Decl(_, _, Some(e)) | Stmt::Assign(_, e) | Stmt::Expr(e) => walk_expr(e, acc),
                Stmt::Return(Some(e)) => walk_expr(e, acc),
                Stmt::If(c, t, e) => {
                    walk_expr(c, acc);
                    walk(t, acc);
                    walk(e, acc);
                }
                _ => {}
            }
        }
    }
    let mut acc = 0.0;
    if let Some(f) = prog.function(entry) {
        walk(&f.body, &mut acc);
    }
    acc
}

impl Compressor for CompiledAlgorithm {
    fn name(&self) -> &'static str {
        self.name
    }

    fn kind(&self) -> AlgorithmKind {
        self.kind
    }

    fn encode(&self, grad: &[f32], seed: u64) -> Vec<u8> {
        let payload = run_encode(&self.prog, &self.params, grad, seed)
            .expect("checked program must execute; probe runs validated it");
        let mut out = Vec::with_capacity(8 + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&[0, 0]); // Reserved.
        out.extend_from_slice(&(grad.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    fn decode(&self, data: &[u8]) -> Result<Vec<f32>> {
        if data.len() < 8 || data[0..2] != MAGIC {
            return Err(Error::codec("not a CompLL stream"));
        }
        let n = u32::from_le_bytes([data[4], data[5], data[6], data[7]]) as usize;
        run_decode(&self.prog, &self.params, &data[8..], n, 0)
    }

    fn compressed_size(&self, elems: usize) -> u64 {
        (8.0 + self.size_intercept + self.size_slope * elems as f64).max(8.0) as u64
    }

    fn cost_profile(&self) -> KernelCostProfile {
        self.cost
    }
}

/// Builds a parameter map from (name, value) pairs.
pub fn param_values(kv: &[(&str, Value)]) -> ParamValues {
    kv.iter().map(|(k, v)| (k.to_string(), v.clone())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIGN_DSL: &str = r#"
        float neg; float pos;
        uint1 signOf(float elem) {
            if (elem > 0) { return 1; }
            return 0;
        }
        float toVal(uint1 q) {
            if (q == 1) { return pos; }
            return neg;
        }
        uint1 isPos(float x) { if (x > 0) { return 1; } return 0; }
        uint1 isNeg(float x) { if (x > 0) { return 0; } return 1; }
        void encode(float* gradient, uint8* compressed) {
            float* p = filter(gradient, isPos);
            float* n = filter(gradient, isNeg);
            pos = 0.0; neg = 0.0;
            if (p.size > 0) { pos = reduce(p, sum) / p.size; }
            if (n.size > 0) { neg = reduce(n, sum) / n.size; }
            uint1* Q = map(gradient, signOf);
            compressed = concat(neg, pos, Q);
        }
        void decode(uint8* compressed, float* gradient) {
            neg = extract(compressed);
            pos = extract(compressed);
            uint1* Q = extract(compressed, gradient.size);
            gradient = map(Q, toVal);
        }
    "#;

    #[test]
    fn compiled_algorithm_is_a_compressor() {
        let alg = CompiledAlgorithm::new("sign", SIGN_DSL, ParamValues::new()).unwrap();
        let grad = vec![2.0f32, 4.0, -1.0, -3.0];
        let enc = alg.encode(&grad, 0);
        let dec = alg.decode(&enc).unwrap();
        assert_eq!(dec, vec![3.0, 3.0, -2.0, -2.0]);
        assert_eq!(alg.name(), "sign");
        assert_eq!(alg.kind(), AlgorithmKind::Quantization);
    }

    #[test]
    fn size_model_predicts_probes() {
        let alg = CompiledAlgorithm::new("sign", SIGN_DSL, ParamValues::new()).unwrap();
        for n in [100usize, 5000, 100_000] {
            let grad = vec![1.0f32; n];
            let actual = alg.encode(&grad, 0).len() as u64;
            let predicted = alg.compressed_size(n);
            let err = (actual as i64 - predicted as i64).abs();
            assert!(err <= 8, "n={n}: predicted {predicted}, actual {actual}");
        }
    }

    #[test]
    fn cost_profile_reflects_operator_usage() {
        let alg = CompiledAlgorithm::new("sign", SIGN_DSL, ParamValues::new()).unwrap();
        let p = alg.cost_profile();
        // encode: 2 filters + 2 reduces + 1 map + 1 concat = 6 passes.
        assert!(p.encode_passes >= 5.0 && p.encode_passes <= 7.0, "{p:?}");
        assert!(p.decode_passes >= 1.0, "{p:?}");
    }

    #[test]
    fn decode_rejects_foreign_streams() {
        let alg = CompiledAlgorithm::new("sign", SIGN_DSL, ParamValues::new()).unwrap();
        assert!(alg.decode(&[1, 2, 3]).is_err());
        assert!(alg.decode(&[0xFF; 20]).is_err());
    }

    #[test]
    fn missing_decode_rejected() {
        let err = match CompiledAlgorithm::new(
            "bad",
            "void encode(float* gradient, uint8* compressed) { compressed = concat(0); }",
            ParamValues::new(),
        ) {
            Err(e) => e,
            Ok(_) => panic!("should not compile"),
        };
        assert!(err.to_string().contains("both encode and decode"));
    }
}

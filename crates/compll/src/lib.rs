//! CompLL — the gradient compression toolkit of HiPress (§4).
//!
//! CompLL lets practitioners express a gradient compression algorithm
//! in ~20 lines of a C-like DSL (Figure 5) and turns it into an
//! optimized, integrated on-GPU implementation. This crate reproduces
//! the whole pipeline:
//!
//! * [`lexer`] / [`parser`] / [`ast`] — the DSL front end (the exact
//!   Figure 5 syntax, including `param` blocks, sub-byte integer
//!   types `uint1`/`uint2`/`uint4`, user-defined functions, and
//!   `random<float>(a, b)`);
//! * [`typeck`] — a static checker (scopes, operator signatures,
//!   numeric promotion, packed-array element types);
//! * [`ops`] — the common operator library of Table 4
//!   (`sort`/`filter`/`map`/`reduce`/`random`/`concat`/`extract`)
//!   plus registered extension operators (`filter_idx`, `gather`,
//!   `scatter`, `sample`) in the spirit of §4.4's "CompLL is open and
//!   allows registering new operators";
//! * [`interp`] — an evaluator that executes a checked program on
//!   real gradients, making every DSL-defined algorithm a working
//!   [`hipress_compress::Compressor`] (this is the "automated
//!   integration into DNN systems": [`CompiledAlgorithm`] plugs
//!   straight into CaSync);
//! * [`cuda`] — the code generator that emits the CUDA C skeleton a
//!   real deployment would compile (used for inspection and the
//!   Table 5 accounting);
//! * [`algorithms`] — the five state-of-the-art algorithms written in
//!   the DSL (onebit, TBQ, TernGrad, DGC, GradDrop), validated
//!   against the handwritten `hipress-compress` implementations;
//! * [`loc`] — lines-of-code accounting reproducing Table 5.

#![forbid(unsafe_code)]

pub mod algorithms;
pub mod ast;
pub mod cuda;
pub mod interp;
pub mod lexer;
pub mod loc;
pub mod ops;
pub mod parser;
pub mod typeck;

mod compiled;

pub use compiled::{param_values, CompiledAlgorithm};

use hipress_util::Result;
use std::sync::OnceLock;

/// The signature of an installed post-typeck dataflow check.
pub type DataflowCheck = fn(&ast::Program) -> Result<()>;

static DATAFLOW_CHECK: OnceLock<DataflowCheck> = OnceLock::new();

/// Installs a dataflow analyzer that debug builds run on every
/// program [`compile`] accepts.
///
/// `hipress-lint` registers its analyzer here (via
/// `hipress_lint::install`); the indirection keeps this crate free of
/// a dependency on its own analyzer. Idempotent: the first installed
/// check wins.
pub fn install_dataflow_check(check: DataflowCheck) {
    let _ = DATAFLOW_CHECK.set(check);
}

/// Front-to-back compilation: source → checked AST.
///
/// Debug builds additionally run the installed dataflow check (if
/// any) after the type checker.
///
/// # Errors
///
/// Returns a [`hipress_util::Error::Dsl`] describing the first lexing,
/// parsing, or type error, or a [`hipress_util::Error::Lint`] from
/// the installed dataflow check.
pub fn compile(source: &str) -> Result<ast::Program> {
    let tokens = lexer::lex(source)?;
    let program = parser::parse(&tokens)?;
    typeck::check(&program)?;
    #[cfg(debug_assertions)]
    if let Some(check) = DATAFLOW_CHECK.get() {
        check(&program)?;
    }
    Ok(program)
}

//! Static checker for CompLL programs.
//!
//! Verifies scoping, operator and function signatures, the
//! encode/decode entry-point shapes (Figure 4), and C-style numeric
//! typing (implicit promotion among `uintN`/`int32`/`float`,
//! integer-only shifts). `extract` is context-typed: it may only
//! appear as the whole right-hand side of a declaration or
//! assignment, taking that target's type.

use crate::ast::*;
use hipress_util::{Error, Result};
use std::collections::HashMap;

/// Internal checker type: a value type or a function reference (udfs
/// are passed to operators by name).
#[derive(Debug, Clone, PartialEq)]
enum T {
    Val(Ty),
    Fn(String),
}

struct Checker<'a> {
    prog: &'a Program,
    globals: HashMap<&'a str, Ty>,
    param_fields: HashMap<&'a str, Ty>,
    fns: HashMap<&'a str, (&'a [(String, Ty)], Ty)>,
}

/// Checks a parsed program.
///
/// # Errors
///
/// Returns the first type error found.
pub fn check(prog: &Program) -> Result<()> {
    let mut globals = HashMap::new();
    for (name, ty) in &prog.globals {
        if globals.insert(name.as_str(), *ty).is_some() {
            return Err(Error::dsl(format!("duplicate global '{name}'")));
        }
    }
    let mut param_fields = HashMap::new();
    for block in &prog.params {
        for (f, ty) in &block.fields {
            param_fields.insert(f.as_str(), *ty);
        }
    }
    let mut fns = HashMap::new();
    for f in &prog.functions {
        if fns
            .insert(f.name.as_str(), (f.params.as_slice(), f.ret))
            .is_some()
        {
            return Err(Error::dsl(format!("duplicate function '{}'", f.name)));
        }
    }
    let checker = Checker {
        prog,
        globals,
        param_fields,
        fns,
    };
    checker.check_entry_points()?;
    for f in &prog.functions {
        checker.check_function(f)?;
    }
    Ok(())
}

impl Checker<'_> {
    fn check_entry_points(&self) -> Result<()> {
        if let Some(enc) = self.prog.function("encode") {
            let ok = enc.ret == Ty::Void
                && enc.params.len() >= 2
                && enc.params[0].1 == Ty::Arr(ScalarTy::Float)
                && enc.params[1].1 == Ty::Bytes
                && enc
                    .params
                    .get(2)
                    .map(|p| p.1 == Ty::ParamStruct)
                    .unwrap_or(true);
            if !ok {
                return Err(Error::dsl(
                    "encode must be void encode(float* gradient, uint8* compressed[, Params p])",
                ));
            }
        }
        if let Some(dec) = self.prog.function("decode") {
            let ok = dec.ret == Ty::Void
                && dec.params.len() >= 2
                && dec.params[0].1 == Ty::Bytes
                && dec.params[1].1 == Ty::Arr(ScalarTy::Float)
                && dec
                    .params
                    .get(2)
                    .map(|p| p.1 == Ty::ParamStruct)
                    .unwrap_or(true);
            if !ok {
                return Err(Error::dsl(
                    "decode must be void decode(uint8* compressed, float* gradient[, Params p])",
                ));
            }
        }
        Ok(())
    }

    fn check_function(&self, f: &Function) -> Result<()> {
        let mut scope: HashMap<String, Ty> = HashMap::new();
        for (name, ty) in &f.params {
            scope.insert(name.clone(), *ty);
        }
        self.check_block(&f.body, &mut scope, f)?;
        Ok(())
    }

    fn check_block(
        &self,
        stmts: &[Stmt],
        scope: &mut HashMap<String, Ty>,
        f: &Function,
    ) -> Result<()> {
        for stmt in stmts {
            match stmt {
                Stmt::Decl(name, ty, init) => {
                    if let Some(e) = init {
                        let got = self.type_of_rhs(e, *ty, scope, f)?;
                        self.check_assignable(*ty, got, name, f)?;
                    }
                    scope.insert(name.clone(), *ty);
                }
                Stmt::Assign(name, e) => {
                    let target = self.lookup(name, scope).ok_or_else(|| {
                        Error::dsl(format!("{}: assignment to undeclared '{name}'", f.name))
                    })?;
                    let got = self.type_of_rhs(e, target, scope, f)?;
                    self.check_assignable(target, got, name, f)?;
                }
                Stmt::Return(e) => match (e, f.ret) {
                    (None, Ty::Void) => {}
                    (Some(e), ret) if ret != Ty::Void => {
                        let got = self.type_of(e, scope, f)?;
                        self.check_assignable(ret, got, "return value", f)?;
                    }
                    _ => {
                        return Err(Error::dsl(format!(
                            "{}: return does not match declared type {:?}",
                            f.name, f.ret
                        )));
                    }
                },
                Stmt::If(cond, then, els) => {
                    let ct = self.type_of(cond, scope, f)?;
                    if !matches!(ct, T::Val(t) if t.is_numeric()) {
                        return Err(Error::dsl(format!(
                            "{}: if-condition must be numeric",
                            f.name
                        )));
                    }
                    let mut s1 = scope.clone();
                    self.check_block(then, &mut s1, f)?;
                    let mut s2 = scope.clone();
                    self.check_block(els, &mut s2, f)?;
                }
                Stmt::Expr(e) => {
                    self.type_of(e, scope, f)?;
                }
            }
        }
        Ok(())
    }

    /// Types a right-hand side, allowing context-typed `extract`.
    fn type_of_rhs(
        &self,
        e: &Expr,
        target: Ty,
        scope: &HashMap<String, Ty>,
        f: &Function,
    ) -> Result<T> {
        if let Expr::Call { name, args, .. } = e {
            if name == "extract" {
                if args.is_empty() || args.len() > 2 {
                    return Err(Error::dsl(format!(
                        "{}: extract takes (stream) or (stream, count)",
                        f.name
                    )));
                }
                let st = self.type_of(&args[0], scope, f)?;
                if st != T::Val(Ty::Bytes) {
                    return Err(Error::dsl(format!(
                        "{}: extract's first argument must be a uint8* stream",
                        f.name
                    )));
                }
                if let Some(count) = args.get(1) {
                    let ct = self.type_of(count, scope, f)?;
                    if !matches!(ct, T::Val(t) if t.is_numeric()) {
                        return Err(Error::dsl(format!(
                            "{}: extract count must be numeric",
                            f.name
                        )));
                    }
                }
                // extract is typed by its destination.
                return Ok(T::Val(target));
            }
        }
        self.type_of(e, scope, f)
    }

    fn check_assignable(&self, target: Ty, got: T, what: &str, f: &Function) -> Result<()> {
        let got = match got {
            T::Val(t) => t,
            T::Fn(name) => {
                return Err(Error::dsl(format!(
                    "{}: cannot assign function '{name}' to {what}",
                    f.name
                )));
            }
        };
        let ok = match (target, got) {
            (a, b) if a == b => true,
            // C-style implicit numeric conversion.
            (a, b) if a.is_numeric() && b.is_numeric() => true,
            // `uint8*` is both the packed-byte array and the stream
            // type; the layouts are identical.
            (Ty::Bytes, Ty::Arr(ScalarTy::UInt(8))) => true,
            (Ty::Arr(ScalarTy::UInt(8)), Ty::Bytes) => true,
            _ => false,
        };
        if ok {
            Ok(())
        } else {
            Err(Error::dsl(format!(
                "{}: cannot assign {got:?} to {what} of type {target:?}",
                f.name
            )))
        }
    }

    fn lookup(&self, name: &str, scope: &HashMap<String, Ty>) -> Option<Ty> {
        scope
            .get(name)
            .copied()
            .or_else(|| self.globals.get(name).copied())
    }

    fn type_of(&self, e: &Expr, scope: &HashMap<String, Ty>, f: &Function) -> Result<T> {
        match e {
            Expr::Int(_) => Ok(T::Val(Ty::Int32)),
            Expr::Float(_) => Ok(T::Val(Ty::Float)),
            Expr::Var(name) => {
                if let Some(t) = self.lookup(name, scope) {
                    Ok(T::Val(t))
                } else if self.fns.contains_key(name.as_str())
                    || matches!(name.as_str(), "smaller" | "greater" | "sum")
                {
                    Ok(T::Fn(name.clone()))
                } else {
                    Err(Error::dsl(format!("{}: unknown variable '{name}'", f.name)))
                }
            }
            Expr::Member(base, field) => {
                let bt = self.type_of(base, scope, f)?;
                match (bt, field.as_str()) {
                    (T::Val(Ty::ParamStruct), field) => self
                        .param_fields
                        .get(field)
                        .map(|t| T::Val(*t))
                        .ok_or_else(|| {
                            Error::dsl(format!("{}: unknown parameter field '{field}'", f.name))
                        }),
                    (T::Val(Ty::Arr(_) | Ty::Bytes), "size") => Ok(T::Val(Ty::Int32)),
                    (bt, field) => Err(Error::dsl(format!(
                        "{}: no member '{field}' on {bt:?}",
                        f.name
                    ))),
                }
            }
            Expr::Index(base, idx) => {
                let bt = self.type_of(base, scope, f)?;
                let it = self.type_of(idx, scope, f)?;
                if !matches!(it, T::Val(t) if t.is_numeric()) {
                    return Err(Error::dsl(format!("{}: index must be numeric", f.name)));
                }
                match bt {
                    T::Val(Ty::Arr(ScalarTy::Float)) => Ok(T::Val(Ty::Float)),
                    T::Val(Ty::Arr(ScalarTy::Int32)) => Ok(T::Val(Ty::Int32)),
                    T::Val(Ty::Arr(ScalarTy::UInt(b))) => Ok(T::Val(Ty::UInt(b))),
                    T::Val(Ty::Bytes) => Ok(T::Val(Ty::UInt(8))),
                    other => Err(Error::dsl(format!("{}: cannot index {other:?}", f.name))),
                }
            }
            Expr::Unary(op, inner) => {
                let t = self.type_of(inner, scope, f)?;
                match (op, &t) {
                    (UnOp::Neg, T::Val(ty)) if ty.is_numeric() => Ok(t),
                    (UnOp::Not, T::Val(ty)) if ty.is_numeric() => Ok(T::Val(Ty::Int32)),
                    _ => Err(Error::dsl(format!(
                        "{}: unary {op:?} on non-numeric {t:?}",
                        f.name
                    ))),
                }
            }
            Expr::Bin(op, lhs, rhs) => {
                let lt = self.type_of(lhs, scope, f)?;
                let rt = self.type_of(rhs, scope, f)?;
                let (T::Val(l), T::Val(r)) = (&lt, &rt) else {
                    return Err(Error::dsl(format!(
                        "{}: operator {op:?} on function reference",
                        f.name
                    )));
                };
                if !l.is_numeric() || !r.is_numeric() {
                    return Err(Error::dsl(format!(
                        "{}: operator {op:?} needs numeric operands, got {l:?} and {r:?}",
                        f.name
                    )));
                }
                match op {
                    BinOp::Shl | BinOp::Shr | BinOp::Rem => {
                        if *l == Ty::Float || *r == Ty::Float {
                            return Err(Error::dsl(format!(
                                "{}: {op:?} needs integer operands",
                                f.name
                            )));
                        }
                        Ok(T::Val(Ty::Int32))
                    }
                    BinOp::Eq
                    | BinOp::Ne
                    | BinOp::Lt
                    | BinOp::Gt
                    | BinOp::Le
                    | BinOp::Ge
                    | BinOp::And
                    | BinOp::Or => Ok(T::Val(Ty::Int32)),
                    _ => {
                        if *l == Ty::Float || *r == Ty::Float {
                            Ok(T::Val(Ty::Float))
                        } else {
                            Ok(T::Val(Ty::Int32))
                        }
                    }
                }
            }
            Expr::Call { name, args, .. } => self.type_of_call(name, args, scope, f),
        }
    }

    fn udf_ret(&self, fname: &str, f: &Function) -> Result<Ty> {
        match fname {
            "smaller" | "greater" | "sum" => Ok(Ty::Float),
            _ => self
                .fns
                .get(fname)
                .map(|(_, ret)| *ret)
                .ok_or_else(|| Error::dsl(format!("{}: unknown function '{fname}'", f.name))),
        }
    }

    fn expect_fn_arg(&self, e: &Expr, f: &Function) -> Result<String> {
        match self.type_of(e, &HashMap::new(), f) {
            Ok(T::Fn(name)) => Ok(name),
            _ => match e {
                Expr::Var(name) => Ok(name.clone()),
                _ => Err(Error::dsl(format!(
                    "{}: expected a function name argument",
                    f.name
                ))),
            },
        }
    }

    fn type_of_call(
        &self,
        name: &str,
        args: &[Expr],
        scope: &HashMap<String, Ty>,
        f: &Function,
    ) -> Result<T> {
        let arg_t = |i: usize| -> Result<T> { self.type_of(&args[i], scope, f) };
        let need = |n: usize| -> Result<()> {
            if args.len() != n {
                Err(Error::dsl(format!(
                    "{}: {name} takes {n} arguments, got {}",
                    f.name,
                    args.len()
                )))
            } else {
                Ok(())
            }
        };
        match name {
            // Math builtins.
            "floor" | "ceil" | "abs" | "sqrt" => {
                need(1)?;
                match arg_t(0)? {
                    T::Val(t) if t.is_numeric() => Ok(T::Val(Ty::Float)),
                    other => Err(Error::dsl(format!("{}: {name} on {other:?}", f.name))),
                }
            }
            "min" | "max" => {
                need(2)?;
                for i in 0..2 {
                    if !matches!(arg_t(i)?, T::Val(t) if t.is_numeric()) {
                        return Err(Error::dsl(format!("{}: {name} needs numbers", f.name)));
                    }
                }
                Ok(T::Val(Ty::Float))
            }
            "random" => {
                need(2)?;
                Ok(T::Val(Ty::Float))
            }
            "reduce" => {
                need(2)?;
                if arg_t(0)? != T::Val(Ty::Arr(ScalarTy::Float)) {
                    return Err(Error::dsl(format!(
                        "{}: reduce needs a float array",
                        f.name
                    )));
                }
                let udf = self.expect_fn_arg(&args[1], f)?;
                self.udf_ret(&udf, f)?;
                Ok(T::Val(Ty::Float))
            }
            "map" => {
                need(2)?;
                let arr = arg_t(0)?;
                let udf = self.expect_fn_arg(&args[1], f)?;
                let ret = self.udf_ret(&udf, f)?;
                let elem = match ret {
                    Ty::UInt(b) => ScalarTy::UInt(b),
                    Ty::Int32 => ScalarTy::Int32,
                    Ty::Float => ScalarTy::Float,
                    other => {
                        return Err(Error::dsl(format!(
                            "{}: map udf must return a scalar, returns {other:?}",
                            f.name
                        )));
                    }
                };
                match arr {
                    T::Val(Ty::Arr(_) | Ty::Bytes) => Ok(T::Val(Ty::Arr(elem))),
                    other => Err(Error::dsl(format!("{}: map over {other:?}", f.name))),
                }
            }
            "filter" | "sort" | "sample" => {
                need(2)?;
                if arg_t(0)? != T::Val(Ty::Arr(ScalarTy::Float)) {
                    return Err(Error::dsl(format!(
                        "{}: {name} needs a float array",
                        f.name
                    )));
                }
                if name == "sample" {
                    if !matches!(arg_t(1)?, T::Val(t) if t.is_numeric()) {
                        return Err(Error::dsl(format!(
                            "{}: sample count must be numeric",
                            f.name
                        )));
                    }
                } else {
                    let udf = self.expect_fn_arg(&args[1], f)?;
                    self.udf_ret(&udf, f)?;
                }
                Ok(T::Val(Ty::Arr(ScalarTy::Float)))
            }
            "filter_idx" => {
                need(2)?;
                if arg_t(0)? != T::Val(Ty::Arr(ScalarTy::Float)) {
                    return Err(Error::dsl(format!(
                        "{}: filter_idx needs a float array",
                        f.name
                    )));
                }
                let udf = self.expect_fn_arg(&args[1], f)?;
                self.udf_ret(&udf, f)?;
                Ok(T::Val(Ty::Arr(ScalarTy::Int32)))
            }
            "gather" => {
                need(2)?;
                if arg_t(0)? != T::Val(Ty::Arr(ScalarTy::Float))
                    || arg_t(1)? != T::Val(Ty::Arr(ScalarTy::Int32))
                {
                    return Err(Error::dsl(format!(
                        "{}: gather needs (float*, int32*)",
                        f.name
                    )));
                }
                Ok(T::Val(Ty::Arr(ScalarTy::Float)))
            }
            "scatter" => {
                need(3)?;
                if arg_t(0)? != T::Val(Ty::Arr(ScalarTy::Int32))
                    || arg_t(1)? != T::Val(Ty::Arr(ScalarTy::Float))
                {
                    return Err(Error::dsl(format!(
                        "{}: scatter needs (int32*, float*, count)",
                        f.name
                    )));
                }
                if !matches!(arg_t(2)?, T::Val(t) if t.is_numeric()) {
                    return Err(Error::dsl(format!(
                        "{}: scatter count must be numeric",
                        f.name
                    )));
                }
                Ok(T::Val(Ty::Arr(ScalarTy::Float)))
            }
            "concat" => {
                if args.is_empty() {
                    return Err(Error::dsl(format!("{}: concat needs arguments", f.name)));
                }
                for (i, _) in args.iter().enumerate() {
                    arg_t(i)?; // Any value type concats.
                }
                Ok(T::Val(Ty::Bytes))
            }
            "extract" => Err(Error::dsl(format!(
                "{}: extract may only appear as the whole right-hand side of an assignment",
                f.name
            ))),
            // User-defined function call.
            _ => {
                let (params, ret) = self
                    .fns
                    .get(name)
                    .ok_or_else(|| Error::dsl(format!("{}: unknown function '{name}'", f.name)))?;
                need(params.len())?;
                for (i, (pname, pty)) in params.iter().enumerate() {
                    let at = arg_t(i)?;
                    self.check_assignable(*pty, at, pname, f)?;
                }
                Ok(T::Val(*ret))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::compile;

    #[test]
    fn figure5_program_checks() {
        let src = r#"
            param EncodeParams { uint8 bitwidth; }
            float min, max, gap;
            uint2 floatToUint(float elem) {
                float r = (elem - min) / gap;
                return floor(r + random<float>(0, 1));
            }
            void encode(float* gradient, uint8* compressed, EncodeParams params) {
                min = reduce(gradient, smaller);
                max = reduce(gradient, greater);
                gap = (max - min) / ((1 << params.bitwidth) - 1);
                uint2* Q = map(gradient, floatToUint);
                compressed = concat(params.bitwidth, min, max, Q);
            }
        "#;
        compile(src).unwrap();
    }

    #[test]
    fn rejects_unknown_variable() {
        let err = compile(
            "void encode(float* gradient, uint8* compressed) { compressed = concat(mystery); }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown variable"), "{err}");
    }

    #[test]
    fn rejects_bad_entry_signature() {
        let err =
            compile("int32 encode(float* gradient, uint8* compressed) { return 1; }").unwrap_err();
        assert!(err.to_string().contains("encode must be"), "{err}");
    }

    #[test]
    fn rejects_float_shift() {
        let err = compile("void f() { float x = 1.5; int32 y = x << 2; }").unwrap_err();
        assert!(err.to_string().contains("integer operands"), "{err}");
    }

    #[test]
    fn rejects_array_scalar_confusion() {
        let err = compile("void encode(float* gradient, uint8* compressed) { float x = gradient; compressed = concat(x); }")
            .unwrap_err();
        assert!(err.to_string().contains("cannot assign"), "{err}");
    }

    #[test]
    fn rejects_wrong_arity() {
        let err = compile(
            "float half(float x) { return x / 2; } void encode(float* gradient, uint8* compressed) { float y = half(1, 2); compressed = concat(y); }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("takes 1 arguments"), "{err}");
    }

    #[test]
    fn rejects_extract_in_expression() {
        let err = compile(
            "void decode(uint8* compressed, float* gradient) { float x = 1 + extract(compressed); }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("extract"), "{err}");
    }

    #[test]
    fn member_size_is_int() {
        compile(
            "void encode(float* gradient, uint8* compressed) { int32 n = gradient.size; compressed = concat(n); }",
        )
        .unwrap();
    }

    #[test]
    fn param_fields_resolve() {
        let err = compile(
            "param P { float rate; } void encode(float* gradient, uint8* compressed, P params) { float r = params.missing; compressed = concat(r); }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown parameter field"), "{err}");
    }
}

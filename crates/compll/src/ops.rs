//! Runtime values and the common operator library (Table 4).
//!
//! Everything an executing DSL program touches is a [`Value`];
//! sub-byte integer arrays are bit-packed [`PackedArr`]s exactly as
//! the generated GPU code would store them ("CompLL uses consecutive
//! bits of one or more bytes to represent this array compactly",
//! §4.3).
//!
//! The operator library contains the seven Table 4 operators plus
//! four registered extensions (`filter_idx`, `gather`, `scatter`,
//! `sample`) used by the sparsification algorithms — the paper's
//! library is explicitly open to registration (§4.4).

use hipress_util::bits::{packed_len, BitReader, BitWriter};
use hipress_util::{Error, Result};

/// A bit-packed array of `bits`-wide unsigned integers.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedArr {
    /// Element width in bits (1..=8).
    pub bits: u8,
    /// Number of elements.
    pub len: usize,
    /// LSB-first packed data, zero padded to a byte.
    pub data: Vec<u8>,
}

impl PackedArr {
    /// Creates an array from element values (masked to width).
    pub fn from_values(bits: u8, values: impl IntoIterator<Item = u64>) -> Self {
        let mut w = BitWriter::new();
        let mask = if bits >= 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        let mut len = 0;
        for v in values {
            w.write(v & mask, bits as u32);
            len += 1;
        }
        Self {
            bits,
            len,
            data: w.finish(),
        }
    }

    /// Reads element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> u64 {
        assert!(
            i < self.len,
            "packed index {i} out of bounds ({})",
            self.len
        );
        let mut r = BitReader::new(&self.data);
        r.skip(i * self.bits as usize).expect("bounds checked");
        r.read(self.bits as u32).expect("bounds checked")
    }

    /// Iterates over all elements.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        let mut r = BitReader::new(&self.data);
        (0..self.len).map(move |_| r.read(self.bits as u32).expect("within len"))
    }
}

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Float scalar (f64 internally, f32 on the wire).
    F(f64),
    /// 32-bit signed integer scalar.
    I(i64),
    /// Unsigned scalar of the given bit width.
    U(u64, u8),
    /// Dense float array.
    FArr(Vec<f32>),
    /// Dense int32 array.
    IArr(Vec<i32>),
    /// Packed unsigned array.
    UArr(PackedArr),
    /// Byte stream (`uint8*`).
    Bytes(Vec<u8>),
    /// The opaque algorithm-parameter struct (member access reads the
    /// configured parameter values).
    Params,
    /// No value.
    Unit,
}

impl Value {
    /// Numeric view as f64 (scalars only).
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Value::F(v) => Ok(*v),
            Value::I(v) => Ok(*v as f64),
            Value::U(v, _) => Ok(*v as f64),
            other => Err(Error::dsl(format!("expected a scalar, found {other:?}"))),
        }
    }

    /// Numeric view as i64 (scalars only; floats truncate like C).
    pub fn as_i64(&self) -> Result<i64> {
        match self {
            Value::F(v) => Ok(*v as i64),
            Value::I(v) => Ok(*v),
            Value::U(v, _) => Ok(*v as i64),
            other => Err(Error::dsl(format!("expected a scalar, found {other:?}"))),
        }
    }

    /// Truthiness (C semantics: non-zero).
    pub fn truthy(&self) -> Result<bool> {
        Ok(self.as_f64()? != 0.0)
    }

    /// The `.size` member: element count of an array value.
    pub fn size(&self) -> Result<usize> {
        match self {
            Value::FArr(v) => Ok(v.len()),
            Value::IArr(v) => Ok(v.len()),
            Value::UArr(p) => Ok(p.len),
            Value::Bytes(b) => Ok(b.len()),
            other => Err(Error::dsl(format!(".size on non-array {other:?}"))),
        }
    }
}

/// Appends `v` to a byte stream the way `concat` lays values out:
/// scalars by their width (uintN → one byte, int32/float → 4 bytes
/// LE), arrays byte-aligned with packed payloads.
pub fn concat_append(out: &mut Vec<u8>, v: &Value) -> Result<()> {
    match v {
        Value::F(x) => out.extend_from_slice(&(*x as f32).to_le_bytes()),
        Value::I(x) => out.extend_from_slice(&(*x as i32).to_le_bytes()),
        Value::U(x, _bits) => out.push(*x as u8),
        Value::FArr(a) => {
            for x in a {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        Value::IArr(a) => {
            for x in a {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        Value::UArr(p) => out.extend_from_slice(&p.data),
        Value::Bytes(b) => out.extend_from_slice(b),
        Value::Params | Value::Unit => {
            return Err(Error::dsl("cannot concat a non-data value"));
        }
    }
    Ok(())
}

/// A cursor over a received stream for `extract` (§ Table 4:
/// "extract metadata from the compressed G'").
#[derive(Debug, Clone)]
pub struct ExtractCursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ExtractCursor<'a> {
    /// Creates a cursor at the start of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::codec(format!(
                "extract past end of stream (need {n}, have {})",
                self.remaining()
            )));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Extracts a float scalar.
    pub fn float(&mut self) -> Result<f64> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]) as f64)
    }

    /// Extracts an int32 scalar.
    pub fn int32(&mut self) -> Result<i64> {
        let b = self.take(4)?;
        Ok(i32::from_le_bytes([b[0], b[1], b[2], b[3]]) as i64)
    }

    /// Extracts a uintN scalar (stored as one byte).
    pub fn uint(&mut self, bits: u8) -> Result<u64> {
        let b = self.take(1)?;
        let mask = if bits >= 8 {
            0xFF
        } else {
            (1u16 << bits) as u64 - 1
        };
        Ok((b[0] as u64) & mask)
    }

    /// Extracts `count` packed uintN elements (byte aligned).
    pub fn uarr(&mut self, bits: u8, count: usize) -> Result<PackedArr> {
        let bytes = packed_len(count, bits as u32);
        let data = self.take(bytes)?.to_vec();
        Ok(PackedArr {
            bits,
            len: count,
            data,
        })
    }

    /// Extracts `count` int32 elements.
    pub fn iarr(&mut self, count: usize) -> Result<Vec<i32>> {
        let b = self.take(count * 4)?;
        Ok(b.chunks_exact(4)
            .map(|c| i32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    /// Extracts `count` float elements.
    pub fn farr(&mut self, count: usize) -> Result<Vec<f32>> {
        let b = self.take(count * 4)?;
        Ok(b.chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }
}

/// Names of the common operators (for the type checker and the cost
/// estimator).
pub const OPERATORS: &[&str] = &[
    "sort",
    "filter",
    "map",
    "reduce",
    "random",
    "concat",
    "extract", // Table 4
    "filter_idx",
    "gather",
    "scatter",
    "sample", // Registered extensions.
];

/// Estimated full memory passes per operator invocation, used to
/// derive the generated kernel's cost profile automatically.
pub fn operator_passes(name: &str) -> f64 {
    match name {
        "map" | "filter" | "filter_idx" | "gather" | "concat" => 1.0,
        "reduce" => 1.0,
        "scatter" => 1.5,
        "sort" => 4.0, // Bitonic/radix multi-pass on GPU.
        "sample" => 0.05,
        "extract" => 0.5,
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_roundtrip() {
        for bits in [1u8, 2, 4, 8] {
            let vals: Vec<u64> = (0..100).map(|i| i % (1 << bits)).collect();
            let p = PackedArr::from_values(bits, vals.iter().copied());
            assert_eq!(p.len, 100);
            assert_eq!(p.data.len(), packed_len(100, bits as u32));
            for (i, &v) in vals.iter().enumerate() {
                assert_eq!(p.get(i), v, "bits={bits} i={i}");
            }
            let collected: Vec<u64> = p.iter().collect();
            assert_eq!(collected, vals);
        }
    }

    #[test]
    fn packed_masks_overflow() {
        let p = PackedArr::from_values(2, [5u64]); // 5 & 0b11 = 1
        assert_eq!(p.get(0), 1);
    }

    #[test]
    fn concat_and_extract_roundtrip() {
        let mut out = Vec::new();
        concat_append(&mut out, &Value::U(2, 8)).unwrap();
        concat_append(&mut out, &Value::F(1.5)).unwrap();
        concat_append(&mut out, &Value::I(-7)).unwrap();
        let p = PackedArr::from_values(2, [0u64, 1, 2, 3, 1]);
        concat_append(&mut out, &Value::UArr(p.clone())).unwrap();
        concat_append(&mut out, &Value::FArr(vec![2.0, -3.0])).unwrap();
        concat_append(&mut out, &Value::IArr(vec![9, 10])).unwrap();

        let mut c = ExtractCursor::new(&out);
        assert_eq!(c.uint(8).unwrap(), 2);
        assert_eq!(c.float().unwrap(), 1.5);
        assert_eq!(c.int32().unwrap(), -7);
        let q = c.uarr(2, 5).unwrap();
        assert_eq!(q, p);
        assert_eq!(c.farr(2).unwrap(), vec![2.0, -3.0]);
        assert_eq!(c.iarr(2).unwrap(), vec![9, 10]);
        assert_eq!(c.remaining(), 0);
        assert!(c.float().is_err());
    }

    #[test]
    fn value_scalars() {
        assert_eq!(Value::F(2.9).as_i64().unwrap(), 2);
        assert_eq!(Value::I(-3).as_f64().unwrap(), -3.0);
        assert!(Value::U(1, 1).truthy().unwrap());
        assert!(!Value::I(0).truthy().unwrap());
        assert!(Value::FArr(vec![]).as_f64().is_err());
        assert_eq!(Value::FArr(vec![1.0; 7]).size().unwrap(), 7);
        assert!(Value::F(1.0).size().is_err());
    }

    #[test]
    fn operator_registry() {
        assert!(OPERATORS.contains(&"map"));
        assert!(OPERATORS.contains(&"scatter"));
        assert!(operator_passes("sort") > operator_passes("map"));
        assert_eq!(operator_passes("unknown"), 0.0);
    }
}

//! Cross-validation: the CompLL (DSL-generated) algorithms must be
//! semantically equivalent to the handwritten `hipress-compress`
//! implementations — the correctness half of §4.4's comparison.

use hipress_compll::algorithms;
use hipress_compress::{Algorithm, Compressor};
use hipress_tensor::synth::{generate, GradientShape};

fn test_grad(n: usize, seed: u64) -> Vec<f32> {
    generate(n, GradientShape::default_dnn(), seed).into_vec()
}

/// onebit is deterministic: CompLL and handwritten decodes must agree
/// element-for-element.
#[test]
fn onebit_matches_handwritten_exactly() {
    let hand = Algorithm::OneBit.build().unwrap();
    let dsl = algorithms::onebit().unwrap();
    for seed in 0..3u64 {
        let grad = test_grad(3000, seed);
        let a = hand.decode(&hand.encode(&grad, 0)).unwrap();
        let b = dsl.decode(&dsl.encode(&grad, 0)).unwrap();
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert!(
                (x - y).abs() <= f32::EPSILON * x.abs().max(1.0) * 4.0,
                "element {i}: handwritten {x} vs DSL {y}"
            );
        }
    }
}

/// TBQ is deterministic: identical three-level output.
#[test]
fn tbq_matches_handwritten_exactly() {
    let tau = 0.002f32;
    let hand = Algorithm::Tbq { tau }.build().unwrap();
    let dsl = algorithms::tbq(tau).unwrap();
    let grad = test_grad(5000, 9);
    let a = hand.decode(&hand.encode(&grad, 0)).unwrap();
    let b = dsl.decode(&dsl.encode(&grad, 0)).unwrap();
    assert_eq!(a, b);
}

/// TernGrad is stochastic; both implementations must satisfy the same
/// contract: values on quantization levels, error bounded by one gap,
/// unbiased in expectation.
#[test]
fn terngrad_satisfies_shared_contract() {
    for bitwidth in [2u8, 4, 8] {
        let dsl = algorithms::terngrad(bitwidth).unwrap();
        let grad = test_grad(2000, 5);
        let (lo, hi) = grad
            .iter()
            .fold((f32::INFINITY, f32::NEG_INFINITY), |(a, b), &x| {
                (a.min(x), b.max(x))
            });
        let gap = (hi - lo) / ((1u32 << bitwidth) - 1) as f32;
        let dec = dsl.decode(&dsl.encode(&grad, 11)).unwrap();
        for (o, d) in grad.iter().zip(&dec) {
            assert!(
                (o - d).abs() <= gap * (1.0 + 1e-4) + 1e-6,
                "bitwidth {bitwidth}: error {} exceeds gap {gap}",
                (o - d).abs()
            );
        }
    }
}

/// TernGrad bias check at one interior value.
#[test]
fn terngrad_dsl_is_unbiased() {
    let dsl = algorithms::terngrad(2).unwrap();
    let grad = vec![0.0f32, 3.0, 1.3];
    let mut sum = 0.0f64;
    let trials = 3000u64;
    for seed in 0..trials {
        let dec = dsl.decode(&dsl.encode(&grad, seed)).unwrap();
        sum += dec[2] as f64;
    }
    let mean = sum / trials as f64;
    assert!((mean - 1.3).abs() < 0.06, "biased mean {mean}");
}

/// DGC: same survivor count and the same dominance property; kept
/// values exact.
#[test]
fn dgc_matches_handwritten_semantics() {
    let rate = 0.02;
    let hand = Algorithm::Dgc { rate }.build().unwrap();
    let dsl = algorithms::dgc(rate).unwrap();
    let grad = test_grad(4000, 21);
    let a = hand.decode(&hand.encode(&grad, 0)).unwrap();
    let b = dsl.decode(&dsl.encode(&grad, 0)).unwrap();
    let nz_a = a.iter().filter(|&&x| x != 0.0).count();
    let nz_b = b.iter().filter(|&&x| x != 0.0).count();
    // The DSL version keeps >= k (ties at the threshold); handwritten
    // keeps exactly k.
    assert!(nz_b >= nz_a && nz_b <= nz_a + 8, "{nz_a} vs {nz_b}");
    for (o, d) in grad.iter().zip(&b) {
        assert!(*d == 0.0 || d == o, "kept values must be exact");
    }
}

/// GradDrop: survivor fraction near the configured rate.
#[test]
fn graddrop_rate_honored() {
    let rate = 0.05;
    let dsl = algorithms::graddrop(rate).unwrap();
    let grad = generate(30_000, GradientShape::Gaussian { std_dev: 1.0 }, 3).into_vec();
    let dec = dsl.decode(&dsl.encode(&grad, 13)).unwrap();
    let nz = dec.iter().filter(|&&x| x != 0.0).count();
    let expected = grad.len() as f64 * rate;
    assert!(
        (nz as f64 - expected).abs() / expected < 0.4,
        "{nz} survivors, expected ~{expected}"
    );
}

/// Compressed sizes: the DSL versions' wire overhead is within a few
/// bytes of the handwritten ones (same information content).
#[test]
fn compressed_sizes_comparable() {
    let n = 100_000usize;
    let grad = test_grad(n, 2);
    let pairs: Vec<(Box<dyn Compressor>, Box<dyn Compressor>)> = vec![
        (
            Algorithm::OneBit.build().unwrap(),
            Box::new(algorithms::onebit().unwrap()),
        ),
        (
            Algorithm::Tbq { tau: 0.01 }.build().unwrap(),
            Box::new(algorithms::tbq(0.01).unwrap()),
        ),
        (
            Algorithm::TernGrad { bitwidth: 2 }.build().unwrap(),
            Box::new(algorithms::terngrad(2).unwrap()),
        ),
    ];
    for (hand, dsl) in pairs {
        let sh = hand.encode(&grad, 0).len() as f64;
        let sd = dsl.encode(&grad, 0).len() as f64;
        assert!(
            (sh - sd).abs() / sh < 0.02,
            "{}: handwritten {sh} vs DSL {sd}",
            hand.name()
        );
    }
}

/// The size model advertised to the synchronization layer matches
/// reality for the DSL algorithms.
#[test]
fn size_model_accuracy() {
    for alg in algorithms::paper_suite().unwrap() {
        if alg.name().contains("dgc") || alg.name().contains("graddrop") {
            continue; // Data-dependent sizes: model is expected value.
        }
        let n = 50_000;
        let grad = test_grad(n, 7);
        let actual = alg.encode(&grad, 0).len() as i64;
        let predicted = alg.compressed_size(n) as i64;
        assert!(
            (actual - predicted).abs() <= 16,
            "{}: predicted {predicted}, actual {actual}",
            alg.name()
        );
    }
}

//! The trace data model: tracks, events, counter samples.
//!
//! A [`Trace`] is pure data — no clocks, no locks. Recording handles
//! live in [`crate::tracer`]; serialization in [`crate::chrome`]. Both
//! the simulator (simulated nanoseconds) and CaSync-RT (wall-clock
//! nanoseconds measured from the tracer's epoch) lower into this one
//! model, which is what lets a simulated and a measured run of the
//! same plan render side by side.

use crate::hist::LatencyHistogram;

/// Identifies a registered track within one [`Trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TrackId(pub(crate) usize);

impl TrackId {
    /// The track's index in registration order.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// What kind of data a track carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackKind {
    /// A timeline of spans and instant events (one per node thread).
    Thread,
    /// A sampled numeric series (queue depths).
    Counter,
}

/// One recorded event: a span (`dur_ns > 0` or a zero-length mark) or
/// an instant (`instant == true`).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Display name ("encode", "msg", "run").
    pub name: String,
    /// Grouping category; per-primitive statistics key on this
    /// ("encode", "send", "fabric", "local_agg", "batch", "run").
    pub category: String,
    /// Start, in nanoseconds from the trace origin.
    pub ts_ns: u64,
    /// Duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
    /// True for point events (message arrivals, batch launches).
    pub instant: bool,
    /// Numeric arguments ("bytes_wire", "grad", …), sorted by name —
    /// a canonical order shared with the Chrome JSON reader, which
    /// keeps export → import byte-for-byte lossless.
    pub args: Vec<(String, u64)>,
}

impl Event {
    /// Looks up a numeric argument by name.
    pub fn arg(&self, name: &str) -> Option<u64> {
        self.args.iter().find(|(k, _)| k == name).map(|&(_, v)| v)
    }

    /// End of the event (`ts_ns + dur_ns`).
    pub fn end_ns(&self) -> u64 {
        self.ts_ns + self.dur_ns
    }
}

/// One named track: a thread timeline or a counter series.
#[derive(Debug, Clone, PartialEq)]
pub struct Track {
    /// Track name ("node0", "node0/Q_comp", "engine").
    pub name: String,
    /// Thread timeline or counter series.
    pub kind: TrackKind,
    /// Spans and instants, in recording order ([`TrackKind::Thread`]).
    pub events: Vec<Event>,
    /// `(ts_ns, value)` samples, in recording order
    /// ([`TrackKind::Counter`]).
    pub samples: Vec<(u64, f64)>,
}

/// A complete recorded trace: one process, many tracks.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Which engine produced the trace ("casync-rt", "sim").
    pub process: String,
    tracks: Vec<Track>,
}

impl Trace {
    /// Creates an empty trace for the named process.
    pub fn new(process: &str) -> Self {
        Self {
            process: process.to_string(),
            tracks: Vec::new(),
        }
    }

    /// Registers (or finds) a thread track by name.
    pub fn thread_track(&mut self, name: &str) -> TrackId {
        self.track_of_kind(name, TrackKind::Thread)
    }

    /// Registers (or finds) a counter track by name.
    pub fn counter_track(&mut self, name: &str) -> TrackId {
        self.track_of_kind(name, TrackKind::Counter)
    }

    fn track_of_kind(&mut self, name: &str, kind: TrackKind) -> TrackId {
        if let Some(i) = self.tracks.iter().position(|t| t.name == name) {
            return TrackId(i);
        }
        self.tracks.push(Track {
            name: name.to_string(),
            kind,
            events: Vec::new(),
            samples: Vec::new(),
        });
        TrackId(self.tracks.len() - 1)
    }

    /// Looks up an existing track by name.
    pub fn find_track(&self, name: &str) -> Option<TrackId> {
        self.tracks.iter().position(|t| t.name == name).map(TrackId)
    }

    /// All tracks in registration order.
    pub fn tracks(&self) -> &[Track] {
        &self.tracks
    }

    /// One track by id.
    pub fn track(&self, id: TrackId) -> &Track {
        &self.tracks[id.0]
    }

    /// Records a span on a thread track.
    pub fn push_span(
        &mut self,
        track: TrackId,
        name: &str,
        category: &str,
        ts_ns: u64,
        dur_ns: u64,
        args: &[(&str, u64)],
    ) {
        self.push_event(track, name, category, ts_ns, dur_ns, false, args);
    }

    /// Records an instant event on a thread track.
    pub fn push_instant(
        &mut self,
        track: TrackId,
        name: &str,
        category: &str,
        ts_ns: u64,
        args: &[(&str, u64)],
    ) {
        self.push_event(track, name, category, ts_ns, 0, true, args);
    }

    fn push_event(
        &mut self,
        track: TrackId,
        name: &str,
        category: &str,
        ts_ns: u64,
        dur_ns: u64,
        instant: bool,
        args: &[(&str, u64)],
    ) {
        debug_assert!(matches!(self.tracks[track.0].kind, TrackKind::Thread));
        let mut args: Vec<(String, u64)> = args.iter().map(|&(k, v)| (k.to_string(), v)).collect();
        args.sort_by(|a, b| a.0.cmp(&b.0));
        self.tracks[track.0].events.push(Event {
            name: name.to_string(),
            category: category.to_string(),
            ts_ns,
            dur_ns,
            instant,
            args,
        });
    }

    /// Records one sample on a counter track.
    pub fn push_sample(&mut self, track: TrackId, ts_ns: u64, value: f64) {
        debug_assert!(matches!(self.tracks[track.0].kind, TrackKind::Counter));
        self.tracks[track.0].samples.push((ts_ns, value));
    }

    /// The earliest timestamp in the trace (`0` when empty). Wall-clock
    /// traces start at the tracer's epoch, not at zero; views subtract
    /// this origin so simulated and measured runs align at t=0.
    pub fn origin_ns(&self) -> u64 {
        self.tracks
            .iter()
            .flat_map(|t| {
                t.events
                    .iter()
                    .map(|e| e.ts_ns)
                    .chain(t.samples.iter().map(|&(ts, _)| ts))
            })
            .min()
            .unwrap_or(0)
    }

    /// The latest event end / sample timestamp in the trace.
    pub fn end_ns(&self) -> u64 {
        self.tracks
            .iter()
            .flat_map(|t| {
                t.events
                    .iter()
                    .map(Event::end_ns)
                    .chain(t.samples.iter().map(|&(ts, _)| ts))
            })
            .max()
            .unwrap_or(0)
    }

    /// Total number of events and counter samples.
    pub fn len(&self) -> usize {
        self.tracks
            .iter()
            .map(|t| t.events.len() + t.samples.len())
            .sum()
    }

    /// True when no track recorded anything.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All span/instant events of one category, across tracks.
    pub fn events_of<'a>(&'a self, category: &'a str) -> impl Iterator<Item = &'a Event> {
        self.tracks
            .iter()
            .flat_map(|t| t.events.iter())
            .filter(move |e| e.category == category)
    }

    /// The categories present in the trace, in first-appearance order.
    pub fn categories(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for t in &self.tracks {
            for e in &t.events {
                if !out.contains(&e.category.as_str()) {
                    out.push(&e.category);
                }
            }
        }
        out
    }

    /// The latency distribution of all spans in `category`.
    pub fn latency_histogram(&self, category: &str) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for e in self.events_of(category) {
            if !e.instant {
                h.record(e.dur_ns);
            }
        }
        h
    }

    /// Structural sanity: every registered track carries at least one
    /// event or sample. Returns the names of empty tracks.
    ///
    /// # Errors
    ///
    /// Returns the offending track names so callers (the CI smoke
    /// step) can report which track recorded nothing.
    pub fn validate(&self) -> Result<(), Vec<String>> {
        let empty: Vec<String> = self
            .tracks
            .iter()
            .filter(|t| t.events.is_empty() && t.samples.is_empty())
            .map(|t| t.name.clone())
            .collect();
        if empty.is_empty() {
            Ok(())
        } else {
            Err(empty)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn track_registration_is_idempotent() {
        let mut t = Trace::new("test");
        let a = t.thread_track("node0");
        let b = t.thread_track("node0");
        assert_eq!(a, b);
        assert_eq!(t.find_track("node0"), Some(a));
        assert_eq!(t.find_track("node1"), None);
        let c = t.counter_track("node0/Q_comp");
        assert_ne!(a, c);
        assert_eq!(t.tracks().len(), 2);
    }

    #[test]
    fn span_accounting() {
        let mut t = Trace::new("test");
        let n0 = t.thread_track("node0");
        t.push_span(n0, "encode", "encode", 100, 50, &[("bytes_raw", 4096)]);
        t.push_span(n0, "send", "send", 150, 10, &[("bytes_wire", 512)]);
        t.push_instant(n0, "msg", "fabric", 160, &[]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.origin_ns(), 100);
        assert_eq!(t.end_ns(), 160);
        assert_eq!(t.events_of("encode").count(), 1);
        let e = t.events_of("send").next().unwrap();
        assert_eq!(e.arg("bytes_wire"), Some(512));
        assert_eq!(e.arg("missing"), None);
        assert_eq!(t.categories(), vec!["encode", "send", "fabric"]);
    }

    #[test]
    fn validate_flags_empty_tracks() {
        let mut t = Trace::new("test");
        let n0 = t.thread_track("node0");
        t.thread_track("node1");
        t.push_span(n0, "x", "x", 0, 1, &[]);
        assert_eq!(t.validate(), Err(vec!["node1".to_string()]));
        let n1 = t.find_track("node1").unwrap();
        t.push_span(n1, "x", "x", 0, 1, &[]);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn histogram_from_spans() {
        let mut t = Trace::new("test");
        let n0 = t.thread_track("node0");
        for d in [100u64, 200, 400] {
            t.push_span(n0, "encode", "encode", 0, d, &[]);
        }
        t.push_instant(n0, "msg", "encode", 0, &[]); // instants excluded
        let h = t.latency_histogram("encode");
        assert_eq!(h.count(), 3);
        assert_eq!(h.max_ns(), 400);
    }
}

//! Textual rendering: Figure-9-style utilization bars, side-by-side
//! engine comparison, per-category latency summaries.
//!
//! The paper's Figure 9 contrasts GPU-utilization timelines of
//! compression-aware vs. baseline synchronization. These renderers
//! produce the terminal equivalent: one shaded bar per track, where
//! each cell's shade is the fraction of that time slice the track
//! spent inside a span.

use crate::model::{Trace, Track, TrackKind};
use hipress_util::units::fmt_duration_ns;
use std::fmt::Write as _;

/// Shade for a busy fraction in `[0, 1]`.
fn shade(frac: f64) -> char {
    match frac {
        f if f <= 0.0 => ' ',
        f if f < 0.25 => '░',
        f if f < 0.5 => '▒',
        f if f < 0.75 => '▓',
        _ => '█',
    }
}

/// Merges a track's span intervals (relative to `origin`) into a
/// sorted, non-overlapping list. Nested spans (a `local_agg` inside
/// its `source`) coalesce instead of double-counting.
fn merged_intervals(track: &Track, origin: u64) -> Vec<(u64, u64)> {
    let mut iv: Vec<(u64, u64)> = track
        .events
        .iter()
        .filter(|e| !e.instant && e.dur_ns > 0)
        .map(|e| {
            (
                e.ts_ns.saturating_sub(origin),
                e.end_ns().saturating_sub(origin),
            )
        })
        .collect();
    iv.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(iv.len());
    for (s, e) in iv {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// Busy nanoseconds of one track (union of its span intervals).
fn busy_ns(track: &Track, origin: u64) -> u64 {
    merged_intervals(track, origin)
        .iter()
        .map(|&(s, e)| e - s)
        .sum()
}

/// Renders one shaded bar of `width` cells for a track over
/// `[0, wall_ns]` (origin-relative).
fn bar(track: &Track, origin: u64, wall_ns: u64, width: usize) -> String {
    let mut cells = vec![0u64; width.max(1)];
    if wall_ns > 0 {
        for (s, e) in merged_intervals(track, origin) {
            // Distribute the interval's nanoseconds over the slices
            // it spans.
            let lo = (s.min(wall_ns) as u128 * width as u128 / wall_ns as u128) as usize;
            let hi = (e.min(wall_ns) as u128 * width as u128 / wall_ns as u128) as usize;
            for (c, cell) in cells
                .iter_mut()
                .enumerate()
                .take((hi + 1).min(width))
                .skip(lo)
            {
                let cell_lo = c as u128 * wall_ns as u128 / width as u128;
                let cell_hi = (c as u128 + 1) * wall_ns as u128 / width as u128;
                let ov_lo = (s as u128).max(cell_lo);
                let ov_hi = (e as u128).min(cell_hi);
                if ov_hi > ov_lo {
                    *cell += (ov_hi - ov_lo) as u64;
                }
            }
        }
    }
    let slice = (wall_ns as f64 / width.max(1) as f64).max(1.0);
    cells.iter().map(|&b| shade(b as f64 / slice)).collect()
}

/// Renders Figure-9-style utilization bars for every thread track.
///
/// One line per track: name, shaded timeline, busy time and busy
/// fraction of the trace's wall span. Counter tracks are skipped.
pub fn utilization_bars(trace: &Trace, width: usize) -> String {
    let origin = trace.origin_ns();
    let wall = trace.end_ns().saturating_sub(origin);
    let mut out = String::new();
    let _ = writeln!(out, "{} — wall {}", trace.process, fmt_duration_ns(wall));
    let name_w = trace
        .tracks()
        .iter()
        .filter(|t| t.kind == TrackKind::Thread)
        .map(|t| t.name.len())
        .max()
        .unwrap_or(4);
    for track in trace.tracks() {
        if track.kind != TrackKind::Thread {
            continue;
        }
        let busy = busy_ns(track, origin);
        let frac = if wall > 0 {
            busy as f64 / wall as f64 * 100.0
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "{:>name_w$} |{}| {} ({:.0}%)",
            track.name,
            bar(track, origin, wall, width),
            fmt_duration_ns(busy),
            frac
        );
    }
    out
}

/// Renders two traces' utilization bars on one shared time scale (the
/// longer wall), so a simulated and a measured run of the same plan
/// compare cell for cell.
pub fn side_by_side(a: &Trace, b: &Trace, width: usize) -> String {
    let wall_a = a.end_ns().saturating_sub(a.origin_ns());
    let wall_b = b.end_ns().saturating_sub(b.origin_ns());
    let scale = wall_a.max(wall_b);
    let mut out = String::new();
    let name_w = a
        .tracks()
        .iter()
        .chain(b.tracks())
        .filter(|t| t.kind == TrackKind::Thread)
        .map(|t| t.name.len())
        .max()
        .unwrap_or(4);
    for (label, trace, wall) in [(&a.process, a, wall_a), (&b.process, b, wall_b)] {
        let _ = writeln!(
            out,
            "{label} — wall {} (scale {})",
            fmt_duration_ns(wall),
            fmt_duration_ns(scale)
        );
        let origin = trace.origin_ns();
        for track in trace.tracks() {
            if track.kind != TrackKind::Thread {
                continue;
            }
            let _ = writeln!(
                out,
                "{:>name_w$} |{}|",
                track.name,
                bar(track, origin, scale, width)
            );
        }
    }
    out
}

/// Renders a per-category latency table (count, p50/p90/p99, max,
/// total), in first-appearance order.
pub fn latency_summary(trace: &Trace) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>7} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "category", "n", "p50", "p90", "p99", "max", "total"
    );
    for cat in trace.categories() {
        let h = trace.latency_histogram(cat);
        if h.count() == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "{:<10} {:>7} {:>9} {:>9} {:>9} {:>9} {:>10}",
            cat,
            h.count(),
            fmt_duration_ns(h.p50()),
            fmt_duration_ns(h.p90()),
            fmt_duration_ns(h.p99()),
            fmt_duration_ns(h.max_ns()),
            fmt_duration_ns(h.total_ns())
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node_trace() -> Trace {
        let mut t = Trace::new("casync-rt");
        let n0 = t.thread_track("node0");
        let n1 = t.thread_track("node1");
        let q = t.counter_track("node0/Q_comp");
        // node0 busy the first half, node1 the second half.
        t.push_span(n0, "encode", "encode", 0, 500, &[]);
        t.push_span(n1, "decode", "decode", 500, 500, &[]);
        t.push_sample(q, 0, 1.0);
        t
    }

    #[test]
    fn bars_reflect_busy_halves() {
        let text = utilization_bars(&two_node_trace(), 10);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 thread tracks, no counter
        assert!(lines[1].starts_with("node0"));
        let cells = |line: &str| line.split('|').nth(1).unwrap().to_string();
        // node0 busy the first half, node1 the second half.
        assert_eq!(cells(lines[1]), "█████     ");
        assert_eq!(cells(lines[2]), "     █████");
        assert!(lines[1].contains("(50%)"));
    }

    #[test]
    fn nested_spans_do_not_double_count() {
        let mut t = Trace::new("x");
        let n = t.thread_track("node0");
        t.push_span(n, "source", "source", 0, 1000, &[]);
        t.push_span(n, "local_agg", "local_agg", 100, 200, &[]); // nested
        let text = utilization_bars(&t, 8);
        assert!(text.contains("(100%)"));
        assert!(text.contains("1.0us"));
    }

    #[test]
    fn side_by_side_uses_common_scale() {
        let a = two_node_trace();
        let mut b = Trace::new("sim");
        let n = b.thread_track("node0");
        b.push_span(n, "encode", "encode", 0, 2000, &[]); // 2x longer
        let text = side_by_side(&a, &b, 10);
        assert!(text.contains("casync-rt"));
        assert!(text.contains("sim"));
        // Both sections report the same scale (the longer wall).
        assert_eq!(text.matches("scale 2.0us").count(), 2);
    }

    #[test]
    fn latency_summary_lists_categories() {
        let text = latency_summary(&two_node_trace());
        assert!(text.contains("encode"));
        assert!(text.contains("decode"));
        assert!(text.starts_with("category"));
    }

    #[test]
    fn empty_trace_renders_quietly() {
        let t = Trace::new("empty");
        let text = utilization_bars(&t, 10);
        assert!(text.contains("wall 0ns"));
        assert_eq!(latency_summary(&t).lines().count(), 1);
    }
}

//! Log-bucketed latency histograms.
//!
//! Task latencies span six orders of magnitude (a `Barrier` is tens of
//! nanoseconds; a large-gradient `Encode` is milliseconds), so the
//! buckets are powers of two: bucket 0 holds exactly `0 ns`, bucket
//! `k ≥ 1` holds `[2^(k-1), 2^k)`. Quantiles interpolate linearly
//! within the containing bucket and are clamped to the exact observed
//! `[min, max]`, which [`hipress_util::stats::OnlineStats`] tracks on
//! the side (so `p0`/`p100` are always exact, and a single-valued
//! distribution reports every quantile exactly).

use hipress_util::stats::OnlineStats;
use std::fmt;

/// Number of buckets: one zero bucket plus one per bit of `u64`.
///
/// Public because `hipress-metrics` builds its lock-free histogram on
/// the same bucket geometry, keeping trace-derived and live-recorded
/// distributions directly comparable.
pub const BUCKETS: usize = 65;

/// A mergeable latency distribution over `u64` nanoseconds.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    stats: OnlineStats,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The bucket index holding `ns`: 0 for `0 ns`, otherwise one plus
/// the position of the highest set bit (shared with `hipress-metrics`).
pub fn bucket_of(ns: u64) -> usize {
    (u64::BITS - ns.leading_zeros()) as usize
}

/// The half-open range `[lo, hi)` of bucket `b` (shared with
/// `hipress-metrics`).
pub fn bucket_bounds(b: usize) -> (u64, u64) {
    if b == 0 {
        (0, 1)
    } else {
        (
            1u64 << (b - 1),
            1u64.checked_shl(b as u32).unwrap_or(u64::MAX),
        )
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            stats: OnlineStats::new(),
        }
    }

    /// Records one latency observation.
    pub fn record(&mut self, ns: u64) {
        self.counts[bucket_of(ns)] += 1;
        self.stats.push(ns as f64);
    }

    /// Merges another histogram into this one. Bucket counts add and
    /// the side statistics merge, so merging is associative and
    /// order-independent for every quantity this type reports.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.stats.merge(&other.stats);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Exact largest observation (0 if empty).
    pub fn max_ns(&self) -> u64 {
        if self.count() == 0 {
            0
        } else {
            self.stats.max() as u64
        }
    }

    /// Exact smallest observation (0 if empty).
    pub fn min_ns(&self) -> u64 {
        if self.count() == 0 {
            0
        } else {
            self.stats.min() as u64
        }
    }

    /// Exact mean (0.0 if empty).
    pub fn mean_ns(&self) -> f64 {
        self.stats.mean()
    }

    /// Sum of all observations, in nanoseconds.
    pub fn total_ns(&self) -> u64 {
        (self.stats.mean() * self.stats.count() as f64).round() as u64
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`), or `None` if empty.
    ///
    /// The fractional rank `q·(n-1)` is located in the cumulative
    /// bucket counts; the value interpolates linearly within the
    /// containing bucket's `[lo, hi)` range and is clamped to the
    /// exact observed `[min, max]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // The extremes are tracked exactly on the side; return them
        // directly rather than interpolating within their buckets.
        if q == 0.0 {
            return Some(self.min_ns());
        }
        if q == 1.0 {
            return Some(self.max_ns());
        }
        // 1-indexed fractional rank in [1, n].
        let target = q * (n - 1) as f64 + 1.0;
        let mut cum = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if (cum + c) as f64 >= target {
                let (lo, hi) = bucket_bounds(b);
                let frac = (target - cum as f64) / c as f64; // in (0, 1]
                let v = lo as f64 + frac * (hi - lo) as f64;
                return Some((v.round() as u64).clamp(self.min_ns(), self.max_ns()));
            }
            cum += c;
        }
        Some(self.max_ns())
    }

    /// Convenience: p50 (0 if empty).
    pub fn p50(&self) -> u64 {
        self.quantile(0.5).unwrap_or(0)
    }

    /// Convenience: p90 (0 if empty).
    pub fn p90(&self) -> u64 {
        self.quantile(0.9).unwrap_or(0)
    }

    /// Convenience: p99 (0 if empty).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99).unwrap_or(0)
    }

    /// Non-empty buckets as `(lo_ns, hi_ns, count)` triples.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(b, &c)| {
                let (lo, hi) = bucket_bounds(b);
                (lo, hi, c)
            })
    }
}

impl fmt::Display for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use hipress_util::units::fmt_duration_ns as d;
        write!(
            f,
            "n={} p50={} p90={} p99={} max={}",
            self.count(),
            d(self.p50()),
            d(self.p90()),
            d(self.p99()),
            d(self.max_ns())
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_geometry() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_bounds(0), (0, 1));
        assert_eq!(bucket_bounds(1), (1, 2));
        assert_eq!(bucket_bounds(3), (4, 8));
        assert_eq!(bucket_bounds(64), (1 << 63, u64::MAX));
    }

    #[test]
    fn single_valued_distribution_is_exact_everywhere() {
        let mut h = LatencyHistogram::new();
        for _ in 0..1000 {
            h.record(777);
        }
        // min==max clamping makes every quantile exact despite the
        // log bucket being [512, 1024).
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(777), "q={q}");
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.total_ns(), 777_000);
    }

    #[test]
    fn known_two_bucket_distribution() {
        // 3 observations of 2 (bucket [2,4)) and 1 of 100 (bucket
        // [64,128)). n=4: rank(q) = 3q + 1.
        let mut h = LatencyHistogram::new();
        for _ in 0..3 {
            h.record(2);
        }
        h.record(100);
        // The extremes are exact (tracked on the side).
        assert_eq!(h.quantile(0.0), Some(2));
        assert_eq!(h.quantile(1.0), Some(100));
        // q=0.5 -> rank 2.5 -> first bucket (cum 3 >= 2.5),
        // frac 2.5/3 -> 2 + (2.5/3)*2 = 3.67 -> rounds to 4... but
        // clamped only to [2,100]; exact per the documented formula.
        assert_eq!(h.quantile(0.5), Some(4));
        // q=0.9 -> rank 3.7 -> second bucket, frac 0.7 ->
        // 64 + 0.7*64 = 108.8 -> 109, clamped to max=100.
        assert_eq!(h.quantile(0.9), Some(100));
        assert_eq!(h.min_ns(), 2);
        assert_eq!(h.max_ns(), 100);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let mut h = LatencyHistogram::new();
        let mut x = 1u64;
        for i in 0..500u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i) % 1_000_000;
            h.record(x);
        }
        let mut prev = 0u64;
        for i in 0..=100 {
            let q = h.quantile(i as f64 / 100.0).unwrap();
            assert!(q >= prev, "quantiles must be monotone");
            assert!(q >= h.min_ns() && q <= h.max_ns());
            prev = q;
        }
    }

    #[test]
    fn merge_is_associative() {
        let datasets: [&[u64]; 3] = [&[1, 5, 9, 200], &[0, 0, 3_000_000], &[42; 10]];
        let build = |idx: &[usize]| {
            let mut h = LatencyHistogram::new();
            for &i in idx {
                let mut part = LatencyHistogram::new();
                for &v in datasets[i] {
                    part.record(v);
                }
                h.merge(&part);
            }
            h
        };
        let abc = build(&[0, 1, 2]);
        let bca = build(&[1, 2, 0]);
        let cab = build(&[2, 0, 1]);
        for h in [&bca, &cab] {
            assert_eq!(h.count(), abc.count());
            assert_eq!(h.min_ns(), abc.min_ns());
            assert_eq!(h.max_ns(), abc.max_ns());
            for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
                assert_eq!(h.quantile(q), abc.quantile(q), "q={q}");
            }
        }
        // ((a+b)+c) == (a+(b+c)) by construction of bucket addition.
        let mut left = build(&[0]);
        left.merge(&build(&[1]));
        left.merge(&build(&[2]));
        let mut bc = build(&[1]);
        bc.merge(&build(&[2]));
        let mut right = build(&[0]);
        right.merge(&bc);
        assert_eq!(left.count(), right.count());
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(left.quantile(q), right.quantile(q));
        }
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.buckets().count(), 0);
    }
}

//! Unified structured tracing for HiPress: where time goes, in both
//! execution backends.
//!
//! The paper's headline evidence is observational — Figure 9 contrasts
//! GPU-utilization timelines, and §5 attributes iteration time to
//! encode/decode/transfer phases. This crate is the one timeline model
//! those observations lower into, regardless of which engine produced
//! them:
//!
//! * the **discrete-event simulator** records per-task spans stamped
//!   with simulated nanoseconds (`hipress_core::Executor::run_traced`),
//! * **CaSync-RT** records per-task spans, queue-depth counters, and
//!   fabric events stamped with wall-clock nanoseconds
//!   (`hipress_runtime::run_traced`).
//!
//! Both produce the same [`Trace`]: named tracks (one per node thread,
//! plus counter tracks for `Q_comp`/`Q_commu` depths) carrying spans
//! with a category, a start, a duration, and numeric arguments. On top
//! of that shared model the crate provides:
//!
//! * [`Tracer`] — a thread-safe recording handle (`Mutex` inside, one
//!   clone per worker thread) with RAII [`Span`] guards and atomic
//!   [`Counter`]s;
//! * [`LatencyHistogram`] — log-bucketed per-primitive latency
//!   distributions (p50/p90/p99/max) built on `hipress-util`'s
//!   streaming statistics;
//! * [`chrome`] — a hand-rolled Chrome trace-event JSON writer *and
//!   reader*, so exports load in `chrome://tracing`/Perfetto and
//!   round-trip through the crate's own parser;
//! * [`diff`] — per-category comparison of two traces (the
//!   `hipress trace-diff` subcommand);
//! * [`view`] — textual Figure-9-style utilization bars and a
//!   per-category latency summary.
//!
//! Everything is `std`-only: the JSON serializer and parser are part
//! of the crate (the workspace builds fully offline).

#![forbid(unsafe_code)]

pub mod chrome;
pub mod diff;
pub mod hist;
pub mod json;
pub mod model;
pub mod tracer;
pub mod view;

pub use diff::TraceDiff;
pub use hist::LatencyHistogram;
pub use model::{Event, Trace, Track, TrackId, TrackKind};
pub use tracer::{Counter, Span, Tracer};

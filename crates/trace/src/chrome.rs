//! Chrome trace-event JSON export and import.
//!
//! Writes the subset of the [trace-event format] that
//! `chrome://tracing` and Perfetto load: complete spans (`ph:"X"`),
//! instants (`ph:"i"`), counters (`ph:"C"`), and `thread_name` /
//! `process_name` metadata (`ph:"M"`). Timestamps and durations are
//! microseconds in the format, so nanosecond values are written as
//! `ns / 1000` with three decimals — exact — and the reader multiplies
//! back and rounds, making export → import lossless for every `ts_ns`
//! / `dur_ns` in a [`Trace`].
//!
//! Layout conventions: everything lives in `pid` 1; thread and counter
//! tracks map to `tid = index + 1` in registration order; event `args`
//! carry the numeric arguments plus a `"cat"`-mirroring `category`
//! field implicitly via the top-level `cat` key.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::json::{self, Json};
use crate::model::Trace;
use hipress_util::{Error, Result};
use std::fmt::Write as _;

/// The fixed process id used for all tracks.
const PID: u64 = 1;

fn tid_of(index: usize) -> u64 {
    index as u64 + 1
}

/// Writes `ns` as a microsecond JSON number with exact ns precision.
fn push_us(out: &mut String, ns: u64) {
    let _ = write!(out, "{}.{:03}", ns / 1000, ns % 1000);
}

/// Serializes a trace to Chrome trace-event JSON.
///
/// The output is a single object `{"traceEvents": [...]}`, loadable in
/// `chrome://tracing` and Perfetto, and parseable back into an
/// identical [`Trace`] by [`import`].
pub fn export(trace: &Trace) -> String {
    let mut out = String::with_capacity(4096 + trace.len() * 96);
    out.push_str("{\"traceEvents\":[\n");
    let mut first = true;
    let mut emit = |line: String, out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
        out.push_str(&line);
    };

    // Process metadata, then one thread_name record per track.
    {
        let mut line = String::new();
        line.push_str(
            "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"tid\":0,\"args\":{\"name\":",
        );
        json::write_str(&mut line, &trace.process);
        line.push_str("}}");
        emit(line, &mut out);
    }
    for (i, track) in trace.tracks().iter().enumerate() {
        let mut line = String::new();
        let _ = write!(
            line,
            "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{PID},\"tid\":{},\"args\":{{\"name\":",
            tid_of(i)
        );
        json::write_str(&mut line, &track.name);
        line.push_str("}}");
        emit(line, &mut out);
    }

    for (i, track) in trace.tracks().iter().enumerate() {
        let tid = tid_of(i);
        for e in &track.events {
            let mut line = String::new();
            line.push('{');
            line.push_str("\"ph\":");
            line.push_str(if e.instant { "\"i\"" } else { "\"X\"" });
            line.push_str(",\"name\":");
            json::write_str(&mut line, &e.name);
            line.push_str(",\"cat\":");
            json::write_str(&mut line, &e.category);
            let _ = write!(line, ",\"pid\":{PID},\"tid\":{tid},\"ts\":");
            push_us(&mut line, e.ts_ns);
            if e.instant {
                // Thread-scoped instant.
                line.push_str(",\"s\":\"t\"");
            } else {
                line.push_str(",\"dur\":");
                push_us(&mut line, e.dur_ns);
            }
            line.push_str(",\"args\":{");
            for (j, (k, v)) in e.args.iter().enumerate() {
                if j > 0 {
                    line.push(',');
                }
                json::write_str(&mut line, k);
                let _ = write!(line, ":{v}");
            }
            line.push_str("}}");
            emit(line, &mut out);
        }
        for &(ts, value) in &track.samples {
            let mut line = String::new();
            line.push_str("{\"ph\":\"C\",\"name\":");
            json::write_str(&mut line, &track.name);
            let _ = write!(line, ",\"pid\":{PID},\"tid\":{tid},\"ts\":");
            push_us(&mut line, ts);
            line.push_str(",\"args\":{\"value\":");
            json::write_num(&mut line, value);
            line.push_str("}}");
            emit(line, &mut out);
        }
    }

    out.push_str("\n]}\n");
    out
}

/// Converts a microsecond JSON number back to exact nanoseconds.
fn us_to_ns(us: f64) -> u64 {
    (us * 1000.0).round() as u64
}

/// Parses Chrome trace-event JSON produced by [`export`] back into a
/// [`Trace`].
///
/// Tracks are reconstructed from `thread_name` metadata in `tid`
/// order; a track is a counter track exactly when `ph:"C"` events
/// reference its `tid`. Unknown phases are skipped, so traces written
/// by other tools load too (best effort).
///
/// # Errors
///
/// Returns a configuration error when the document is not valid JSON,
/// lacks a `traceEvents` array, or references a `tid` with no
/// `thread_name` record.
pub fn import(src: &str) -> Result<Trace> {
    let doc = json::parse(src)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or_else(|| Error::config("chrome trace: missing traceEvents array"))?;

    let str_field = |e: &Json, k: &str| -> Option<String> {
        e.get(k).and_then(Json::as_str).map(str::to_string)
    };
    let num_field = |e: &Json, k: &str| -> Option<f64> { e.get(k).and_then(Json::as_f64) };

    // Pass 1: process name, track names by tid, counter tids.
    let mut process = String::from("trace");
    let mut names: Vec<(u64, String)> = Vec::new();
    let mut counter_tids: Vec<u64> = Vec::new();
    for e in events {
        let ph = str_field(e, "ph").unwrap_or_default();
        match ph.as_str() {
            "M" => {
                let meta = str_field(e, "name").unwrap_or_default();
                let arg_name = e
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string();
                if meta == "process_name" {
                    process = arg_name;
                } else if meta == "thread_name" {
                    let tid = num_field(e, "tid").unwrap_or(0.0) as u64;
                    names.push((tid, arg_name));
                }
            }
            "C" => {
                let tid = num_field(e, "tid").unwrap_or(0.0) as u64;
                if !counter_tids.contains(&tid) {
                    counter_tids.push(tid);
                }
            }
            _ => {}
        }
    }
    names.sort_by_key(|&(tid, _)| tid);

    let mut trace = Trace::new(&process);
    for (tid, name) in &names {
        if counter_tids.contains(tid) {
            trace.counter_track(name);
        } else {
            trace.thread_track(name);
        }
    }

    let track_for = |trace: &Trace, tid: u64| {
        names
            .iter()
            .position(|&(t, _)| t == tid)
            .and_then(|i| trace.find_track(&names[i].1))
    };

    // Pass 2: events and samples.
    for e in events {
        let ph = str_field(e, "ph").unwrap_or_default();
        if !matches!(ph.as_str(), "X" | "i" | "C") {
            continue;
        }
        let tid = num_field(e, "tid").unwrap_or(0.0) as u64;
        let id = track_for(&trace, tid).ok_or_else(|| {
            Error::config(format!("chrome trace: event references unknown tid {tid}"))
        })?;
        let ts_ns = us_to_ns(num_field(e, "ts").unwrap_or(0.0));
        match ph.as_str() {
            "C" => {
                let value = e
                    .get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0);
                trace.push_sample(id, ts_ns, value);
            }
            _ => {
                let name = str_field(e, "name").unwrap_or_default();
                let cat = str_field(e, "cat").unwrap_or_default();
                let mut args: Vec<(String, u64)> = Vec::new();
                if let Some(Json::Obj(m)) = e.get("args") {
                    for (k, v) in m {
                        if let Some(n) = v.as_f64() {
                            args.push((k.clone(), n as u64));
                        }
                    }
                }
                let arg_refs: Vec<(&str, u64)> =
                    args.iter().map(|(k, v)| (k.as_str(), *v)).collect();
                if ph == "i" {
                    trace.push_instant(id, &name, &cat, ts_ns, &arg_refs);
                } else {
                    let dur_ns = us_to_ns(num_field(e, "dur").unwrap_or(0.0));
                    trace.push_span(id, &name, &cat, ts_ns, dur_ns, &arg_refs);
                }
            }
        }
    }

    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TrackKind;

    fn sample_trace() -> Trace {
        let mut t = Trace::new("casync-rt");
        let n0 = t.thread_track("node0");
        let n1 = t.thread_track("node1");
        let q = t.counter_track("node0/Q_comp");
        t.push_span(
            n0,
            "encode",
            "encode",
            1_234_567,
            89_012,
            &[("bytes_raw", 4096), ("grad", 2)],
        );
        t.push_span(n1, "send", "send", 2_000_001, 500, &[("bytes_wire", 640)]);
        t.push_instant(n0, "msg", "fabric", 2_000_501, &[("bytes", 640)]);
        t.push_sample(q, 1_000, 1.0);
        t.push_sample(q, 2_000, 0.0);
        t
    }

    #[test]
    fn export_emits_expected_phases() {
        let s = export(&sample_trace());
        assert!(s.contains("\"ph\":\"M\""));
        assert!(s.contains("\"ph\":\"X\""));
        assert!(s.contains("\"ph\":\"i\""));
        assert!(s.contains("\"ph\":\"C\""));
        assert!(s.contains("\"name\":\"process_name\""));
        assert!(s.contains("\"name\":\"thread_name\""));
        // ns 1_234_567 -> 1234.567 us, exact.
        assert!(s.contains("\"ts\":1234.567"));
    }

    #[test]
    fn round_trip_is_lossless() {
        let original = sample_trace();
        let back = import(&export(&original)).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn round_trip_preserves_awkward_timestamps() {
        let mut t = Trace::new("sim");
        let n = t.thread_track("node0");
        // Timestamps that don't divide evenly into microseconds.
        for (i, ts) in [0u64, 1, 999, 1000, 1001, 123_456_789_123]
            .iter()
            .enumerate()
        {
            t.push_span(n, &format!("e{i}"), "encode", *ts, *ts % 997, &[]);
        }
        assert_eq!(import(&export(&t)).unwrap(), t);
    }

    #[test]
    fn import_rejects_non_trace_json() {
        assert!(import("[1,2,3]").is_err());
        assert!(import("{\"foo\": 1}").is_err());
        assert!(import("not json").is_err());
    }

    #[test]
    fn import_rejects_unknown_tid() {
        let src = r#"{"traceEvents":[
            {"ph":"X","name":"x","cat":"c","pid":1,"tid":9,"ts":0,"dur":1,"args":{}}
        ]}"#;
        assert!(import(src).is_err());
    }

    #[test]
    fn counter_tracks_survive_round_trip_as_counters() {
        let back = import(&export(&sample_trace())).unwrap();
        let q = back.find_track("node0/Q_comp").unwrap();
        assert_eq!(back.track(q).kind, TrackKind::Counter);
        assert_eq!(back.track(q).samples, vec![(1_000, 1.0), (2_000, 0.0)]);
    }
}

//! Per-category comparison of two traces.
//!
//! Backs `hipress trace-diff`: load a simulated trace and a measured
//! CaSync-RT trace of the same plan and see, category by category,
//! where the engines disagree — span counts (a structural mismatch)
//! and latency totals/quantiles (a cost-model mismatch).

use crate::hist::LatencyHistogram;
use crate::model::Trace;
use hipress_util::units::fmt_duration_ns;
use std::fmt;

/// One category's distributions in the two traces being compared.
#[derive(Debug, Clone)]
pub struct CategoryDiff {
    /// The span category ("encode", "send", …).
    pub category: String,
    /// Distribution in the first trace.
    pub a: LatencyHistogram,
    /// Distribution in the second trace.
    pub b: LatencyHistogram,
}

impl CategoryDiff {
    /// True when both traces hold the same number of spans in this
    /// category — the structural (plan-level) agreement check.
    pub fn counts_match(&self) -> bool {
        self.a.count() == self.b.count()
    }
}

/// The result of comparing two traces category by category.
#[derive(Debug, Clone)]
pub struct TraceDiff {
    /// Process name of the first trace.
    pub process_a: String,
    /// Process name of the second trace.
    pub process_b: String,
    /// Wall span (last end − first start) of the first trace.
    pub wall_a_ns: u64,
    /// Wall span of the second trace.
    pub wall_b_ns: u64,
    /// Union of span categories, in first-appearance order
    /// (first trace's order, then categories only the second has).
    pub categories: Vec<CategoryDiff>,
}

impl TraceDiff {
    /// Compares two traces.
    pub fn compare(a: &Trace, b: &Trace) -> Self {
        let mut names: Vec<String> = a.categories().iter().map(|s| s.to_string()).collect();
        for c in b.categories() {
            if !names.iter().any(|n| n == c) {
                names.push(c.to_string());
            }
        }
        let categories = names
            .into_iter()
            .map(|category| CategoryDiff {
                a: a.latency_histogram(&category),
                b: b.latency_histogram(&category),
                category,
            })
            .collect();
        Self {
            process_a: a.process.clone(),
            process_b: b.process.clone(),
            wall_a_ns: a.end_ns().saturating_sub(a.origin_ns()),
            wall_b_ns: b.end_ns().saturating_sub(b.origin_ns()),
            categories,
        }
    }

    /// True when every category has the same span count in both
    /// traces — the two engines executed structurally identical plans.
    pub fn structurally_equal(&self) -> bool {
        self.categories.iter().all(CategoryDiff::counts_match)
    }

    /// Wall-time ratio `b / a` (1.0 when `a` is zero).
    pub fn wall_ratio(&self) -> f64 {
        if self.wall_a_ns == 0 {
            1.0
        } else {
            self.wall_b_ns as f64 / self.wall_a_ns as f64
        }
    }
}

impl fmt::Display for TraceDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace-diff: A={} ({})  B={} ({})  wall B/A = {:.2}x",
            self.process_a,
            fmt_duration_ns(self.wall_a_ns),
            self.process_b,
            fmt_duration_ns(self.wall_b_ns),
            self.wall_ratio()
        )?;
        writeln!(
            f,
            "{:<10} {:>7} {:>7} {:>9} {:>9} {:>9} {:>9}  {}",
            "category", "n(A)", "n(B)", "p50(A)", "p50(B)", "p99(A)", "p99(B)", "match"
        )?;
        for c in &self.categories {
            writeln!(
                f,
                "{:<10} {:>7} {:>7} {:>9} {:>9} {:>9} {:>9}  {}",
                c.category,
                c.a.count(),
                c.b.count(),
                fmt_duration_ns(c.a.p50()),
                fmt_duration_ns(c.b.p50()),
                fmt_duration_ns(c.a.p99()),
                fmt_duration_ns(c.b.p99()),
                if c.counts_match() { "yes" } else { "NO" }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_with(process: &str, encode_durs: &[u64], sends: usize) -> Trace {
        let mut t = Trace::new(process);
        let n = t.thread_track("node0");
        let mut ts = 0u64;
        for &d in encode_durs {
            t.push_span(n, "encode", "encode", ts, d, &[]);
            ts += d;
        }
        for _ in 0..sends {
            t.push_span(n, "send", "send", ts, 10, &[]);
            ts += 10;
        }
        t
    }

    #[test]
    fn matching_structure_is_detected() {
        let a = trace_with("sim", &[100, 200], 3);
        let b = trace_with("casync-rt", &[150, 250], 3);
        let d = TraceDiff::compare(&a, &b);
        assert!(d.structurally_equal());
        assert_eq!(d.categories.len(), 2);
    }

    #[test]
    fn count_mismatch_is_flagged() {
        let a = trace_with("sim", &[100], 2);
        let b = trace_with("rt", &[100], 3);
        let d = TraceDiff::compare(&a, &b);
        assert!(!d.structurally_equal());
        let send = d.categories.iter().find(|c| c.category == "send").unwrap();
        assert!(!send.counts_match());
        let enc = d
            .categories
            .iter()
            .find(|c| c.category == "encode")
            .unwrap();
        assert!(enc.counts_match());
    }

    #[test]
    fn categories_union_covers_both_sides() {
        let a = trace_with("sim", &[100], 0);
        let b = trace_with("rt", &[], 2);
        let d = TraceDiff::compare(&a, &b);
        let names: Vec<&str> = d.categories.iter().map(|c| c.category.as_str()).collect();
        assert_eq!(names, vec!["encode", "send"]);
    }

    #[test]
    fn wall_ratio_and_display() {
        let a = trace_with("sim", &[1000], 0);
        let b = trace_with("rt", &[2000], 0);
        let d = TraceDiff::compare(&a, &b);
        assert!((d.wall_ratio() - 2.0).abs() < 1e-9);
        let text = d.to_string();
        assert!(text.contains("trace-diff"));
        assert!(text.contains("encode"));
        // Empty traces: ratio degrades gracefully.
        let e = Trace::new("x");
        assert!((TraceDiff::compare(&e, &e).wall_ratio() - 1.0).abs() < 1e-9);
    }
}

//! A minimal JSON value model, parser, and writer.
//!
//! The workspace builds fully offline with zero external crates, so
//! the Chrome-trace exporter carries its own serializer — and, because
//! `hipress trace-diff` and the CI smoke step must *read* exported
//! traces back, its own parser. The dialect is standard JSON
//! (RFC 8259) minus one deliberate restriction: numbers are `f64`
//! (exact for the integers this crate writes, which stay below 2^53).

use hipress_util::{Error, Result};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always `f64`; integers below 2^53 are exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is preserved via sorted map semantics —
    /// object comparison ignores source ordering.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value under `key`, if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// This value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a configuration error describing the first syntax problem
/// (with byte offset) or trailing garbage after the document.
pub fn parse(src: &str) -> Result<Json> {
    let bytes = src.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(Error::config(format!(
            "json: trailing data at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error::config(format!("json: {msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not produced by this
                            // crate's writer; map lone surrogates to
                            // the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the whole unescaped run in one step. The
                    // input arrived as `&str`, and the run is delimited
                    // by ASCII bytes (`"`/`\`), so the slice sits on
                    // character boundaries and stays valid UTF-8.
                    let start = self.pos;
                    while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input was a str and the run ends at ascii"),
                    );
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }
}

/// Appends a JSON string literal (with escapes) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a finite `f64` (shortest round-trip representation).
///
/// # Panics
///
/// Panics on NaN or infinity — the trace model never records those.
pub fn write_num(out: &mut String, v: f64) {
    assert!(v.is_finite(), "json numbers must be finite");
    let _ = write!(out, "{v}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "x"}, null], "c": 2}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_f64), Some(2.0));
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].get("b").and_then(Json::as_str), Some("x"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("true false").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line\nwith \"quotes\" and \\slashes\\ \t tab";
        let mut enc = String::new();
        write_str(&mut enc, original);
        assert_eq!(parse(&enc).unwrap(), Json::Str(original.into()));
    }

    #[test]
    fn unicode_escape_parses() {
        assert_eq!(parse("\"\\u0041\"").unwrap(), Json::Str("A".into()));
        assert_eq!(parse("\"caf\u{e9}\"").unwrap(), Json::Str("café".into()));
    }

    #[test]
    fn numbers_round_trip() {
        for v in [0.0, 1.0, -3.25, 123456789.0, 0.001, 9.007199254740991e15] {
            let mut s = String::new();
            write_num(&mut s, v);
            assert_eq!(parse(&s).unwrap(), Json::Num(v));
        }
    }
}

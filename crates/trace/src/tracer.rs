//! Thread-safe recording handles: [`Tracer`], [`Span`], [`Counter`].
//!
//! A [`Tracer`] is a cheap-to-clone handle over one shared [`Trace`]
//! guarded by a `std::sync::Mutex`. CaSync-RT hands one clone to each
//! node thread; the simulator records from a single thread. Timestamps
//! come from the tracer's epoch (`Instant` captured at construction)
//! via [`Tracer::now_ns`], or are supplied explicitly by callers that
//! carry their own clock (the simulator's virtual time).
//!
//! The tracer is *opt-in*: engines hold an `Option<Tracer>` and skip
//! every recording call when it is `None`, so the disabled hot path
//! stays allocation-free.

use crate::model::{Trace, TrackId};
use std::fmt;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

struct Inner {
    epoch: Instant,
    mx: Mutex<Trace>,
}

/// A cloneable, thread-safe handle recording into one shared [`Trace`].
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<Inner>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let len = self.inner.mx.lock().map(|t| t.len()).unwrap_or(0);
        f.debug_struct("Tracer").field("events", &len).finish()
    }
}

impl Tracer {
    /// Creates a tracer for the named process; wall-clock timestamps
    /// are measured from this moment.
    pub fn new(process: &str) -> Self {
        Self::at_epoch(process, Instant::now())
    }

    /// Creates a tracer whose timestamps count from an explicit
    /// `epoch`. Distributed runs pass one shared epoch to the tracer,
    /// the flight recorder, and the clock-offset exchange so all
    /// three speak the same per-process clock.
    pub fn at_epoch(process: &str, epoch: Instant) -> Self {
        Self {
            inner: Arc::new(Inner {
                epoch,
                mx: Mutex::new(Trace::new(process)),
            }),
        }
    }

    /// The instant timestamps count from.
    pub fn epoch(&self) -> Instant {
        self.inner.epoch
    }

    /// Nanoseconds elapsed since the tracer's epoch.
    pub fn now_ns(&self) -> u64 {
        self.inner.epoch.elapsed().as_nanos() as u64
    }

    fn with_trace<R>(&self, f: impl FnOnce(&mut Trace) -> R) -> R {
        let mut guard = self
            .inner
            .mx
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        f(&mut guard)
    }

    /// Registers (or finds) a thread track by name.
    pub fn thread_track(&self, name: &str) -> TrackId {
        self.with_trace(|t| t.thread_track(name))
    }

    /// Registers (or finds) a counter track by name.
    pub fn counter_track(&self, name: &str) -> TrackId {
        self.with_trace(|t| t.counter_track(name))
    }

    /// Records a completed span with explicit timestamps.
    pub fn record_span(
        &self,
        track: TrackId,
        name: &str,
        category: &str,
        ts_ns: u64,
        dur_ns: u64,
        args: &[(&str, u64)],
    ) {
        self.with_trace(|t| t.push_span(track, name, category, ts_ns, dur_ns, args));
    }

    /// Records an instant event with an explicit timestamp.
    pub fn instant(
        &self,
        track: TrackId,
        name: &str,
        category: &str,
        ts_ns: u64,
        args: &[(&str, u64)],
    ) {
        self.with_trace(|t| t.push_instant(track, name, category, ts_ns, args));
    }

    /// Records one counter sample with an explicit timestamp.
    pub fn sample(&self, track: TrackId, ts_ns: u64, value: f64) {
        self.with_trace(|t| t.push_sample(track, ts_ns, value));
    }

    /// Starts a wall-clock span on `track`; the span records itself
    /// when dropped (or explicitly via [`Span::finish`]).
    pub fn span(&self, track: TrackId, name: &str, category: &str) -> Span {
        Span {
            tracer: self.clone(),
            track,
            name: name.to_string(),
            category: category.to_string(),
            start_ns: self.now_ns(),
            args: Vec::new(),
            done: false,
        }
    }

    /// Creates an atomic counter that samples onto `track` at the
    /// wall-clock time of each update.
    pub fn counter(&self, track: TrackId) -> Counter {
        Counter {
            tracer: self.clone(),
            track,
            value: Arc::new(AtomicI64::new(0)),
        }
    }

    /// A snapshot of everything recorded so far.
    pub fn snapshot(&self) -> Trace {
        self.with_trace(|t| t.clone())
    }

    /// Consumes the handle and returns the trace; clones of this
    /// tracer held elsewhere keep recording into the shared state, so
    /// call this after worker threads are joined.
    pub fn finish(self) -> Trace {
        self.snapshot()
    }
}

/// An in-flight wall-clock span; records itself on drop.
#[derive(Debug)]
pub struct Span {
    tracer: Tracer,
    track: TrackId,
    name: String,
    category: String,
    start_ns: u64,
    args: Vec<(String, u64)>,
    done: bool,
}

impl Span {
    /// Attaches a numeric argument to the span.
    pub fn arg(&mut self, name: &str, value: u64) {
        self.args.push((name.to_string(), value));
    }

    /// Ends the span now and records it.
    pub fn finish(mut self) {
        self.record();
    }

    fn record(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        let end = self.tracer.now_ns();
        let dur = end.saturating_sub(self.start_ns);
        let args: Vec<(&str, u64)> = self.args.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        self.tracer.record_span(
            self.track,
            &self.name,
            &self.category,
            self.start_ns,
            dur,
            &args,
        );
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.record();
    }
}

/// An atomic gauge (queue depth) that emits a counter sample on every
/// update.
#[derive(Debug, Clone)]
pub struct Counter {
    tracer: Tracer,
    track: TrackId,
    value: Arc<AtomicI64>,
}

impl Counter {
    /// Adds `delta` (may be negative) and samples the new value.
    pub fn add(&self, delta: i64) {
        let now = self.value.fetch_add(delta, Ordering::Relaxed) + delta;
        self.tracer
            .sample(self.track, self.tracer.now_ns(), now as f64);
    }

    /// Sets the gauge and samples the new value.
    pub fn set(&self, value: i64) {
        self.value.store(value, Ordering::Relaxed);
        self.tracer
            .sample(self.track, self.tracer.now_ns(), value as f64);
    }

    /// The current gauge value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_timestamps_record_verbatim() {
        let tr = Tracer::new("test");
        let t0 = tr.thread_track("node0");
        tr.record_span(t0, "encode", "encode", 100, 50, &[("bytes", 7)]);
        tr.instant(t0, "msg", "fabric", 160, &[]);
        let trace = tr.finish();
        let e = trace.events_of("encode").next().unwrap();
        assert_eq!((e.ts_ns, e.dur_ns, e.arg("bytes")), (100, 50, Some(7)));
        assert_eq!(trace.events_of("fabric").next().unwrap().ts_ns, 160);
    }

    #[test]
    fn raii_span_records_on_drop() {
        let tr = Tracer::new("test");
        let t0 = tr.thread_track("node0");
        {
            let mut s = tr.span(t0, "work", "compute");
            s.arg("grad", 3);
        }
        let trace = tr.snapshot();
        let e = trace.events_of("compute").next().unwrap();
        assert_eq!(e.name, "work");
        assert_eq!(e.arg("grad"), Some(3));
        assert!(!e.instant);
    }

    #[test]
    fn finish_records_once() {
        let tr = Tracer::new("test");
        let t0 = tr.thread_track("node0");
        let s = tr.span(t0, "w", "c");
        s.finish(); // drop after finish must not double-record
        assert_eq!(tr.snapshot().events_of("c").count(), 1);
    }

    #[test]
    fn counter_tracks_depth() {
        let tr = Tracer::new("test");
        let q = tr.counter_track("node0/Q_comp");
        let c = tr.counter(q);
        c.add(1);
        c.add(1);
        c.add(-1);
        assert_eq!(c.get(), 1);
        let trace = tr.finish();
        let samples = &trace
            .track(trace.find_track("node0/Q_comp").unwrap())
            .samples;
        let values: Vec<f64> = samples.iter().map(|&(_, v)| v).collect();
        assert_eq!(values, vec![1.0, 2.0, 1.0]);
    }

    #[test]
    fn clones_share_one_trace_across_threads() {
        let tr = Tracer::new("test");
        let mut handles = Vec::new();
        for i in 0..4 {
            let tr = tr.clone();
            handles.push(std::thread::spawn(move || {
                let t = tr.thread_track(&format!("node{i}"));
                for _ in 0..100 {
                    tr.record_span(t, "w", "compute", 0, 1, &[]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let trace = tr.finish();
        assert_eq!(trace.tracks().len(), 4);
        assert_eq!(trace.events_of("compute").count(), 400);
    }

    #[test]
    fn wall_clock_is_monotone() {
        let tr = Tracer::new("test");
        let a = tr.now_ns();
        let b = tr.now_ns();
        assert!(b >= a);
    }
}

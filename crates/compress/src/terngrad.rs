//! Stochastic linear quantization (TernGrad; Wen et al., NeurIPS 2017),
//! generalized over a bitwidth parameter exactly as in the paper's
//! Figure 5 CompLL listing.
//!
//! Encoding maps each element to an integer level in
//! `[0, 2^bitwidth - 1]` between the gradient's min and max, using
//! *stochastic rounding* so the quantizer is unbiased:
//!
//! ```text
//! gap = (max - min) / (2^bitwidth - 1)
//! q   = floor((x - min) / gap + U[0,1))
//! x̂   = min + q * gap
//! ```
//!
//! With `bitwidth = 2` this is the ternary-style low-precision
//! quantizer the paper evaluates; Figure 12b sweeps bitwidth over
//! {2, 4, 8}.
//!
//! Stream layout after the common header:
//!
//! ```text
//! [bitwidth u8][min f32][max f32][elems x bitwidth bits]
//! ```

use crate::header::{read_f32, AlgoId, Header, HEADER_LEN};
use crate::{AlgorithmKind, Compressor, KernelCostProfile};
use hipress_util::bits::{packed_len, BitReader, BitWriter};
use hipress_util::rng::{Rng64, Xoshiro256};
use hipress_util::{Error, Result};

/// The optimized stochastic linear quantizer.
#[derive(Debug, Clone, Copy)]
pub struct TernGrad {
    bitwidth: u8,
}

impl TernGrad {
    /// Creates the quantizer with the given bits-per-element.
    ///
    /// # Panics
    ///
    /// Panics unless `bitwidth` is in `1..=8`.
    pub fn new(bitwidth: u8) -> Self {
        assert!(
            (1..=8).contains(&bitwidth),
            "TernGrad bitwidth must be in 1..=8"
        );
        Self { bitwidth }
    }

    /// The configured bits-per-element.
    pub fn bitwidth(&self) -> u8 {
        self.bitwidth
    }

    /// Number of quantization levels (`2^bitwidth`).
    fn levels(&self) -> u32 {
        1u32 << self.bitwidth
    }
}

impl Compressor for TernGrad {
    fn name(&self) -> &'static str {
        "terngrad"
    }

    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::Quantization
    }

    fn encode(&self, grad: &[f32], seed: u64) -> Vec<u8> {
        let mut rng = Xoshiro256::new(seed);
        // Pass 1 (fused reduction): min and max.
        let (mut min, mut max) = (f32::INFINITY, f32::NEG_INFINITY);
        for &x in grad {
            min = min.min(x);
            max = max.max(x);
        }
        if grad.is_empty() {
            min = 0.0;
            max = 0.0;
        }
        let span = max - min;
        let gap = if span > 0.0 {
            span / (self.levels() - 1) as f32
        } else {
            0.0
        };

        let mut out = Vec::with_capacity(self.compressed_size(grad.len()) as usize);
        Header {
            algo: AlgoId::TernGrad,
            elems: grad.len() as u32,
        }
        .write(&mut out);
        out.push(self.bitwidth);
        out.extend_from_slice(&min.to_le_bytes());
        out.extend_from_slice(&max.to_le_bytes());

        // Pass 2: stochastic rounding + bit packing.
        let width = self.bitwidth as u32;
        let mut bits = BitWriter::with_capacity_bits(grad.len() * width as usize);
        for &x in grad {
            let q = if gap > 0.0 {
                let r = (x - min) / gap;
                let rounded = (r + rng.next_f32()).floor() as u32;
                rounded.min(self.levels() - 1)
            } else {
                0
            };
            bits.write(q as u64, width);
        }
        out.extend_from_slice(&bits.finish());
        out
    }

    fn decode(&self, data: &[u8]) -> Result<Vec<f32>> {
        let (h, rest) = Header::read_expecting(data, AlgoId::TernGrad)?;
        let bitwidth = *rest
            .first()
            .ok_or_else(|| Error::codec("terngrad stream missing bitwidth"))?;
        if !(1..=8).contains(&bitwidth) {
            return Err(Error::codec(format!(
                "invalid terngrad bitwidth {bitwidth}"
            )));
        }
        let min = read_f32(rest, 1)?;
        let max = read_f32(rest, 5)?;
        let bits = &rest[9..];
        let elems = h.elems as usize;
        if bits.len() < packed_len(elems, bitwidth as u32) {
            return Err(Error::codec("terngrad stream truncated"));
        }
        let levels = (1u32 << bitwidth) - 1;
        let gap = if levels > 0 && max > min {
            (max - min) / levels as f32
        } else {
            0.0
        };
        let mut reader = BitReader::new(bits);
        let mut out = Vec::with_capacity(elems);
        for _ in 0..elems {
            let q = reader.read(bitwidth as u32).expect("length checked above");
            out.push(min + q as f32 * gap);
        }
        Ok(out)
    }

    fn compressed_size(&self, elems: usize) -> u64 {
        (HEADER_LEN + 9 + packed_len(elems, self.bitwidth as u32)) as u64
    }

    fn cost_profile(&self) -> KernelCostProfile {
        // Fused min/max reduction pass + quantize/pack pass on encode;
        // one scatter pass on decode.
        KernelCostProfile {
            encode_passes: 2.0,
            decode_passes: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_snap_to_levels() {
        let c = TernGrad::new(2);
        let grad = [0.0, 1.0, 2.0, 3.0];
        let dec = c.decode(&c.encode(&grad, 1)).unwrap();
        // min=0, max=3, 4 levels => gap=1. Values exactly on levels are
        // preserved... except stochastic rounding can push an interior
        // value up by one level. Error is bounded by gap.
        for (o, d) in grad.iter().zip(&dec) {
            assert!((o - d).abs() <= 1.0 + 1e-6, "{o} vs {d}");
            let level = d / 1.0;
            assert!((level - level.round()).abs() < 1e-6, "not on a level: {d}");
        }
        // Endpoints are always exact.
        assert_eq!(dec[0], 0.0);
        assert_eq!(dec[3], 3.0);
    }

    #[test]
    fn error_bounded_by_gap() {
        for bitwidth in [1u8, 2, 4, 8] {
            let c = TernGrad::new(bitwidth);
            let grad: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.7).sin()).collect();
            let dec = c.decode(&c.encode(&grad, 42)).unwrap();
            let (min, max) = grad
                .iter()
                .fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &x| {
                    (lo.min(x), hi.max(x))
                });
            let gap = (max - min) / ((1u32 << bitwidth) - 1).max(1) as f32;
            for (o, d) in grad.iter().zip(&dec) {
                assert!(
                    (o - d).abs() <= gap + 1e-5,
                    "bitwidth {bitwidth}: error {} > gap {gap}",
                    (o - d).abs()
                );
            }
        }
    }

    #[test]
    fn stochastic_rounding_is_unbiased() {
        let c = TernGrad::new(2);
        // A constant interior value: its expectation over many seeds
        // must approach the true value.
        let grad = vec![0.0f32, 3.0, 1.3];
        let mut sum = 0.0f64;
        let trials = 20_000;
        for seed in 0..trials {
            let dec = c.decode(&c.encode(&grad, seed)).unwrap();
            sum += dec[2] as f64;
        }
        let mean = sum / trials as f64;
        assert!((mean - 1.3).abs() < 0.02, "biased mean {mean}");
    }

    #[test]
    fn deterministic_given_seed() {
        let c = TernGrad::new(4);
        let grad: Vec<f32> = (0..257).map(|i| (i as f32).cos()).collect();
        assert_eq!(c.encode(&grad, 9), c.encode(&grad, 9));
        assert_ne!(c.encode(&grad, 9), c.encode(&grad, 10));
    }

    #[test]
    fn constant_gradient() {
        let c = TernGrad::new(2);
        let grad = [5.5f32; 33];
        let dec = c.decode(&c.encode(&grad, 0)).unwrap();
        assert_eq!(dec, vec![5.5; 33]);
    }

    #[test]
    fn empty_gradient() {
        let c = TernGrad::new(8);
        assert!(c.decode(&c.encode(&[], 0)).unwrap().is_empty());
    }

    #[test]
    fn size_scales_with_bitwidth() {
        for (b, expect_bits) in [(1u8, 1usize), (2, 2), (4, 4), (8, 8)] {
            let c = TernGrad::new(b);
            let n = 1024;
            assert_eq!(
                c.compressed_size(n),
                (HEADER_LEN + 9 + n * expect_bits / 8) as u64
            );
        }
    }

    #[test]
    fn decode_rejects_bad_bitwidth() {
        let c = TernGrad::new(2);
        let mut enc = c.encode(&[1.0, 2.0], 0);
        enc[HEADER_LEN] = 13; // Corrupt the bitwidth byte.
        assert!(c.decode(&enc).is_err());
    }

    #[test]
    #[should_panic(expected = "bitwidth must be in 1..=8")]
    fn invalid_bitwidth_panics() {
        TernGrad::new(0);
    }
}

//! Gradient dropping (Aji & Heafield, "Sparse communication for
//! distributed gradient descent", EMNLP 2017).
//!
//! Drops every element whose magnitude falls below a threshold chosen
//! so that approximately a `rate`-fraction survives. Unlike DGC's
//! exact top-k, GradDrop estimates the threshold from a uniform sample
//! of the gradient (the original paper samples 0.1% of elements),
//! so the survivor count is only approximately `rate * n` — the
//! compressed size is data-dependent.
//!
//! The stream layout is the same sparse (indices, values) format as
//! DGC, under its own algorithm id.

use crate::dgc::{read_sparse, write_sparse};
use crate::header::{AlgoId, Header, HEADER_LEN};
use crate::{AlgorithmKind, Compressor, KernelCostProfile};
use hipress_util::rng::{Rng64, Xoshiro256};
use hipress_util::Result;

/// Minimum number of sampled elements for threshold estimation.
const MIN_SAMPLE: usize = 256;

/// The sampled-threshold gradient dropper.
#[derive(Debug, Clone, Copy)]
pub struct GradDrop {
    rate: f64,
}

impl GradDrop {
    /// Creates the dropper keeping approximately `rate` of the
    /// elements (`0 < rate <= 1`).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `(0, 1]`.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate > 0.0 && rate <= 1.0,
            "GradDrop rate must be in (0, 1], got {rate}"
        );
        Self { rate }
    }

    /// The configured keep-rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Estimates the drop threshold from a uniform random sample of
    /// the gradient magnitudes.
    fn estimate_threshold(&self, grad: &[f32], rng: &mut Xoshiro256) -> f32 {
        let n = grad.len();
        let sample_size = (n / 100).max(MIN_SAMPLE).min(n);
        let mut sample: Vec<f32> = (0..sample_size).map(|_| grad[rng.index(n)].abs()).collect();
        // The survivor fraction `rate` corresponds to the
        // (1-rate)-quantile of magnitudes.
        let keep = ((sample.len() as f64 * self.rate).ceil() as usize).clamp(1, sample.len());
        let cut = sample.len() - keep;
        sample.select_nth_unstable_by(cut, f32::total_cmp);
        sample[cut]
    }
}

impl Compressor for GradDrop {
    fn name(&self) -> &'static str {
        "graddrop"
    }

    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::Sparsification
    }

    fn encode(&self, grad: &[f32], seed: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.compressed_size(grad.len()) as usize);
        Header {
            algo: AlgoId::GradDrop,
            elems: grad.len() as u32,
        }
        .write(&mut out);
        if grad.is_empty() {
            write_sparse(&mut out, grad, &[]);
            return out;
        }
        let mut rng = Xoshiro256::new(seed);
        let threshold = self.estimate_threshold(grad, &mut rng);
        let indices: Vec<u32> = grad
            .iter()
            .enumerate()
            .filter(|(_, x)| x.abs() >= threshold)
            .map(|(i, _)| i as u32)
            .collect();
        write_sparse(&mut out, grad, &indices);
        out
    }

    fn decode(&self, data: &[u8]) -> Result<Vec<f32>> {
        let (h, rest) = Header::read_expecting(data, AlgoId::GradDrop)?;
        read_sparse(rest, h.elems as usize)
    }

    fn compressed_size(&self, elems: usize) -> u64 {
        // Expected size; the actual stream varies with the sample.
        let k = ((elems as f64 * self.rate).ceil() as usize).min(elems);
        (HEADER_LEN + 4 + k * 8) as u64
    }

    fn cost_profile(&self) -> KernelCostProfile {
        // Sample + filter + compact: two and a half passes on encode
        // (the sample pass touches only ~1% of the data).
        KernelCostProfile {
            encode_passes: 2.5,
            decode_passes: 1.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipress_tensor::synth::{generate, GradientShape};

    #[test]
    fn survivor_count_close_to_rate() {
        let c = GradDrop::new(0.05);
        let grad = generate(50_000, GradientShape::Gaussian { std_dev: 1.0 }, 3);
        let dec = c.decode(&c.encode(grad.as_slice(), 17)).unwrap();
        let survivors = dec.iter().filter(|&&x| x != 0.0).count();
        let expected = 50_000.0 * 0.05;
        assert!(
            (survivors as f64 - expected).abs() / expected < 0.3,
            "survivors {survivors}, expected ~{expected}"
        );
    }

    #[test]
    fn survivors_are_the_large_elements() {
        let c = GradDrop::new(0.1);
        let grad = generate(10_000, GradientShape::Gaussian { std_dev: 1.0 }, 5);
        let dec = c.decode(&c.encode(grad.as_slice(), 1)).unwrap();
        let min_kept = dec
            .iter()
            .filter(|&&x| x != 0.0)
            .fold(f32::INFINITY, |m, &x| m.min(x.abs()));
        let max_dropped = grad
            .as_slice()
            .iter()
            .zip(dec.iter())
            .filter(|(_, &d)| d == 0.0)
            .fold(0.0f32, |m, (&g, _)| m.max(g.abs()));
        // The threshold separates kept from dropped.
        assert!(
            min_kept >= max_dropped * 0.999,
            "{min_kept} < {max_dropped}"
        );
        // Kept values are exact.
        for (g, d) in grad.as_slice().iter().zip(dec.iter()) {
            if *d != 0.0 {
                assert_eq!(g, d);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let c = GradDrop::new(0.02);
        let grad = generate(5000, GradientShape::default_dnn(), 8);
        assert_eq!(c.encode(grad.as_slice(), 33), c.encode(grad.as_slice(), 33));
    }

    #[test]
    fn empty_gradient() {
        let c = GradDrop::new(0.5);
        assert!(c.decode(&c.encode(&[], 0)).unwrap().is_empty());
    }

    #[test]
    fn tiny_gradient_keeps_something() {
        let c = GradDrop::new(0.01);
        let grad = [3.0f32, -1.0];
        let dec = c.decode(&c.encode(&grad, 0)).unwrap();
        assert!(dec.iter().any(|&x| x != 0.0));
    }

    #[test]
    #[should_panic(expected = "rate must be in (0, 1]")]
    fn invalid_rate_panics() {
        GradDrop::new(1.5);
    }
}

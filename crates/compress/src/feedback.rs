//! Error feedback (residual accumulation) for lossy gradient
//! compression.
//!
//! Every algorithm the paper evaluates relies on the sender keeping
//! the part of the gradient the compressor discarded and adding it
//! back before compressing the next iteration's gradient. This is what
//! preserves convergence ("adopting them does not affect model
//! convergence", §2.4): the compression error telescopes instead of
//! accumulating.
//!
//! The wrapper is keyed by gradient name, so one instance serves a
//! whole model's worth of per-layer residual state on a worker.

use crate::Compressor;
use std::collections::HashMap;

/// Per-worker residual state wrapping compression with error feedback.
#[derive(Default)]
pub struct ErrorFeedback {
    residuals: HashMap<String, Vec<f32>>,
}

impl ErrorFeedback {
    /// Creates an empty residual store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compresses `grad` for the gradient named `key`, applying and
    /// updating the stored residual.
    ///
    /// The returned stream encodes `grad + residual`; the new residual
    /// becomes `(grad + residual) - decode(stream)`.
    ///
    /// # Panics
    ///
    /// Panics if the gradient's length changes between iterations for
    /// the same key (model shapes are fixed during training).
    pub fn encode(
        &mut self,
        key: &str,
        grad: &[f32],
        compressor: &dyn Compressor,
        seed: u64,
    ) -> Vec<u8> {
        let residual = self
            .residuals
            .entry(key.to_string())
            .or_insert_with(|| vec![0.0; grad.len()]);
        assert_eq!(
            residual.len(),
            grad.len(),
            "gradient '{key}' changed length between iterations"
        );
        // Corrected gradient: this iteration's gradient plus what
        // previous compressions dropped.
        let corrected: Vec<f32> = grad
            .iter()
            .zip(residual.iter())
            .map(|(&g, &r)| g + r)
            .collect();
        let stream = compressor.encode(&corrected, seed);
        let reconstructed = compressor
            .decode(&stream)
            .expect("compressor must decode its own output");
        for ((r, &c), &d) in residual
            .iter_mut()
            .zip(corrected.iter())
            .zip(reconstructed.iter())
        {
            *r = c - d;
        }
        stream
    }

    /// The stored residual for `key`, if any.
    pub fn residual(&self, key: &str) -> Option<&[f32]> {
        self.residuals.get(key).map(Vec::as_slice)
    }

    /// Number of gradients with residual state.
    pub fn len(&self) -> usize {
        self.residuals.len()
    }

    /// Whether no residual state exists yet.
    pub fn is_empty(&self) -> bool {
        self.residuals.is_empty()
    }

    /// Drops all residual state (e.g., between training runs).
    pub fn reset(&mut self) {
        self.residuals.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Algorithm;
    use hipress_tensor::synth::{generate, GradientShape};

    /// The telescoping property: after T iterations, the sum of all
    /// decoded gradients equals the sum of all true gradients minus
    /// the final residual. Nothing is ever lost permanently.
    #[test]
    fn telescoping_sum() {
        for alg in [
            Algorithm::OneBit,
            Algorithm::Tbq { tau: 0.05 },
            Algorithm::TernGrad { bitwidth: 2 },
            Algorithm::Dgc { rate: 0.05 },
            Algorithm::GradDrop { rate: 0.05 },
        ] {
            let c = alg.build().unwrap();
            let mut fb = ErrorFeedback::new();
            let n = 2000;
            let mut true_sum = vec![0.0f64; n];
            let mut decoded_sum = vec![0.0f64; n];
            for iter in 0..10u64 {
                let grad = generate(n, GradientShape::Gaussian { std_dev: 0.01 }, 100 + iter);
                for (s, &g) in true_sum.iter_mut().zip(grad.as_slice()) {
                    *s += g as f64;
                }
                let stream = fb.encode("layer0", grad.as_slice(), c.as_ref(), iter);
                let dec = c.decode(&stream).unwrap();
                for (s, &d) in decoded_sum.iter_mut().zip(dec.iter()) {
                    *s += d as f64;
                }
            }
            let residual = fb.residual("layer0").unwrap();
            for i in 0..n {
                let lhs = decoded_sum[i] + residual[i] as f64;
                // f32 accumulation tolerance.
                assert!(
                    (lhs - true_sum[i]).abs() < 1e-3,
                    "{}: telescoping violated at {i}: {lhs} vs {}",
                    c.name(),
                    true_sum[i]
                );
            }
        }
    }

    /// With TBQ, a gradient smaller than the threshold is entirely
    /// suppressed, but error feedback accumulates it until it crosses
    /// the threshold and gets transmitted.
    #[test]
    fn small_gradients_eventually_transmitted() {
        let alg = Algorithm::Tbq { tau: 0.5 };
        let c = alg.build().unwrap();
        let mut fb = ErrorFeedback::new();
        let grad = vec![0.2f32; 10];
        let mut transmitted_any = false;
        for iter in 0..5 {
            let stream = fb.encode("g", &grad, c.as_ref(), iter);
            let dec = c.decode(&stream).unwrap();
            if dec.iter().any(|&x| x != 0.0) {
                transmitted_any = true;
                break;
            }
        }
        assert!(
            transmitted_any,
            "error feedback must eventually push small gradients over the threshold"
        );
    }

    #[test]
    fn residual_state_is_per_key() {
        let c = Algorithm::Dgc { rate: 0.5 }.build().unwrap();
        let mut fb = ErrorFeedback::new();
        fb.encode("a", &[1.0, 0.1], c.as_ref(), 0);
        fb.encode("b", &[2.0, 0.2, 0.02], c.as_ref(), 0);
        assert_eq!(fb.len(), 2);
        assert_eq!(fb.residual("a").unwrap().len(), 2);
        assert_eq!(fb.residual("b").unwrap().len(), 3);
        assert!(fb.residual("c").is_none());
        fb.reset();
        assert!(fb.is_empty());
    }

    #[test]
    #[should_panic(expected = "changed length")]
    fn length_change_panics() {
        let c = Algorithm::OneBit.build().unwrap();
        let mut fb = ErrorFeedback::new();
        fb.encode("a", &[1.0, 2.0], c.as_ref(), 0);
        fb.encode("a", &[1.0], c.as_ref(), 1);
    }
}

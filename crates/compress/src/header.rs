//! Common self-describing header for compressed gradient streams.
//!
//! Every algorithm prefixes its payload with this fixed header so that
//! a receiver can decode without out-of-band metadata — mirroring the
//! paper's observation that compressed gradients carry metadata that
//! prevents direct aggregation (§2.5).

use hipress_util::{Error, Result};

/// Identifies the producing algorithm in a compressed stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgoId {
    /// 1-bit quantization.
    OneBit = 1,
    /// Threshold binary quantization.
    Tbq = 2,
    /// Stochastic linear quantization.
    TernGrad = 3,
    /// Top-k sparsification.
    Dgc = 4,
    /// Threshold dropping.
    GradDrop = 5,
}

impl AlgoId {
    fn from_u8(v: u8) -> Option<AlgoId> {
        match v {
            1 => Some(AlgoId::OneBit),
            2 => Some(AlgoId::Tbq),
            3 => Some(AlgoId::TernGrad),
            4 => Some(AlgoId::Dgc),
            5 => Some(AlgoId::GradDrop),
            _ => None,
        }
    }
}

/// Fixed 8-byte header: magic byte, algorithm id, reserved flags, and
/// the element count of the original gradient.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Producing algorithm.
    pub algo: AlgoId,
    /// Number of `f32` elements in the original gradient.
    pub elems: u32,
}

/// First byte of every compressed stream.
const MAGIC: u8 = 0xC9;

/// Serialized header length in bytes.
pub(crate) const HEADER_LEN: usize = 8;

impl Header {
    /// Appends the serialized header to `out`.
    pub fn write(&self, out: &mut Vec<u8>) {
        out.push(MAGIC);
        out.push(self.algo as u8);
        out.extend_from_slice(&[0, 0]); // Reserved.
        out.extend_from_slice(&self.elems.to_le_bytes());
    }

    /// Parses a header from the front of `data`, returning it and the
    /// remaining payload.
    pub fn read(data: &[u8]) -> Result<(Header, &[u8])> {
        if data.len() < HEADER_LEN {
            return Err(Error::codec(format!(
                "stream too short for header: {} bytes",
                data.len()
            )));
        }
        if data[0] != MAGIC {
            return Err(Error::codec(format!("bad magic byte {:#x}", data[0])));
        }
        let algo = AlgoId::from_u8(data[1])
            .ok_or_else(|| Error::codec(format!("unknown algorithm id {}", data[1])))?;
        let elems = u32::from_le_bytes([data[4], data[5], data[6], data[7]]);
        Ok((Header { algo, elems }, &data[HEADER_LEN..]))
    }

    /// Parses a header and verifies it names the expected algorithm.
    pub fn read_expecting(data: &[u8], expected: AlgoId) -> Result<(Header, &[u8])> {
        let (h, rest) = Self::read(data)?;
        if h.algo != expected {
            return Err(Error::codec(format!(
                "expected {:?} stream, found {:?}",
                expected, h.algo
            )));
        }
        Ok((h, rest))
    }
}

/// Reads a little-endian `f32` at `offset` in `data`.
pub(crate) fn read_f32(data: &[u8], offset: usize) -> Result<f32> {
    let bytes: [u8; 4] = data
        .get(offset..offset + 4)
        .ok_or_else(|| Error::codec("truncated f32 field"))?
        .try_into()
        .expect("slice has length 4");
    Ok(f32::from_le_bytes(bytes))
}

/// Reads a little-endian `u32` at `offset` in `data`.
pub(crate) fn read_u32(data: &[u8], offset: usize) -> Result<u32> {
    let bytes: [u8; 4] = data
        .get(offset..offset + 4)
        .ok_or_else(|| Error::codec("truncated u32 field"))?
        .try_into()
        .expect("slice has length 4");
    Ok(u32::from_le_bytes(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let h = Header {
            algo: AlgoId::TernGrad,
            elems: 123_456,
        };
        let mut buf = Vec::new();
        h.write(&mut buf);
        assert_eq!(buf.len(), HEADER_LEN);
        let (parsed, rest) = Header::read(&buf).unwrap();
        assert_eq!(parsed, h);
        assert!(rest.is_empty());
    }

    #[test]
    fn rejects_short_stream() {
        assert!(Header::read(&[MAGIC, 1]).is_err());
    }

    #[test]
    fn rejects_bad_magic() {
        let mut buf = Vec::new();
        Header {
            algo: AlgoId::OneBit,
            elems: 1,
        }
        .write(&mut buf);
        buf[0] = 0x00;
        assert!(Header::read(&buf).is_err());
    }

    #[test]
    fn rejects_unknown_algorithm() {
        let mut buf = Vec::new();
        Header {
            algo: AlgoId::OneBit,
            elems: 1,
        }
        .write(&mut buf);
        buf[1] = 99;
        assert!(Header::read(&buf).is_err());
    }

    #[test]
    fn read_expecting_checks_algo() {
        let mut buf = Vec::new();
        Header {
            algo: AlgoId::Dgc,
            elems: 9,
        }
        .write(&mut buf);
        assert!(Header::read_expecting(&buf, AlgoId::Dgc).is_ok());
        assert!(Header::read_expecting(&buf, AlgoId::OneBit).is_err());
    }

    #[test]
    fn scalar_readers_bounds_check() {
        let data = [0u8; 6];
        assert!(read_f32(&data, 0).is_ok());
        assert!(read_f32(&data, 3).is_err());
        assert!(read_u32(&data, 2).is_ok());
        assert!(read_u32(&data, 5).is_err());
    }
}

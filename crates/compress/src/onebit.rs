//! 1-bit quantization (Seide et al., "1-bit stochastic gradient
//! descent", Interspeech 2014).
//!
//! Every element is reduced to its sign bit. Reconstruction maps a set
//! bit to the mean of the positive elements and a clear bit to the
//! mean of the non-positive elements, which minimizes the squared
//! reconstruction error for the chosen partition. This is the
//! algorithm AWS integrated into BytePS ("BytePS-onebit") and the one
//! the paper most frequently evaluates.
//!
//! Stream layout after the common header:
//!
//! ```text
//! [neg_mean f32][pos_mean f32][elems x 1 bit, LSB-first, zero padded]
//! ```
//!
//! The data volume reduction is 1/32 of fp32 plus 16 bytes of
//! metadata — the "96.9%" figure quoted in §2.4.

use crate::header::{read_f32, AlgoId, Header, HEADER_LEN};
use crate::{AlgorithmKind, Compressor, KernelCostProfile};
use hipress_util::bits::{packed_len, BitReader, BitWriter};
use hipress_util::{Error, Result};

/// The optimized (CompLL-style) 1-bit quantizer.
///
/// Encode makes two passes (mean computation fused into one scan, sign
/// packing in a second), matching the fused-kernel implementation the
/// paper's code generator emits.
#[derive(Debug, Default, Clone, Copy)]
pub struct OneBit;

impl OneBit {
    /// Creates the compressor (it is parameterless).
    pub fn new() -> Self {
        OneBit
    }
}

/// Computes the reconstruction levels: means of the positive and
/// non-positive element subsets. Zero-count subsets get level 0.
fn reconstruction_levels(grad: &[f32]) -> (f32, f32) {
    let (mut pos_sum, mut pos_n, mut neg_sum, mut neg_n) = (0.0f64, 0u64, 0.0f64, 0u64);
    for &x in grad {
        if x > 0.0 {
            pos_sum += x as f64;
            pos_n += 1;
        } else {
            neg_sum += x as f64;
            neg_n += 1;
        }
    }
    let pos_mean = if pos_n > 0 {
        (pos_sum / pos_n as f64) as f32
    } else {
        0.0
    };
    let neg_mean = if neg_n > 0 {
        (neg_sum / neg_n as f64) as f32
    } else {
        0.0
    };
    (neg_mean, pos_mean)
}

impl Compressor for OneBit {
    fn name(&self) -> &'static str {
        "onebit"
    }

    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::Quantization
    }

    fn encode(&self, grad: &[f32], _seed: u64) -> Vec<u8> {
        let (neg_mean, pos_mean) = reconstruction_levels(grad);
        let mut out = Vec::with_capacity(self.compressed_size(grad.len()) as usize);
        Header {
            algo: AlgoId::OneBit,
            elems: grad.len() as u32,
        }
        .write(&mut out);
        out.extend_from_slice(&neg_mean.to_le_bytes());
        out.extend_from_slice(&pos_mean.to_le_bytes());
        let mut bits = BitWriter::with_capacity_bits(grad.len());
        for &x in grad {
            bits.write_bit(x > 0.0);
        }
        out.extend_from_slice(&bits.finish());
        out
    }

    fn decode(&self, data: &[u8]) -> Result<Vec<f32>> {
        let (h, rest) = Header::read_expecting(data, AlgoId::OneBit)?;
        let neg_mean = read_f32(rest, 0)?;
        let pos_mean = read_f32(rest, 4)?;
        let bits = &rest[8..];
        let elems = h.elems as usize;
        if bits.len() < packed_len(elems, 1) {
            return Err(Error::codec("onebit stream truncated"));
        }
        let mut reader = BitReader::new(bits);
        let mut out = Vec::with_capacity(elems);
        for _ in 0..elems {
            let bit = reader.read_bit().expect("length checked above");
            out.push(if bit { pos_mean } else { neg_mean });
        }
        Ok(out)
    }

    fn compressed_size(&self, elems: usize) -> u64 {
        (HEADER_LEN + 8 + packed_len(elems, 1)) as u64
    }

    fn cost_profile(&self) -> KernelCostProfile {
        // One fused reduction pass + one pack pass on encode; a single
        // scatter pass on decode.
        KernelCostProfile {
            encode_passes: 2.0,
            decode_passes: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(grad: &[f32]) -> Vec<f32> {
        let c = OneBit::new();
        let enc = c.encode(grad, 0);
        assert_eq!(enc.len() as u64, c.compressed_size(grad.len()));
        c.decode(&enc).unwrap()
    }

    #[test]
    fn signs_are_preserved() {
        let grad = [1.0, -2.0, 3.0, -4.0, 0.5, -0.1];
        let dec = roundtrip(&grad);
        for (orig, rec) in grad.iter().zip(&dec) {
            assert_eq!(orig.is_sign_positive() && *orig > 0.0, *rec > 0.0);
        }
    }

    #[test]
    fn reconstruction_levels_are_subset_means() {
        let grad = [2.0, 4.0, -1.0, -3.0];
        let dec = roundtrip(&grad);
        assert_eq!(dec, vec![3.0, 3.0, -2.0, -2.0]);
    }

    #[test]
    fn all_positive_gradient() {
        let grad = [1.0, 2.0, 3.0];
        let dec = roundtrip(&grad);
        assert_eq!(dec, vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn all_zero_gradient() {
        let grad = [0.0; 17];
        let dec = roundtrip(&grad);
        assert_eq!(dec, vec![0.0; 17]);
    }

    #[test]
    fn empty_gradient() {
        let dec = roundtrip(&[]);
        assert!(dec.is_empty());
    }

    #[test]
    fn ratio_approaches_one_thirty_second() {
        let c = OneBit::new();
        // For a large gradient, 1 bit per 32-bit element plus small
        // constant metadata: ratio -> 1/32 = 3.125% (96.9% reduction,
        // the figure from SS2.4 of the paper).
        let r = c.ratio(1_000_000);
        assert!((r - 1.0 / 32.0).abs() < 0.001, "ratio {r}");
    }

    #[test]
    fn mean_preserved_in_expectation() {
        // onebit preserves the per-subset means exactly, so the total
        // sum of the reconstruction equals the sum of the original.
        let grad: Vec<f32> = (0..1000)
            .map(|i| ((i * 7919) % 100) as f32 - 49.5)
            .collect();
        let dec = roundtrip(&grad);
        let s1: f64 = grad.iter().map(|&x| x as f64).sum();
        let s2: f64 = dec.iter().map(|&x| x as f64).sum();
        assert!((s1 - s2).abs() / s1.abs().max(1.0) < 1e-3);
    }

    #[test]
    fn decode_rejects_truncation() {
        let c = OneBit::new();
        let enc = c.encode(&[1.0; 100], 0);
        assert!(c.decode(&enc[..enc.len() - 2]).is_err());
        assert!(c.decode(&enc[..4]).is_err());
    }
}

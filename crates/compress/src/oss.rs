//! Naive open-source baseline implementations (§4.4, Table 5).
//!
//! The paper compares CompLL-generated kernels against the open-source
//! implementations of each algorithm and reports large speedups
//! (CompLL-TBQ over 12× faster than OSS-TBQ, CompLL-DGC up to 5.1×
//! faster than OSS-DGC, CompLL-onebit up to 35.6× faster than the
//! CPU-only OSS-onebit). We reproduce those baselines as deliberately
//! unoptimized Rust: full sorts instead of partial selection, multiple
//! separate passes instead of fused ones, per-element buffer growth
//! and intermediate copies instead of preallocated packing.
//!
//! The OSS encoders emit streams decodable by the optimized decoders
//! (same wire format) so they are drop-in interchangeable in the
//! synchronization layer — just slower, both in wall-clock time
//! (measured by the criterion micro-benchmarks) and in their simulated
//! [`KernelCostProfile`]s (pass counts scaled by the paper's reported
//! factors).

use crate::header::{AlgoId, Header};
use crate::{dgc, AlgorithmKind, Compressor, KernelCostProfile};
use hipress_util::bits::BitWriter;
use hipress_util::rng::{Rng64, Xoshiro256};
use hipress_util::Result;

/// CPU-only OSS onebit (the BytePS implementation, reference \[11\] in
/// the paper, "implemented only on CPU").
#[derive(Debug, Default, Clone, Copy)]
pub struct OssOneBit;

impl OssOneBit {
    /// Creates the baseline compressor.
    pub fn new() -> Self {
        OssOneBit
    }
}

impl Compressor for OssOneBit {
    fn name(&self) -> &'static str {
        "oss-onebit"
    }

    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::Quantization
    }

    fn encode(&self, grad: &[f32], _seed: u64) -> Vec<u8> {
        // Naive: separate full passes for the positive mean, the
        // negative mean, and the signs, plus an intermediate copy.
        let copy: Vec<f32> = grad.to_vec();
        let positives: Vec<f32> = copy.iter().copied().filter(|&x| x > 0.0).collect();
        let negatives: Vec<f32> = copy.iter().copied().filter(|&x| x <= 0.0).collect();
        let pos_mean = if positives.is_empty() {
            0.0
        } else {
            (positives.iter().map(|&x| x as f64).sum::<f64>() / positives.len() as f64) as f32
        };
        let neg_mean = if negatives.is_empty() {
            0.0
        } else {
            (negatives.iter().map(|&x| x as f64).sum::<f64>() / negatives.len() as f64) as f32
        };
        // Another pass to collect signs into an intermediate bool
        // vector before packing.
        let signs: Vec<bool> = copy.iter().map(|&x| x > 0.0).collect();
        let mut out = Vec::new();
        Header {
            algo: AlgoId::OneBit,
            elems: grad.len() as u32,
        }
        .write(&mut out);
        out.extend_from_slice(&neg_mean.to_le_bytes());
        out.extend_from_slice(&pos_mean.to_le_bytes());
        let mut bits = BitWriter::new();
        for b in signs {
            bits.write_bit(b);
        }
        out.extend_from_slice(&bits.finish());
        out
    }

    fn decode(&self, data: &[u8]) -> Result<Vec<f32>> {
        // Extra copy on the way out, as the OSS code performs a
        // host-side staging copy.
        let dense = crate::onebit::OneBit::new().decode(data)?;
        Ok(dense.to_vec())
    }

    fn compressed_size(&self, elems: usize) -> u64 {
        crate::onebit::OneBit::new().compressed_size(elems)
    }

    fn cost_profile(&self) -> KernelCostProfile {
        // Four separate scans plus staging copies. (The additional
        // 35.6x CPU penalty is applied by the execution placement —
        // this profile describes the kernel as if it ran on GPU.)
        KernelCostProfile {
            encode_passes: 4.0,
            decode_passes: 2.0,
        }
    }
}

/// OSS TBQ: unfused threshold pass producing one byte per code before
/// repacking — the >12× encode gap of §4.4.
#[derive(Debug, Clone, Copy)]
pub struct OssTbq {
    tau: f32,
}

impl OssTbq {
    /// Creates the baseline with threshold `tau`.
    pub fn new(tau: f32) -> Self {
        assert!(
            tau > 0.0 && tau.is_finite(),
            "TBQ threshold must be positive"
        );
        Self { tau }
    }
}

impl Compressor for OssTbq {
    fn name(&self) -> &'static str {
        "oss-tbq"
    }

    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::Quantization
    }

    fn encode(&self, grad: &[f32], _seed: u64) -> Vec<u8> {
        // Stage 1: classify into a byte-per-element buffer.
        let mut codes: Vec<u8> = Vec::new();
        for &x in grad {
            let code = if x >= self.tau {
                0b01
            } else if x <= -self.tau {
                0b10
            } else {
                0b00
            };
            codes.push(code); // Unreserved growth, reallocating often.
        }
        // Stage 2: repack byte codes into 2-bit codes.
        let mut out = Vec::new();
        Header {
            algo: AlgoId::Tbq,
            elems: grad.len() as u32,
        }
        .write(&mut out);
        out.extend_from_slice(&self.tau.to_le_bytes());
        let mut bits = BitWriter::new();
        for c in codes {
            bits.write(c as u64, 2);
        }
        out.extend_from_slice(&bits.finish());
        out
    }

    fn decode(&self, data: &[u8]) -> Result<Vec<f32>> {
        crate::tbq::Tbq::new(self.tau).decode(data)
    }

    fn compressed_size(&self, elems: usize) -> u64 {
        crate::tbq::Tbq::new(self.tau).compressed_size(elems)
    }

    fn cost_profile(&self) -> KernelCostProfile {
        // The paper reports OSS-TBQ encode >12x slower than CompLL-TBQ
        // (which is single-pass).
        KernelCostProfile {
            encode_passes: 12.0,
            decode_passes: 3.0,
        }
    }
}

/// OSS TernGrad: separate min and max reduction passes, f64 interior
/// math, and per-element bit writes without preallocation.
#[derive(Debug, Clone, Copy)]
pub struct OssTernGrad {
    bitwidth: u8,
}

impl OssTernGrad {
    /// Creates the baseline with the given bits-per-element.
    pub fn new(bitwidth: u8) -> Self {
        assert!((1..=8).contains(&bitwidth), "bitwidth must be in 1..=8");
        Self { bitwidth }
    }
}

impl Compressor for OssTernGrad {
    fn name(&self) -> &'static str {
        "oss-terngrad"
    }

    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::Quantization
    }

    fn encode(&self, grad: &[f32], seed: u64) -> Vec<u8> {
        let mut rng = Xoshiro256::new(seed);
        // Two separate reduction passes.
        let min = grad.iter().copied().fold(f32::INFINITY, f32::min);
        let max = grad.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let (min, max) = if grad.is_empty() {
            (0.0, 0.0)
        } else {
            (min, max)
        };
        let levels = (1u32 << self.bitwidth) - 1;
        let gap = if max > min {
            (max - min) / levels as f32
        } else {
            0.0
        };
        let mut out = Vec::new();
        Header {
            algo: AlgoId::TernGrad,
            elems: grad.len() as u32,
        }
        .write(&mut out);
        out.push(self.bitwidth);
        out.extend_from_slice(&min.to_le_bytes());
        out.extend_from_slice(&max.to_le_bytes());
        // Stage quantized levels into a full u32 buffer before
        // packing (the unfused OSS structure), then pack in a second
        // pass.
        let mut staged: Vec<u32> = Vec::new();
        for &x in grad {
            let q = if gap > 0.0 {
                let r = ((x - min) as f64) / (gap as f64);
                ((r + rng.next_f32() as f64).floor() as u32).min(levels)
            } else {
                0
            };
            staged.push(q); // Unreserved growth.
        }
        let staged2 = staged.clone(); // Host staging copy.
        let mut bits = BitWriter::new();
        for q in staged2 {
            bits.write(q as u64, self.bitwidth as u32);
        }
        out.extend_from_slice(&bits.finish());
        out
    }

    fn decode(&self, data: &[u8]) -> Result<Vec<f32>> {
        crate::terngrad::TernGrad::new(self.bitwidth).decode(data)
    }

    fn compressed_size(&self, elems: usize) -> u64 {
        crate::terngrad::TernGrad::new(self.bitwidth).compressed_size(elems)
    }

    fn cost_profile(&self) -> KernelCostProfile {
        KernelCostProfile {
            encode_passes: 6.0,
            decode_passes: 2.0,
        }
    }
}

/// OSS DGC: finds the top-k by fully sorting the gradient — the
/// O(n log n) strategy behind the up-to-5.1× encode gap of §4.4.
#[derive(Debug, Clone, Copy)]
pub struct OssDgc {
    rate: f64,
}

impl OssDgc {
    /// Creates the baseline keeping `rate` of the elements.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0 && rate <= 1.0, "rate must be in (0, 1]");
        Self { rate }
    }
}

impl Compressor for OssDgc {
    fn name(&self) -> &'static str {
        "oss-dgc"
    }

    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::Sparsification
    }

    fn encode(&self, grad: &[f32], _seed: u64) -> Vec<u8> {
        let k = crate::dgc::Dgc::new(self.rate).k_for(grad.len());
        // Full sort of (magnitude, index) pairs.
        let mut pairs: Vec<(f32, u32)> = grad
            .iter()
            .enumerate()
            .map(|(i, &x)| (x.abs(), i as u32))
            .collect();
        pairs.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut indices: Vec<u32> = pairs[..k].iter().map(|&(_, i)| i).collect();
        indices.sort_unstable();
        let mut out = Vec::new();
        Header {
            algo: AlgoId::Dgc,
            elems: grad.len() as u32,
        }
        .write(&mut out);
        dgc::write_sparse(&mut out, grad, &indices);
        out
    }

    fn decode(&self, data: &[u8]) -> Result<Vec<f32>> {
        crate::dgc::Dgc::new(self.rate).decode(data)
    }

    fn compressed_size(&self, elems: usize) -> u64 {
        crate::dgc::Dgc::new(self.rate).compressed_size(elems)
    }

    fn cost_profile(&self) -> KernelCostProfile {
        // Paper: CompLL-DGC encode up to 5.1x faster than the manually
        // optimized OSS-DGC GPU kernel. CompLL-DGC is ~3 passes.
        KernelCostProfile {
            encode_passes: 15.3,
            decode_passes: 3.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Algorithm;
    use hipress_tensor::synth::{generate, GradientShape};

    /// OSS and optimized implementations must agree semantically.
    #[test]
    fn oss_matches_optimized_output() {
        let grad = generate(4096, GradientShape::default_dnn(), 11);
        let cases = [
            Algorithm::OneBit,
            Algorithm::Tbq { tau: 0.001 },
            Algorithm::TernGrad { bitwidth: 2 },
            Algorithm::Dgc { rate: 0.01 },
        ];
        for alg in cases {
            let opt = alg.build().unwrap();
            let oss = alg.build_oss().unwrap();
            let a = opt.decode(&opt.encode(grad.as_slice(), 5)).unwrap();
            let b = oss.decode(&oss.encode(grad.as_slice(), 5)).unwrap();
            assert_eq!(a.len(), b.len(), "{}", oss.name());
            // onebit/tbq/terngrad streams are byte-identical given the
            // same seed; DGC may differ on magnitude ties, so compare
            // reconstruction error instead.
            match alg {
                Algorithm::Dgc { .. } => {
                    let nz_a = a.iter().filter(|&&x| x != 0.0).count();
                    let nz_b = b.iter().filter(|&&x| x != 0.0).count();
                    assert_eq!(nz_a, nz_b, "same survivor count");
                }
                _ => assert_eq!(a, b, "{} output differs", oss.name()),
            }
        }
    }

    /// The OSS cost profiles must be strictly worse than the optimized
    /// ones (these gaps drive the SS4.4 speedup reproduction).
    #[test]
    fn oss_cost_profiles_are_worse() {
        let cases = [
            Algorithm::OneBit,
            Algorithm::Tbq { tau: 0.01 },
            Algorithm::TernGrad { bitwidth: 2 },
            Algorithm::Dgc { rate: 0.001 },
        ];
        for alg in cases {
            let opt = alg.build().unwrap().cost_profile();
            let oss = alg.build_oss().unwrap().cost_profile();
            assert!(
                oss.encode_passes > opt.encode_passes,
                "{:?}: OSS encode must cost more",
                alg
            );
            assert!(oss.decode_passes > opt.decode_passes, "{:?}", alg);
        }
    }

    #[test]
    fn oss_sizes_match_optimized() {
        for n in [0usize, 1, 1000] {
            assert_eq!(
                OssOneBit::new().compressed_size(n),
                crate::onebit::OneBit::new().compressed_size(n)
            );
            assert_eq!(
                OssDgc::new(0.01).compressed_size(n),
                crate::dgc::Dgc::new(0.01).compressed_size(n)
            );
        }
    }
}

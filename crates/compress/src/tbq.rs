//! Threshold binary quantization (Strom, "Scalable distributed DNN
//! training using commodity GPU cloud computing", Interspeech 2015).
//!
//! Elements whose magnitude reaches the threshold τ are transmitted as
//! ±τ; everything else becomes zero (and, in training, stays in the
//! sender's residual via [`crate::ErrorFeedback`]). Each element takes
//! two bits: `00` = zero, `01` = +τ, `10` = −τ.
//!
//! Stream layout after the common header:
//!
//! ```text
//! [tau f32][elems x 2 bits, LSB-first, zero padded]
//! ```

use crate::header::{read_f32, AlgoId, Header, HEADER_LEN};
use crate::{AlgorithmKind, Compressor, KernelCostProfile};
use hipress_util::bits::{packed_len, BitReader, BitWriter};
use hipress_util::{Error, Result};

/// 2-bit code for a zero element.
const CODE_ZERO: u64 = 0b00;
/// 2-bit code for +τ.
const CODE_POS: u64 = 0b01;
/// 2-bit code for −τ.
const CODE_NEG: u64 = 0b10;

/// The optimized threshold binary quantizer.
#[derive(Debug, Clone, Copy)]
pub struct Tbq {
    tau: f32,
}

impl Tbq {
    /// Creates the quantizer with threshold `tau`.
    ///
    /// # Panics
    ///
    /// Panics if `tau` is not strictly positive and finite.
    pub fn new(tau: f32) -> Self {
        assert!(
            tau > 0.0 && tau.is_finite(),
            "TBQ threshold must be positive and finite"
        );
        Self { tau }
    }

    /// The configured threshold.
    pub fn tau(&self) -> f32 {
        self.tau
    }
}

impl Compressor for Tbq {
    fn name(&self) -> &'static str {
        "tbq"
    }

    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::Quantization
    }

    fn encode(&self, grad: &[f32], _seed: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.compressed_size(grad.len()) as usize);
        Header {
            algo: AlgoId::Tbq,
            elems: grad.len() as u32,
        }
        .write(&mut out);
        out.extend_from_slice(&self.tau.to_le_bytes());
        let mut bits = BitWriter::with_capacity_bits(grad.len() * 2);
        for &x in grad {
            let code = if x >= self.tau {
                CODE_POS
            } else if x <= -self.tau {
                CODE_NEG
            } else {
                CODE_ZERO
            };
            bits.write(code, 2);
        }
        out.extend_from_slice(&bits.finish());
        out
    }

    fn decode(&self, data: &[u8]) -> Result<Vec<f32>> {
        let (h, rest) = Header::read_expecting(data, AlgoId::Tbq)?;
        let tau = read_f32(rest, 0)?;
        let bits = &rest[4..];
        let elems = h.elems as usize;
        if bits.len() < packed_len(elems, 2) {
            return Err(Error::codec("tbq stream truncated"));
        }
        let mut reader = BitReader::new(bits);
        let mut out = Vec::with_capacity(elems);
        for _ in 0..elems {
            let code = reader.read(2).expect("length checked above");
            out.push(match code {
                CODE_ZERO => 0.0,
                CODE_POS => tau,
                CODE_NEG => -tau,
                other => {
                    return Err(Error::codec(format!("invalid TBQ code {other:#b}")));
                }
            });
        }
        Ok(out)
    }

    fn compressed_size(&self, elems: usize) -> u64 {
        (HEADER_LEN + 4 + packed_len(elems, 2)) as u64
    }

    fn cost_profile(&self) -> KernelCostProfile {
        // Single-pass threshold + pack on encode, single scatter pass
        // on decode.
        KernelCostProfile {
            encode_passes: 1.0,
            decode_passes: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantizes_to_three_levels() {
        let c = Tbq::new(0.5);
        let grad = [0.7, -0.6, 0.4, -0.3, 0.5, -0.5, 0.0];
        let dec = c.decode(&c.encode(&grad, 0)).unwrap();
        assert_eq!(dec, vec![0.5, -0.5, 0.0, 0.0, 0.5, -0.5, 0.0]);
    }

    #[test]
    fn two_bits_per_element() {
        let c = Tbq::new(1.0);
        // Metadata: 8 header + 4 tau. 100 elements = 200 bits = 25 bytes.
        assert_eq!(c.compressed_size(100), 8 + 4 + 25);
        let r = c.ratio(1_000_000);
        assert!((r - 2.0 / 32.0).abs() < 1e-3, "ratio {r}");
    }

    #[test]
    fn roundtrip_empty() {
        let c = Tbq::new(0.1);
        assert!(c.decode(&c.encode(&[], 0)).unwrap().is_empty());
    }

    #[test]
    fn quantization_error_bounded_by_tau() {
        let c = Tbq::new(0.25);
        let grad: Vec<f32> = (0..500)
            .map(|i| ((i as f32) / 250.0 - 1.0) * 0.24)
            .collect();
        // All magnitudes < tau: everything becomes zero, so the error
        // equals the original magnitude, which is < tau.
        let dec = c.decode(&c.encode(&grad, 0)).unwrap();
        for (o, d) in grad.iter().zip(&dec) {
            assert_eq!(*d, 0.0);
            assert!((o - d).abs() < 0.25);
        }
    }

    #[test]
    fn decode_rejects_truncation() {
        let c = Tbq::new(0.5);
        let enc = c.encode(&[1.0; 64], 0);
        assert!(c.decode(&enc[..enc.len() - 1]).is_err());
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_threshold_panics() {
        Tbq::new(0.0);
    }
}

//! Deep Gradient Compression top-k sparsification (Lin et al.,
//! ICLR 2018).
//!
//! Keeps only the `rate`-fraction of elements with the largest
//! magnitudes, transmitting them as (index, value) pairs. With the
//! paper's default rate of 0.1% this reduces the data volume roughly
//! 250× (8 bytes per survivor vs 4 bytes per element).
//!
//! The optimized implementation selects the exact top-k with an
//! average-O(n) quickselect over magnitudes (the GPU analogue is the
//! sampled-threshold + trim kernel DGC describes). The OSS baseline in
//! [`crate::oss`] instead sorts the entire gradient, reproducing the
//! up-to-5.1× encode gap reported in §4.4.
//!
//! Stream layout after the common header:
//!
//! ```text
//! [k u32][k x index u32][k x value f32]
//! ```

use crate::header::{read_f32, read_u32, AlgoId, Header, HEADER_LEN};
use crate::{AlgorithmKind, Compressor, KernelCostProfile};
use hipress_util::{Error, Result};

/// The optimized top-k sparsifier.
#[derive(Debug, Clone, Copy)]
pub struct Dgc {
    rate: f64,
}

impl Dgc {
    /// Creates the sparsifier keeping `rate` of the elements
    /// (`0 < rate <= 1`).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `(0, 1]`.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate > 0.0 && rate <= 1.0,
            "DGC rate must be in (0, 1], got {rate}"
        );
        Self { rate }
    }

    /// The configured keep-rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Number of elements kept for an `elems`-element gradient: at
    /// least one (for non-empty input), at most all of them.
    pub fn k_for(&self, elems: usize) -> usize {
        if elems == 0 {
            return 0;
        }
        ((elems as f64 * self.rate).ceil() as usize).clamp(1, elems)
    }
}

/// Selects the indices of the `k` largest-magnitude elements using an
/// average-O(n) partial selection. The returned indices are sorted
/// ascending (coalesced scatter order on a GPU).
pub(crate) fn top_k_indices(grad: &[f32], k: usize) -> Vec<u32> {
    debug_assert!(k <= grad.len());
    if k == 0 {
        return Vec::new();
    }
    if k == grad.len() {
        return (0..grad.len() as u32).collect();
    }
    let mut idx: Vec<u32> = (0..grad.len() as u32).collect();
    // Partition so the k largest magnitudes occupy idx[..k]. Ties are
    // broken arbitrarily by quickselect, which matches GPU behaviour.
    idx.select_nth_unstable_by(k - 1, |&a, &b| {
        grad[b as usize].abs().total_cmp(&grad[a as usize].abs())
    });
    idx.truncate(k);
    idx.sort_unstable();
    idx
}

/// Serializes the sparse (indices, values) representation shared by
/// DGC and GradDrop.
pub(crate) fn write_sparse(out: &mut Vec<u8>, grad: &[f32], indices: &[u32]) {
    out.extend_from_slice(&(indices.len() as u32).to_le_bytes());
    for &i in indices {
        out.extend_from_slice(&i.to_le_bytes());
    }
    for &i in indices {
        out.extend_from_slice(&grad[i as usize].to_le_bytes());
    }
}

/// Deserializes a sparse stream section into a dense gradient.
pub(crate) fn read_sparse(rest: &[u8], elems: usize) -> Result<Vec<f32>> {
    let k = read_u32(rest, 0)? as usize;
    let need = 4 + k * 8;
    if rest.len() < need {
        return Err(Error::codec(format!(
            "sparse stream truncated: need {need} bytes, have {}",
            rest.len()
        )));
    }
    let mut out = vec![0.0f32; elems];
    for j in 0..k {
        let idx = read_u32(rest, 4 + j * 4)? as usize;
        if idx >= elems {
            return Err(Error::codec(format!(
                "sparse index {idx} out of bounds for {elems} elements"
            )));
        }
        let val = read_f32(rest, 4 + k * 4 + j * 4)?;
        out[idx] = val;
    }
    Ok(out)
}

impl Compressor for Dgc {
    fn name(&self) -> &'static str {
        "dgc"
    }

    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::Sparsification
    }

    fn encode(&self, grad: &[f32], _seed: u64) -> Vec<u8> {
        let k = self.k_for(grad.len());
        let indices = top_k_indices(grad, k);
        let mut out = Vec::with_capacity(self.compressed_size(grad.len()) as usize);
        Header {
            algo: AlgoId::Dgc,
            elems: grad.len() as u32,
        }
        .write(&mut out);
        write_sparse(&mut out, grad, &indices);
        out
    }

    fn decode(&self, data: &[u8]) -> Result<Vec<f32>> {
        let (h, rest) = Header::read_expecting(data, AlgoId::Dgc)?;
        read_sparse(rest, h.elems as usize)
    }

    fn compressed_size(&self, elems: usize) -> u64 {
        (HEADER_LEN + 4 + self.k_for(elems) * 8) as u64
    }

    fn cost_profile(&self) -> KernelCostProfile {
        // Sampled-threshold estimation + filter + compact: roughly
        // three passes over the input on encode; decode is a zero-fill
        // plus sparse scatter.
        KernelCostProfile {
            encode_passes: 3.0,
            decode_passes: 1.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_exactly_k_largest() {
        let c = Dgc::new(0.25);
        let grad = [0.1, -5.0, 0.2, 4.0, -0.3, 0.0, 3.0, 0.05];
        let dec = c.decode(&c.encode(&grad, 0)).unwrap();
        // k = ceil(8 * 0.25) = 2 -> the two largest magnitudes survive.
        assert_eq!(dec, vec![0.0, -5.0, 0.0, 4.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn k_for_boundaries() {
        let c = Dgc::new(0.001);
        assert_eq!(c.k_for(0), 0);
        assert_eq!(c.k_for(1), 1); // At least one element survives.
        assert_eq!(c.k_for(1000), 1);
        assert_eq!(c.k_for(10_000), 10);
        let all = Dgc::new(1.0);
        assert_eq!(all.k_for(7), 7);
    }

    #[test]
    fn survivors_match_reference_selection() {
        let c = Dgc::new(0.1);
        let grad: Vec<f32> = (0..1000)
            .map(|i| ((i * 2654435761u64 as usize) % 1999) as f32 - 999.0)
            .collect();
        let dec = c.decode(&c.encode(&grad, 0)).unwrap();
        let k = c.k_for(grad.len());
        // Reference: sort by magnitude.
        let mut by_mag: Vec<usize> = (0..grad.len()).collect();
        by_mag.sort_by(|&a, &b| grad[b].abs().total_cmp(&grad[a].abs()));
        let survivors: Vec<usize> = (0..grad.len()).filter(|&i| dec[i] != 0.0).collect();
        assert_eq!(survivors.len(), k);
        // The smallest surviving magnitude must be >= the k-th largest.
        let kth = grad[by_mag[k - 1]].abs();
        for &i in &survivors {
            assert!(grad[i].abs() >= kth - 1e-6);
            assert_eq!(dec[i], grad[i], "kept values are exact");
        }
    }

    #[test]
    fn compressed_size_matches_encoding() {
        let c = Dgc::new(0.01);
        for n in [0usize, 1, 100, 12345] {
            let grad: Vec<f32> = (0..n).map(|i| i as f32).collect();
            assert_eq!(
                c.encode(&grad, 0).len() as u64,
                c.compressed_size(n),
                "n={n}"
            );
        }
    }

    #[test]
    fn ratio_tracks_rate() {
        let c = Dgc::new(0.001);
        // 0.1% kept at 8 bytes each vs 4 bytes per original element:
        // ratio ~= 0.002.
        let r = c.ratio(10_000_000);
        assert!((r - 0.002).abs() < 1e-4, "ratio {r}");
    }

    #[test]
    fn empty_gradient() {
        let c = Dgc::new(0.5);
        assert!(c.decode(&c.encode(&[], 0)).unwrap().is_empty());
    }

    #[test]
    fn decode_rejects_out_of_bounds_index() {
        let c = Dgc::new(0.5);
        let mut enc = c.encode(&[1.0, 2.0, 3.0, 4.0], 0);
        // Corrupt the first index to a large value.
        let pos = HEADER_LEN + 4;
        enc[pos..pos + 4].copy_from_slice(&1000u32.to_le_bytes());
        assert!(c.decode(&enc).is_err());
    }

    #[test]
    fn decode_rejects_truncation() {
        let c = Dgc::new(0.5);
        let enc = c.encode(&[1.0; 100], 0);
        assert!(c.decode(&enc[..enc.len() - 3]).is_err());
    }

    #[test]
    #[should_panic(expected = "rate must be in (0, 1]")]
    fn invalid_rate_panics() {
        Dgc::new(0.0);
    }
}

//! Gradient compression algorithms.
//!
//! This crate implements the five state-of-the-art algorithms the
//! paper builds with CompLL (§4.4, Table 5), operating on real `f32`
//! data with real bit-packed output:
//!
//! * [`onebit`] — 1-bit quantization (Seide et al., Interspeech'14),
//! * [`tbq`] — threshold binary quantization (Strom, Interspeech'15),
//! * [`terngrad`] — stochastic linear quantization generalized over a
//!   bitwidth parameter (Wen et al., NeurIPS'17; Figure 5 form),
//! * [`dgc`] — Deep Gradient Compression top-k sparsification (Lin et
//!   al., ICLR'18),
//! * [`graddrop`] — threshold gradient dropping (Aji & Heafield,
//!   EMNLP'17).
//!
//! Each algorithm has two implementations:
//!
//! * the **optimized** one (what CompLL generates in the paper), in
//!   its own module, and
//! * a deliberately naive **OSS baseline** in [`oss`], mirroring the
//!   open-source implementations the paper compares against in §4.4
//!   (full sorts instead of sampled thresholds, per-element buffer
//!   growth, extra copies). The OSS variants produce byte-identical or
//!   semantically identical output but cost more, both in wall time
//!   and in their simulated GPU cost profiles.
//!
//! Compressed gradients are **not directly aggregatable** (§2.5): the
//! synchronization layer must decode → merge → re-encode, which is
//! exactly the behaviour CaSync schedules around.
//!
//! [`feedback::ErrorFeedback`] implements the residual accumulation
//! ("error feedback") that makes lossy compression converge, used by
//! the convergence experiments (Figure 13).

#![forbid(unsafe_code)]

pub mod dgc;
pub mod feedback;
pub mod graddrop;
mod header;
pub mod onebit;
pub mod oss;
pub mod tbq;
pub mod terngrad;

use hipress_util::Result;

pub use feedback::ErrorFeedback;
pub use header::Header;

/// Broad algorithm family (§2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgorithmKind {
    /// Decreases the precision of every gradient element.
    Quantization,
    /// Filters out insignificant elements, transmitting (index, value)
    /// pairs for the survivors.
    Sparsification,
}

/// Relative GPU cost of an algorithm's kernels, consumed by the
/// simulated GPU to derive `T_enc(m)` / `T_dec(m)`.
///
/// Compression kernels are memory-bound scans (§2.5: "extremely
/// memory-intensive"); their cost is well modelled by the number of
/// sequential passes over the input buffer. The OSS baselines carry
/// larger pass counts, reproducing the §4.4 speedup factors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelCostProfile {
    /// Full memory passes over the input an encode performs.
    pub encode_passes: f64,
    /// Full memory passes over the compressed input a decode performs.
    pub decode_passes: f64,
}

/// A gradient compression algorithm.
///
/// `encode` consumes a gradient and produces a self-describing byte
/// stream; `decode` reverses it into a dense gradient. The `seed`
/// parameter makes stochastic algorithms (TernGrad's stochastic
/// rounding) deterministic: callers derive a fresh seed per
/// (gradient, iteration).
pub trait Compressor: Send + Sync {
    /// Short algorithm name ("onebit", "dgc", ...).
    fn name(&self) -> &'static str;

    /// Which family the algorithm belongs to.
    fn kind(&self) -> AlgorithmKind;

    /// Compresses `grad` into a self-describing byte stream.
    fn encode(&self, grad: &[f32], seed: u64) -> Vec<u8>;

    /// Decompresses a stream produced by [`Compressor::encode`] back
    /// into a dense gradient.
    fn decode(&self, data: &[u8]) -> Result<Vec<f32>>;

    /// Exact compressed size in bytes for an `elems`-element gradient,
    /// when the size is data-independent. Data-dependent algorithms
    /// (threshold sparsifiers) return their expected size.
    fn compressed_size(&self, elems: usize) -> u64;

    /// Compression rate `r` from the paper's cost model (Table 2):
    /// compressed bytes divided by original bytes.
    fn ratio(&self, elems: usize) -> f64 {
        if elems == 0 {
            return 1.0;
        }
        self.compressed_size(elems) as f64 / (elems as f64 * 4.0)
    }

    /// Relative kernel cost used by the simulated GPU.
    fn cost_profile(&self) -> KernelCostProfile;
}

/// Serializable specification of a compression algorithm and its
/// parameters; the configuration-level handle used across the
/// framework (training scripts name an `Algorithm`, not a trait
/// object).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Algorithm {
    /// No compression (the baseline configuration).
    None,
    /// 1-bit quantization with per-tensor positive/negative means.
    OneBit,
    /// Threshold binary quantization with threshold `tau`.
    Tbq {
        /// Quantization threshold τ; elements within (−τ, τ) become 0.
        tau: f32,
    },
    /// Stochastic linear quantization with `bitwidth` bits per element.
    TernGrad {
        /// Bits per quantized element (1, 2, 4, or 8).
        bitwidth: u8,
    },
    /// Top-k sparsification keeping `rate` of the elements.
    Dgc {
        /// Fraction of elements kept (0.001 = 0.1%).
        rate: f64,
    },
    /// Threshold dropping keeping approximately `rate` of the elements.
    GradDrop {
        /// Target fraction of elements kept.
        rate: f64,
    },
}

impl Algorithm {
    /// Builds the optimized (CompLL-style) implementation.
    ///
    /// Returns `None` for [`Algorithm::None`], which has no compressor.
    pub fn build(&self) -> Option<Box<dyn Compressor>> {
        match *self {
            Algorithm::None => None,
            Algorithm::OneBit => Some(Box::new(onebit::OneBit::new())),
            Algorithm::Tbq { tau } => Some(Box::new(tbq::Tbq::new(tau))),
            Algorithm::TernGrad { bitwidth } => Some(Box::new(terngrad::TernGrad::new(bitwidth))),
            Algorithm::Dgc { rate } => Some(Box::new(dgc::Dgc::new(rate))),
            Algorithm::GradDrop { rate } => Some(Box::new(graddrop::GradDrop::new(rate))),
        }
    }

    /// Builds the naive open-source baseline implementation (§4.4).
    ///
    /// Returns `None` for [`Algorithm::None`] and for algorithms the
    /// paper had no OSS implementation of (GradDrop, Table 5).
    pub fn build_oss(&self) -> Option<Box<dyn Compressor>> {
        match *self {
            Algorithm::None | Algorithm::GradDrop { .. } => None,
            Algorithm::OneBit => Some(Box::new(oss::OssOneBit::new())),
            Algorithm::Tbq { tau } => Some(Box::new(oss::OssTbq::new(tau))),
            Algorithm::TernGrad { bitwidth } => Some(Box::new(oss::OssTernGrad::new(bitwidth))),
            Algorithm::Dgc { rate } => Some(Box::new(oss::OssDgc::new(rate))),
        }
    }

    /// Short display name used in experiment tables.
    pub fn label(&self) -> String {
        match *self {
            Algorithm::None => "none".into(),
            Algorithm::OneBit => "onebit".into(),
            Algorithm::Tbq { tau } => format!("tbq(tau={tau})"),
            Algorithm::TernGrad { bitwidth } => format!("terngrad({bitwidth}bit)"),
            Algorithm::Dgc { rate } => format!("dgc({:.2}%)", rate * 100.0),
            Algorithm::GradDrop { rate } => format!("graddrop({:.2}%)", rate * 100.0),
        }
    }

    /// The paper's default parameterization for each algorithm
    /// ("we inherit the parameter settings from their original
    /// papers", §6.1).
    pub fn paper_default(name: &str) -> Option<Algorithm> {
        match name {
            "none" => Some(Algorithm::None),
            "onebit" => Some(Algorithm::OneBit),
            "tbq" => Some(Algorithm::Tbq { tau: 0.05 }),
            "terngrad" => Some(Algorithm::TernGrad { bitwidth: 2 }),
            "dgc" => Some(Algorithm::Dgc { rate: 0.001 }),
            "graddrop" => Some(Algorithm::GradDrop { rate: 0.01 }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_all_algorithms() {
        assert!(Algorithm::None.build().is_none());
        for (alg, name) in [
            (Algorithm::OneBit, "onebit"),
            (Algorithm::Tbq { tau: 0.1 }, "tbq"),
            (Algorithm::TernGrad { bitwidth: 2 }, "terngrad"),
            (Algorithm::Dgc { rate: 0.01 }, "dgc"),
            (Algorithm::GradDrop { rate: 0.01 }, "graddrop"),
        ] {
            let c = alg.build().expect("should build");
            assert_eq!(c.name(), name);
        }
    }

    #[test]
    fn oss_availability_matches_table5() {
        // Table 5: onebit, TBQ, TernGrad, DGC have OSS implementations;
        // GradDrop does not (N/A row).
        assert!(Algorithm::OneBit.build_oss().is_some());
        assert!(Algorithm::Tbq { tau: 0.1 }.build_oss().is_some());
        assert!(Algorithm::TernGrad { bitwidth: 2 }.build_oss().is_some());
        assert!(Algorithm::Dgc { rate: 0.01 }.build_oss().is_some());
        assert!(Algorithm::GradDrop { rate: 0.01 }.build_oss().is_none());
    }

    #[test]
    fn paper_defaults_resolve() {
        for name in ["none", "onebit", "tbq", "terngrad", "dgc", "graddrop"] {
            assert!(Algorithm::paper_default(name).is_some(), "{name}");
        }
        assert!(Algorithm::paper_default("bogus").is_none());
    }

    #[test]
    fn ratio_of_empty_gradient_is_one() {
        let c = Algorithm::OneBit.build().unwrap();
        assert_eq!(c.ratio(0), 1.0);
    }
}

//! Property-based invariants for every compression algorithm.

use hipress_compress::Algorithm;
use proptest::prelude::*;

/// Arbitrary finite gradients of modest size.
fn gradient() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-1e3f32..1e3, 0..600)
}

fn all_algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::OneBit,
        Algorithm::Tbq { tau: 0.5 },
        Algorithm::TernGrad { bitwidth: 2 },
        Algorithm::TernGrad { bitwidth: 8 },
        Algorithm::Dgc { rate: 0.1 },
        Algorithm::GradDrop { rate: 0.1 },
    ]
}

proptest! {
    /// decode(encode(g)) has the original length, finite values, and a
    /// stream exactly as large as advertised (for size-deterministic
    /// algorithms).
    #[test]
    fn roundtrip_shape(grad in gradient(), seed in any::<u64>()) {
        for alg in all_algorithms() {
            let c = alg.build().unwrap();
            let enc = c.encode(&grad, seed);
            let dec = c.decode(&enc).unwrap();
            prop_assert_eq!(dec.len(), grad.len(), "{}", c.name());
            prop_assert!(dec.iter().all(|x| x.is_finite()), "{}", c.name());
            match alg {
                // GradDrop's size is data-dependent.
                Algorithm::GradDrop { .. } => {}
                _ => prop_assert_eq!(
                    enc.len() as u64,
                    c.compressed_size(grad.len()),
                    "{} size mismatch", c.name()
                ),
            }
        }
    }

    /// Quantizers never increase the dynamic range: every decoded value
    /// lies within [min, max] of the original gradient.
    #[test]
    fn quantizers_stay_in_range(grad in prop::collection::vec(-100f32..100.0, 1..400), seed in any::<u64>()) {
        let lo = grad.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = grad.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        for alg in [Algorithm::OneBit, Algorithm::TernGrad { bitwidth: 2 }, Algorithm::TernGrad { bitwidth: 4 }] {
            let c = alg.build().unwrap();
            let dec = c.decode(&c.encode(&grad, seed)).unwrap();
            for &d in &dec {
                prop_assert!(d >= lo - 1e-4 && d <= hi + 1e-4,
                    "{}: {d} outside [{lo}, {hi}]", c.name());
            }
        }
    }

    /// TernGrad's element-wise error is bounded by one quantization gap.
    #[test]
    fn terngrad_error_bound(grad in prop::collection::vec(-10f32..10.0, 1..400), seed in any::<u64>(), bitwidth in 1u8..=8) {
        let c = Algorithm::TernGrad { bitwidth }.build().unwrap();
        let dec = c.decode(&c.encode(&grad, seed)).unwrap();
        let lo = grad.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = grad.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let gap = (hi - lo) / ((1u32 << bitwidth) - 1).max(1) as f32;
        for (o, d) in grad.iter().zip(&dec) {
            prop_assert!((o - d).abs() <= gap + (hi - lo).abs() * 1e-5 + 1e-6);
        }
    }

    /// Sparsifiers keep values exactly and zero the rest.
    #[test]
    fn sparsifier_values_exact(grad in prop::collection::vec(-50f32..50.0, 1..400), seed in any::<u64>()) {
        for alg in [Algorithm::Dgc { rate: 0.2 }, Algorithm::GradDrop { rate: 0.2 }] {
            let c = alg.build().unwrap();
            let dec = c.decode(&c.encode(&grad, seed)).unwrap();
            for (o, d) in grad.iter().zip(&dec) {
                prop_assert!(*d == 0.0 || d == o, "{}: {d} not in {{0, {o}}}", c.name());
            }
        }
    }

    /// DGC keeps exactly k elements and they dominate the dropped ones.
    #[test]
    fn dgc_topk_dominance(grad in prop::collection::vec(-50f32..50.0, 1..300)) {
        let alg = Algorithm::Dgc { rate: 0.15 };
        let c = alg.build().unwrap();
        let dec = c.decode(&c.encode(&grad, 0)).unwrap();
        let kept: Vec<f32> = grad.iter().zip(&dec).filter(|(_, &d)| d != 0.0).map(|(&o, _)| o.abs()).collect();
        let dropped_max = grad
            .iter()
            .zip(&dec)
            .filter(|(_, &d)| d == 0.0)
            .map(|(&o, _)| o.abs())
            .fold(0.0f32, f32::max);
        let kept_min = kept.iter().copied().fold(f32::INFINITY, f32::min);
        prop_assert!(kept_min >= dropped_max || kept.is_empty() || (kept_min - dropped_max).abs() < 1e-6);
    }

    /// Corrupting any single byte of the header never panics: decode
    /// returns an error or a (possibly wrong) value, but must not crash.
    #[test]
    fn corrupted_streams_do_not_panic(grad in prop::collection::vec(-5f32..5.0, 1..100), pos in 0usize..32, val in any::<u8>()) {
        for alg in all_algorithms() {
            let c = alg.build().unwrap();
            let mut enc = c.encode(&grad, 1);
            if pos < enc.len() {
                enc[pos] = val;
                let _ = c.decode(&enc); // Must not panic.
            }
        }
    }
}

//! Randomized invariants for every compression algorithm, driven by
//! the workspace's own deterministic PRNGs.

use hipress_compress::Algorithm;
use hipress_util::rng::{Rng64, Xoshiro256};

const CASES: usize = 256;

/// Arbitrary finite gradient with up to `max` elements in ±`span`.
fn gradient(rng: &mut impl Rng64, max: usize, min: usize, span: f32) -> Vec<f32> {
    let n = min + rng.index(max - min);
    (0..n)
        .map(|_| (rng.next_f32() * 2.0 - 1.0) * span)
        .collect()
}

fn all_algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::OneBit,
        Algorithm::Tbq { tau: 0.5 },
        Algorithm::TernGrad { bitwidth: 2 },
        Algorithm::TernGrad { bitwidth: 8 },
        Algorithm::Dgc { rate: 0.1 },
        Algorithm::GradDrop { rate: 0.1 },
    ]
}

/// decode(encode(g)) has the original length, finite values, and a
/// stream exactly as large as advertised (for size-deterministic
/// algorithms).
#[test]
fn roundtrip_shape() {
    let mut rng = Xoshiro256::new(0xC0DE_0001);
    for _ in 0..CASES {
        let grad = gradient(&mut rng, 600, 0, 1e3);
        let seed = rng.next_u64();
        for alg in all_algorithms() {
            let c = alg.build().unwrap();
            let enc = c.encode(&grad, seed);
            let dec = c.decode(&enc).unwrap();
            assert_eq!(dec.len(), grad.len(), "{}", c.name());
            assert!(dec.iter().all(|x| x.is_finite()), "{}", c.name());
            match alg {
                // GradDrop's size is data-dependent.
                Algorithm::GradDrop { .. } => {}
                _ => assert_eq!(
                    enc.len() as u64,
                    c.compressed_size(grad.len()),
                    "{} size mismatch",
                    c.name()
                ),
            }
        }
    }
}

/// Quantizers never increase the dynamic range: every decoded value
/// lies within [min, max] of the original gradient.
#[test]
fn quantizers_stay_in_range() {
    let mut rng = Xoshiro256::new(0xC0DE_0002);
    for _ in 0..CASES {
        let grad = gradient(&mut rng, 400, 1, 100.0);
        let seed = rng.next_u64();
        let lo = grad.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = grad.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        for alg in [
            Algorithm::OneBit,
            Algorithm::TernGrad { bitwidth: 2 },
            Algorithm::TernGrad { bitwidth: 4 },
        ] {
            let c = alg.build().unwrap();
            let dec = c.decode(&c.encode(&grad, seed)).unwrap();
            for &d in &dec {
                assert!(
                    d >= lo - 1e-4 && d <= hi + 1e-4,
                    "{}: {d} outside [{lo}, {hi}]",
                    c.name()
                );
            }
        }
    }
}

/// TernGrad's element-wise error is bounded by one quantization gap.
#[test]
fn terngrad_error_bound() {
    let mut rng = Xoshiro256::new(0xC0DE_0003);
    for _ in 0..CASES {
        let grad = gradient(&mut rng, 400, 1, 10.0);
        let seed = rng.next_u64();
        let bitwidth = rng.range_u64(1, 9) as u8;
        let c = Algorithm::TernGrad { bitwidth }.build().unwrap();
        let dec = c.decode(&c.encode(&grad, seed)).unwrap();
        let lo = grad.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = grad.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let gap = (hi - lo) / ((1u32 << bitwidth) - 1).max(1) as f32;
        for (o, d) in grad.iter().zip(&dec) {
            assert!((o - d).abs() <= gap + (hi - lo).abs() * 1e-5 + 1e-6);
        }
    }
}

/// Sparsifiers keep values exactly and zero the rest.
#[test]
fn sparsifier_values_exact() {
    let mut rng = Xoshiro256::new(0xC0DE_0004);
    for _ in 0..CASES {
        let grad = gradient(&mut rng, 400, 1, 50.0);
        let seed = rng.next_u64();
        for alg in [
            Algorithm::Dgc { rate: 0.2 },
            Algorithm::GradDrop { rate: 0.2 },
        ] {
            let c = alg.build().unwrap();
            let dec = c.decode(&c.encode(&grad, seed)).unwrap();
            for (o, d) in grad.iter().zip(&dec) {
                assert!(*d == 0.0 || d == o, "{}: {d} not in {{0, {o}}}", c.name());
            }
        }
    }
}

/// DGC keeps exactly k elements and they dominate the dropped ones.
#[test]
fn dgc_topk_dominance() {
    let mut rng = Xoshiro256::new(0xC0DE_0005);
    for _ in 0..CASES {
        let grad = gradient(&mut rng, 300, 1, 50.0);
        let alg = Algorithm::Dgc { rate: 0.15 };
        let c = alg.build().unwrap();
        let dec = c.decode(&c.encode(&grad, 0)).unwrap();
        let kept: Vec<f32> = grad
            .iter()
            .zip(&dec)
            .filter(|(_, &d)| d != 0.0)
            .map(|(&o, _)| o.abs())
            .collect();
        let dropped_max = grad
            .iter()
            .zip(&dec)
            .filter(|(_, &d)| d == 0.0)
            .map(|(&o, _)| o.abs())
            .fold(0.0f32, f32::max);
        let kept_min = kept.iter().copied().fold(f32::INFINITY, f32::min);
        assert!(
            kept_min >= dropped_max || kept.is_empty() || (kept_min - dropped_max).abs() < 1e-6
        );
    }
}

/// Corrupting any single byte of the header never panics: decode
/// returns an error or a (possibly wrong) value, but must not crash.
#[test]
fn corrupted_streams_do_not_panic() {
    let mut rng = Xoshiro256::new(0xC0DE_0006);
    for _ in 0..CASES {
        let grad = gradient(&mut rng, 100, 1, 5.0);
        let pos = rng.index(32);
        let val = rng.next_u64() as u8;
        for alg in all_algorithms() {
            let c = alg.build().unwrap();
            let mut enc = c.encode(&grad, 1);
            if pos < enc.len() {
                enc[pos] = val;
                let _ = c.decode(&enc); // Must not panic.
            }
        }
    }
}

//! The flat `f32` gradient buffer.

use hipress_util::rng::Rng64;

/// A flat `f32` gradient tensor.
///
/// HiPress treats every gradient as a one-dimensional buffer: the
/// compression algorithms, partitioning, and synchronization are all
/// shape-oblivious, exactly as in the paper (the CompLL API takes
/// `float*` input, Figure 4).
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from raw values.
    pub fn from_vec(data: Vec<f32>) -> Self {
        Self { data }
    }

    /// Creates an all-zero tensor with `len` elements.
    pub fn zeros(len: usize) -> Self {
        Self {
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor by evaluating `f` at each index.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> f32) -> Self {
        Self {
            data: (0..len).map(&mut f).collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in bytes when stored as fp32 (the unit `m` used throughout
    /// the paper's cost model).
    pub fn byte_size(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<f32>()) as u64
    }

    /// Read-only view of the values.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the values.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element-wise addition: `self += other`.
    ///
    /// This is the `merge` primitive's arithmetic (gradient
    /// aggregation is summation).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(
            self.len(),
            other.len(),
            "cannot merge tensors of different lengths"
        );
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Multiplies every element by `s` (used for averaging aggregated
    /// gradients across N workers).
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// L2 norm of the tensor.
    pub fn l2_norm(&self) -> f64 {
        self.data
            .iter()
            .map(|&x| (x as f64) * (x as f64))
            .sum::<f64>()
            .sqrt()
    }

    /// Largest absolute element (0 for an empty tensor).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Fraction of exactly-zero elements.
    pub fn sparsity(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let zeros = self.data.iter().filter(|&&x| x == 0.0).count();
        zeros as f64 / self.data.len() as f64
    }

    /// Maximum absolute element-wise difference to `other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.len(), other.len(), "length mismatch in comparison");
        self.data
            .iter()
            .zip(other.data.iter())
            .fold(0.0f32, |m, (&a, &b)| m.max((a - b).abs()))
    }

    /// Fills the tensor with i.i.d. Gaussian values of the given
    /// standard deviation.
    pub fn fill_gaussian<R: Rng64>(&mut self, rng: &mut R, std_dev: f32) {
        for x in &mut self.data {
            *x = (rng.next_gaussian() as f32) * std_dev;
        }
    }

    /// Returns the concatenation of `parts`.
    pub fn concat(parts: &[Tensor]) -> Tensor {
        let total: usize = parts.iter().map(|p| p.len()).sum();
        let mut data = Vec::with_capacity(total);
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        Tensor { data }
    }
}

impl From<Vec<f32>> for Tensor {
    fn from(v: Vec<f32>) -> Self {
        Self::from_vec(v)
    }
}

impl std::ops::Index<usize> for Tensor {
    type Output = f32;

    fn index(&self, i: usize) -> &f32 {
        &self.data[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipress_util::SplitMix64;

    #[test]
    fn construction_and_size() {
        let t = Tensor::zeros(10);
        assert_eq!(t.len(), 10);
        assert_eq!(t.byte_size(), 40);
        assert!(!t.is_empty());
        assert!(Tensor::zeros(0).is_empty());
    }

    #[test]
    fn from_fn_indexes() {
        let t = Tensor::from_fn(4, |i| i as f32 * 2.0);
        assert_eq!(t.as_slice(), &[0.0, 2.0, 4.0, 6.0]);
        assert_eq!(t[3], 6.0);
    }

    #[test]
    fn add_assign_sums() {
        let mut a = Tensor::from_vec(vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(vec![0.5, -2.0, 1.0]);
        a.add_assign(&b);
        assert_eq!(a.as_slice(), &[1.5, 0.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "different lengths")]
    fn add_assign_length_mismatch_panics() {
        Tensor::zeros(2).add_assign(&Tensor::zeros(3));
    }

    #[test]
    fn scale_multiplies() {
        let mut a = Tensor::from_vec(vec![2.0, -4.0]);
        a.scale(0.5);
        assert_eq!(a.as_slice(), &[1.0, -2.0]);
    }

    #[test]
    fn norms_and_extrema() {
        let t = Tensor::from_vec(vec![3.0, -4.0, 0.0]);
        assert!((t.l2_norm() - 5.0).abs() < 1e-9);
        assert_eq!(t.max_abs(), 4.0);
        assert!((t.sparsity() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn max_abs_diff_detects_divergence() {
        let a = Tensor::from_vec(vec![1.0, 2.0]);
        let b = Tensor::from_vec(vec![1.0, 2.5]);
        assert_eq!(a.max_abs_diff(&b), 0.5);
        assert_eq!(a.max_abs_diff(&a), 0.0);
    }

    #[test]
    fn gaussian_fill_statistics() {
        let mut t = Tensor::zeros(100_000);
        let mut rng = SplitMix64::new(42);
        t.fill_gaussian(&mut rng, 2.0);
        let mean: f64 = t.as_slice().iter().map(|&x| x as f64).sum::<f64>() / t.len() as f64;
        let var: f64 = t
            .as_slice()
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / t.len() as f64;
        assert!(mean.abs() < 0.05);
        assert!((var - 4.0).abs() < 0.15);
    }

    #[test]
    fn concat_preserves_order() {
        let a = Tensor::from_vec(vec![1.0, 2.0]);
        let b = Tensor::from_vec(vec![3.0]);
        let c = Tensor::concat(&[a, b]);
        assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0]);
    }
}

//! Gradient tensor representation for HiPress.
//!
//! Gradients in data parallel DNN training are flat `f32` buffers, one
//! per DNN layer (Table 6 of the paper). This crate provides:
//!
//! * [`Tensor`] — a named, flat `f32` gradient buffer with arithmetic
//!   helpers (the unit the compressors and synchronization operate on),
//! * [`partition`] — balanced gradient partitioning, the "K partitions"
//!   of the selective compression and partitioning mechanism (§3.3),
//! * [`synth`] — deterministic synthetic gradient generators with the
//!   statistical shapes (Gaussian, sparse, heavy-tailed) that real DNN
//!   gradients exhibit, used by tests and benchmarks.

#![forbid(unsafe_code)]

pub mod partition;
pub mod synth;
mod tensor;

pub use partition::{partition_ranges, Partition};
pub use tensor::Tensor;

//! Balanced gradient partitioning.
//!
//! The selective compression and partitioning mechanism (§3.3) splits
//! an `m`-byte gradient into `K` partitions before compression to
//! leverage parallelism and load balancing. Partitions must be as equal
//! as possible (the cost model assumes each has `m/K` bytes) and must
//! reassemble to the original gradient exactly.

use crate::Tensor;
use std::ops::Range;

/// One partition of a gradient: its index and element range within the
/// parent tensor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Position of this partition among its siblings (0-based).
    pub index: usize,
    /// Element range within the parent tensor.
    pub range: Range<usize>,
}

impl Partition {
    /// Number of elements in the partition.
    pub fn len(&self) -> usize {
        self.range.len()
    }

    /// Whether the partition is empty (only possible when a tensor has
    /// fewer elements than partitions).
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }

    /// Byte size of the partition at fp32.
    pub fn byte_size(&self) -> u64 {
        (self.len() * std::mem::size_of::<f32>()) as u64
    }

    /// Extracts the partition's data from the parent tensor.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the parent's length.
    pub fn slice<'a>(&self, parent: &'a Tensor) -> &'a [f32] {
        &parent.as_slice()[self.range.clone()]
    }
}

/// Splits `len` elements into `k` maximally balanced contiguous ranges.
///
/// The first `len % k` partitions get one extra element, so sizes
/// differ by at most one. Returns ranges covering `0..len` exactly, in
/// order.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn partition_ranges(len: usize, k: usize) -> Vec<Partition> {
    assert!(k > 0, "cannot partition into zero parts");
    let base = len / k;
    let extra = len % k;
    let mut out = Vec::with_capacity(k);
    let mut start = 0;
    for index in 0..k {
        let size = base + usize::from(index < extra);
        out.push(Partition {
            index,
            range: start..start + size,
        });
        start += size;
    }
    debug_assert_eq!(start, len);
    out
}

/// Reassembles partition payloads into a single tensor.
///
/// `parts` must be given in partition order; this is the inverse of
/// slicing a tensor by [`partition_ranges`].
pub fn reassemble(parts: &[Tensor]) -> Tensor {
    Tensor::concat(parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split() {
        let parts = partition_ranges(12, 4);
        assert_eq!(parts.len(), 4);
        for (i, p) in parts.iter().enumerate() {
            assert_eq!(p.index, i);
            assert_eq!(p.len(), 3);
        }
        assert_eq!(parts[0].range, 0..3);
        assert_eq!(parts[3].range, 9..12);
    }

    #[test]
    fn uneven_split_differs_by_at_most_one() {
        let parts = partition_ranges(10, 3);
        let sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    fn more_parts_than_elements() {
        let parts = partition_ranges(2, 5);
        let sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        assert_eq!(sizes, vec![1, 1, 0, 0, 0]);
        assert!(parts[4].is_empty());
    }

    #[test]
    fn ranges_tile_exactly() {
        for len in [0usize, 1, 7, 100, 1023] {
            for k in 1..=16 {
                let parts = partition_ranges(len, k);
                let mut cursor = 0;
                for p in &parts {
                    assert_eq!(p.range.start, cursor);
                    cursor = p.range.end;
                }
                assert_eq!(cursor, len);
            }
        }
    }

    #[test]
    fn slice_and_reassemble_roundtrip() {
        let t = Tensor::from_fn(103, |i| i as f32);
        let parts = partition_ranges(t.len(), 7);
        let pieces: Vec<Tensor> = parts
            .iter()
            .map(|p| Tensor::from_vec(p.slice(&t).to_vec()))
            .collect();
        assert_eq!(reassemble(&pieces), t);
    }

    #[test]
    #[should_panic(expected = "zero parts")]
    fn zero_parts_panics() {
        partition_ranges(10, 0);
    }

    #[test]
    fn byte_size_is_four_per_element() {
        let parts = partition_ranges(10, 3);
        assert_eq!(parts[0].byte_size(), 16);
        assert_eq!(parts[1].byte_size(), 12);
    }
}

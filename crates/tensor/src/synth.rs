//! Deterministic synthetic gradient generators.
//!
//! Real DNN gradients are approximately zero-mean with heavy tails and
//! high sparsity of *significant* values — the properties the paper's
//! sparsification (DGC, GradDrop) and quantization (onebit, TBQ,
//! TernGrad) algorithms exploit. These generators produce buffers with
//! those shapes deterministically from a seed so experiments are
//! reproducible.

use crate::Tensor;
use hipress_util::rng::{Rng64, Xoshiro256};

/// Statistical shape of a synthetic gradient.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GradientShape {
    /// i.i.d. Gaussian with the given standard deviation — the default
    /// model for dense layer gradients.
    Gaussian {
        /// Standard deviation of every element.
        std_dev: f32,
    },
    /// Mostly-zero gradient: each element is non-zero with probability
    /// `density`, in which case it is Gaussian. Models embedding-layer
    /// gradients (the sparse gradients Parallax targets).
    Sparse {
        /// Probability that an element is non-zero.
        density: f64,
        /// Standard deviation of the non-zero elements.
        std_dev: f32,
    },
    /// Heavy-tailed gradient: Gaussian body plus a small fraction of
    /// large-magnitude outliers. Models the skew that makes top-k
    /// sparsification (DGC) effective.
    HeavyTailed {
        /// Standard deviation of the Gaussian body.
        std_dev: f32,
        /// Fraction of elements drawn from the outlier distribution.
        outlier_frac: f64,
        /// Scale multiplier for outliers.
        outlier_scale: f32,
    },
}

impl GradientShape {
    /// A reasonable default for DNN-layer-like gradients.
    pub fn default_dnn() -> Self {
        GradientShape::HeavyTailed {
            std_dev: 1e-3,
            outlier_frac: 0.01,
            outlier_scale: 20.0,
        }
    }
}

/// Generates a gradient of `len` elements with the given shape,
/// deterministically from `seed`.
pub fn generate(len: usize, shape: GradientShape, seed: u64) -> Tensor {
    let mut rng = Xoshiro256::new(seed);
    match shape {
        GradientShape::Gaussian { std_dev } => {
            Tensor::from_fn(len, |_| (rng.next_gaussian() as f32) * std_dev)
        }
        GradientShape::Sparse { density, std_dev } => Tensor::from_fn(len, |_| {
            if rng.bernoulli(density) {
                (rng.next_gaussian() as f32) * std_dev
            } else {
                0.0
            }
        }),
        GradientShape::HeavyTailed {
            std_dev,
            outlier_frac,
            outlier_scale,
        } => Tensor::from_fn(len, |_| {
            let base = (rng.next_gaussian() as f32) * std_dev;
            if rng.bernoulli(outlier_frac) {
                base * outlier_scale
            } else {
                base
            }
        }),
    }
}

/// Generates one gradient per entry of `layer_elems` with per-layer
/// derived seeds, modelling one backward pass of a whole model.
pub fn generate_model_gradients(
    layer_elems: &[usize],
    shape: GradientShape,
    seed: u64,
) -> Vec<Tensor> {
    layer_elems
        .iter()
        .enumerate()
        .map(|(i, &n)| generate(n, shape, seed ^ ((i as u64 + 1) * 0x9E37_79B9)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_by_seed() {
        let a = generate(1000, GradientShape::default_dnn(), 7);
        let b = generate(1000, GradientShape::default_dnn(), 7);
        let c = generate(1000, GradientShape::default_dnn(), 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gaussian_statistics() {
        let t = generate(200_000, GradientShape::Gaussian { std_dev: 0.5 }, 1);
        let mean: f64 = t.as_slice().iter().map(|&x| x as f64).sum::<f64>() / t.len() as f64;
        assert!(mean.abs() < 0.01);
        let var: f64 = t
            .as_slice()
            .iter()
            .map(|&x| (x as f64).powi(2))
            .sum::<f64>()
            / t.len() as f64;
        assert!((var - 0.25).abs() < 0.01);
    }

    #[test]
    fn sparse_density() {
        let t = generate(
            100_000,
            GradientShape::Sparse {
                density: 0.05,
                std_dev: 1.0,
            },
            2,
        );
        let nonzero = 1.0 - t.sparsity();
        assert!((nonzero - 0.05).abs() < 0.01, "density {nonzero}");
    }

    #[test]
    fn heavy_tail_has_outliers() {
        let t = generate(
            100_000,
            GradientShape::HeavyTailed {
                std_dev: 1.0,
                outlier_frac: 0.01,
                outlier_scale: 50.0,
            },
            3,
        );
        // The max should be dominated by outliers: far beyond what a
        // plain Gaussian of std 1 would produce.
        assert!(t.max_abs() > 20.0);
        // But the body remains near std 1: the median magnitude is small.
        let mut mags: Vec<f32> = t.as_slice().iter().map(|x| x.abs()).collect();
        mags.sort_by(f32::total_cmp);
        let median = mags[mags.len() / 2];
        assert!(median < 1.5);
    }

    #[test]
    fn model_gradients_match_layer_sizes() {
        let sizes = [10usize, 0, 250, 3];
        let grads = generate_model_gradients(&sizes, GradientShape::default_dnn(), 9);
        assert_eq!(grads.len(), 4);
        for (g, &n) in grads.iter().zip(&sizes) {
            assert_eq!(g.len(), n);
        }
        // Distinct layers get distinct data.
        assert_ne!(grads[0].as_slice()[0], grads[2].as_slice()[0]);
    }
}

//! Shared helpers for the table/figure reproduction benches.
//!
//! Every bench target regenerates one artifact of the paper's
//! evaluation and prints measured values next to the paper's, so a
//! reader can check the *shape* (who wins, by what factor, where the
//! crossovers fall) at a glance. Absolute values are not expected to
//! match: the substrate here is a calibrated simulator, not the
//! authors' EC2 testbed (see EXPERIMENTS.md).
//!
//! Besides printing, each target records its rows into a [`Recorder`]
//! so the same numbers exist machine-readably: when
//! `HIPRESS_BENCH_DIR` is set, finishing a recorder writes a
//! schema-versioned `BENCH_<id>.json` snapshot (the format of
//! `hipress bench`, consumable by `hipress report` and the
//! `--baseline` perf gate).

#![forbid(unsafe_code)]

use hipress::metrics::{MetricsSnapshot, Registry};
use std::path::PathBuf;

/// Prints a bench banner.
pub fn banner(id: &str, what: &str) {
    println!("\n=== {id}: {what} ===");
}

/// Formats a measured-vs-paper pair.
pub fn vs(measured: f64, paper: f64, unit: &str) -> String {
    format!("{measured:.2}{unit} (paper: {paper:.2}{unit})")
}

/// Relative change in percent.
pub fn pct(new: f64, old: f64) -> f64 {
    (new / old - 1.0) * 100.0
}

/// Renders one fixed-width row (right-aligned cells, single-space
/// separators) with no trailing whitespace.
pub fn row_line(cells: &[String], widths: &[usize]) -> String {
    let mut line = String::new();
    for (c, w) in cells.iter().zip(widths) {
        if !line.is_empty() {
            line.push(' ');
        }
        line.push_str(&format!("{c:>w$}", w = w));
    }
    while line.ends_with(' ') {
        line.pop();
    }
    line
}

/// A tiny fixed-width row printer.
pub fn row(cells: &[String], widths: &[usize]) {
    println!("{}", row_line(cells, widths));
}

/// Collects one bench target's measured-vs-paper values into a
/// metrics registry and emits them as a `BENCH_<id>.json` snapshot.
///
/// Measured values are gauges labelled `source="measured"`; when the
/// paper tabulates an exact value for the same point it rides along
/// under `source="paper"`. Writing is opt-in: [`Recorder::finish`]
/// only touches the filesystem when `HIPRESS_BENCH_DIR` names a
/// directory, so plain `cargo bench` output stays print-only.
pub struct Recorder {
    id: String,
    registry: Registry,
}

impl Recorder {
    /// Starts a recorder for the bench target `id` (e.g. `"fig7"`).
    pub fn new(id: &str) -> Recorder {
        Recorder {
            id: id.to_string(),
            registry: Registry::new(),
        }
    }

    /// Records one measured value under `name` + `labels`, and the
    /// paper's value for the same point when it has one.
    pub fn record(&self, name: &str, labels: &[(&str, &str)], measured: f64, paper: Option<f64>) {
        let scope = self.registry.root();
        let mut l: Vec<(&str, &str)> = labels.to_vec();
        l.push(("source", "measured"));
        scope.gauge(name, &l).set(measured);
        if let Some(p) = paper {
            l.pop();
            l.push(("source", "paper"));
            scope.gauge(name, &l).set(p);
        }
    }

    /// The values recorded so far as a snapshot (meta: `kind=bench`,
    /// `bench=<id>`).
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry
            .snapshot()
            .with_meta("kind", "bench")
            .with_meta("bench", &self.id)
    }

    /// Writes `BENCH_<id>.json` into `$HIPRESS_BENCH_DIR` and returns
    /// the path; a no-op returning `None` when the variable is unset
    /// or the write fails (benches must not die on bookkeeping).
    pub fn finish(&self) -> Option<PathBuf> {
        let dir = std::env::var_os("HIPRESS_BENCH_DIR")?;
        let path = PathBuf::from(dir).join(format!("BENCH_{}.json", self.id));
        match std::fs::write(&path, self.snapshot().to_json()) {
            Ok(()) => {
                println!("wrote {}", path.display());
                Some(path)
            }
            Err(e) => {
                eprintln!("could not write {}: {e}", path.display());
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_math() {
        assert!((pct(110.0, 100.0) - 10.0).abs() < 1e-9);
        assert!((pct(50.0, 100.0) + 50.0).abs() < 1e-9);
    }

    #[test]
    fn vs_formats() {
        assert_eq!(vs(0.5, 0.47, ""), "0.50 (paper: 0.47)");
    }

    #[test]
    fn row_line_has_no_trailing_whitespace() {
        // The last cell is narrower than its column: right-alignment
        // pads on the left, and nothing may pad on the right.
        let line = row_line(&["ab".into(), "7".into()], &[4, 6]);
        assert_eq!(line, "  ab      7");
        assert_eq!(line, line.trim_end(), "no trailing whitespace");
        // A final empty cell must not leave a column of spaces behind.
        let line = row_line(&["x".into(), String::new()], &[2, 8]);
        assert_eq!(line, " x");
    }

    #[test]
    fn recorder_snapshots_measured_and_paper() {
        use hipress::metrics::{Key, LabelSet};
        let rec = Recorder::new("unit");
        rec.record(
            "scaling_efficiency",
            &[("model", "VGG19")],
            0.81,
            Some(0.76),
        );
        rec.record("gpu_utilization", &[("model", "VGG19")], 0.93, None);
        let snap = rec.snapshot();
        assert_eq!(snap.meta.get("bench").map(String::as_str), Some("unit"));
        assert_eq!(snap.meta.get("kind").map(String::as_str), Some("bench"));
        let get = |name: &str, src: &str| {
            snap.get(&Key::new(
                name,
                LabelSet::new(&[("model", "VGG19"), ("source", src)]),
            ))
            .map(|v| v.scalar())
        };
        assert_eq!(get("scaling_efficiency", "measured"), Some(0.81));
        assert_eq!(get("scaling_efficiency", "paper"), Some(0.76));
        assert_eq!(get("gpu_utilization", "measured"), Some(0.93));
        assert_eq!(get("gpu_utilization", "paper"), None);
    }
}

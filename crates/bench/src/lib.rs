//! Shared helpers for the table/figure reproduction benches.
//!
//! Every bench target regenerates one artifact of the paper's
//! evaluation and prints measured values next to the paper's, so a
//! reader can check the *shape* (who wins, by what factor, where the
//! crossovers fall) at a glance. Absolute values are not expected to
//! match: the substrate here is a calibrated simulator, not the
//! authors' EC2 testbed (see EXPERIMENTS.md).

#![forbid(unsafe_code)]

/// Prints a bench banner.
pub fn banner(id: &str, what: &str) {
    println!("\n=== {id}: {what} ===");
}

/// Formats a measured-vs-paper pair.
pub fn vs(measured: f64, paper: f64, unit: &str) -> String {
    format!("{measured:.2}{unit} (paper: {paper:.2}{unit})")
}

/// Relative change in percent.
pub fn pct(new: f64, old: f64) -> f64 {
    (new / old - 1.0) * 100.0
}

/// A tiny fixed-width row printer.
pub fn row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (c, w) in cells.iter().zip(widths) {
        line.push_str(&format!("{c:>w$} ", w = w));
    }
    println!("{line}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_math() {
        assert!((pct(110.0, 100.0) - 10.0).abs() < 1e-9);
        assert!((pct(50.0, 100.0) + 50.0).abs() < 1e-9);
    }

    #[test]
    fn vs_formats() {
        assert_eq!(vs(0.5, 0.47, ""), "0.50 (paper: 0.47)");
    }
}

//! Figure 8: training throughput of the NLP models (Bert-large with
//! onebit, Transformer with DGC, LSTM with TernGrad) as the EC2
//! cluster scales from 8 to 128 GPUs.

use hipress::prelude::*;
use hipress_bench::{banner, pct, Recorder};

fn sweep(rec: &Recorder, model: DnnModel, alg: Algorithm, ring_for_oss: bool) {
    println!("\n--- {} ({}) ---", model.name(), alg.label());
    println!(
        "{:>5} {:>12} {:>12} {:>14} {:>14} {:>14}",
        "GPUs", "BytePS", "Ring", "OSS-coupled", "HiPress-PS", "HiPress-Ring"
    );
    for nodes in [2usize, 4, 8, 16] {
        let cluster = ClusterConfig::ec2(nodes);
        let gpus = cluster.total_gpus();
        let run = |j: TrainingJob| simulate(&j).expect("simulation runs").throughput;
        let byteps = run(TrainingJob::baseline(
            model,
            cluster.with_tcp(),
            Strategy::BytePs,
        ));
        let ring = run(TrainingJob::baseline(model, cluster, Strategy::HorovodRing));
        let oss = if ring_for_oss {
            run(TrainingJob::baseline(model, cluster, Strategy::HorovodRing).with_algorithm(alg))
        } else {
            run(
                TrainingJob::baseline(model, cluster.with_tcp(), Strategy::BytePs)
                    .with_algorithm(alg),
            )
        };
        let hip_ps =
            run(TrainingJob::hipress(model, cluster, Strategy::CaSyncPs).with_algorithm(alg));
        let hip_ring =
            run(TrainingJob::hipress(model, cluster, Strategy::CaSyncRing).with_algorithm(alg));
        println!(
            "{gpus:>5} {byteps:>12.0} {ring:>12.0} {oss:>14.0} {hip_ps:>14.0} {hip_ring:>14.0}"
        );
        let gpus_str = gpus.to_string();
        for (system, v) in [
            ("BytePS", byteps),
            ("Ring", ring),
            ("OSS-coupled", oss),
            ("HiPress-PS", hip_ps),
            ("HiPress-Ring", hip_ring),
        ] {
            rec.record(
                "throughput_samples_per_sec",
                &[
                    ("model", model.name()),
                    ("system", system),
                    ("gpus", &gpus_str),
                ],
                v,
                None,
            );
        }
        if nodes == 16 {
            let hip = hip_ps.max(hip_ring);
            println!(
                "      HiPress at 128 GPUs: +{:.1}% over the no-compression baselines",
                pct(hip, byteps.max(ring))
            );
            rec.record(
                "hipress_gain_pct",
                &[("model", model.name()), ("over", "no-compression")],
                pct(hip, byteps.max(ring)),
                None,
            );
            assert!(
                hip >= byteps.max(ring).max(oss) * 0.99,
                "HiPress must match or beat every baseline"
            );
        }
    }
}

fn main() {
    banner(
        "Figure 8",
        "NLP model throughput vs GPU count (paper: HiPress over baselines, growing with scale)",
    );
    let rec = Recorder::new("fig8");
    sweep(&rec, DnnModel::BertLarge, Algorithm::OneBit, false); // Fig 8a (MXNet).
    sweep(
        &rec,
        DnnModel::Transformer,
        Algorithm::Dgc { rate: 0.001 },
        true,
    ); // Fig 8b (TF).
    sweep(
        &rec,
        DnnModel::Lstm,
        Algorithm::TernGrad { bitwidth: 2 },
        false,
    ); // Fig 8c (PyTorch).
    rec.finish();
}

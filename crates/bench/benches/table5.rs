//! Table 5: implementation and integration costs (lines of code) of
//! the five algorithms under CompLL, versus the open-source versions
//! the paper tabulates.

use hipress::compll::algorithms;
use hipress_bench::{banner, Recorder};

fn main() {
    banner(
        "Table 5",
        "implementation & integration cost (lines of code)",
    );
    // Paper's OSS columns: (logic, integration); N/A for GradDrop.
    let paper_oss: [(&str, Option<(usize, usize)>, (usize, usize, usize)); 5] = [
        ("onebit", Some((80, 445)), (21, 9, 4)),
        ("tbq", Some((100, 384)), (13, 18, 3)),
        ("terngrad", Some((170, 513)), (23, 7, 5)),
        ("dgc", Some((1298, 1869)), (29, 15, 6)),
        ("graddrop", None, (29, 21, 6)),
    ];
    let algs = algorithms::paper_suite().expect("suite compiles");
    println!(
        "{:<10} {:>16} {:>14} {:>22} {:>14} {:>12}",
        "algorithm",
        "OSS logic",
        "OSS integ.",
        "CompLL logic (paper)",
        "udf (paper)",
        "#ops (paper)"
    );
    let rec = Recorder::new("table5");
    for (alg, (name, oss, (p_logic, p_udf, p_ops))) in algs.iter().zip(paper_oss) {
        let r = alg.loc_report();
        let labels = [("algorithm", name)];
        rec.record(
            "compll_logic_loc",
            &labels,
            r.logic as f64,
            Some(p_logic as f64),
        );
        rec.record("compll_udf_loc", &labels, r.udf as f64, Some(p_udf as f64));
        rec.record(
            "compll_operators",
            &labels,
            r.operators.len() as f64,
            Some(p_ops as f64),
        );
        let oss_str = match oss {
            Some((logic, integ)) => (logic.to_string(), integ.to_string()),
            None => ("N/A".into(), "N/A".into()),
        };
        println!(
            "{:<10} {:>16} {:>14} {:>15} ({:>3}) {:>8} ({:>3}) {:>6} ({:>3})",
            name,
            oss_str.0,
            oss_str.1,
            r.logic,
            p_logic,
            r.udf,
            p_udf,
            r.operators.len(),
            p_ops
        );
        assert_eq!(r.integration, 0, "CompLL integration must be automatic");
        // The Table 5 claim: tens of DSL lines vs hundreds/thousands.
        if let Some((oss_logic, _)) = oss {
            assert!(
                r.logic + r.udf < oss_logic,
                "{name}: DSL ({}) must be smaller than OSS ({oss_logic})",
                r.logic + r.udf
            );
        }
    }
    println!(
        "\nintegration column: 0 lines for every CompLL algorithm (automatic), as in the paper"
    );
    rec.finish();
}

//! Overhead of the fault-tolerant envelope path with no faults: the
//! same synchronization run on the trusting fast path and on the
//! envelope protocol (sequence numbers + checksums + acks + dedup)
//! under an empty fault plan. The contract is that hardening is
//! cheap: under 5% extra CPU aggregated over the compressed
//! configurations the system actually ships (small payloads make
//! per-message checksums negligible; the uncompressed rows are
//! reported for context but not gated).
//!
//! The gate compares process CPU time, not wall clock. On a shared
//! or oversubscribed host, wall clock measures the scheduler —
//! identical runs here vary 2-5x with background load — while CPU
//! time measures the work the protocol actually adds. Wall minima
//! are still printed for context.

use hipress::chaos::FaultPlan;
use hipress::prelude::*;
use hipress::tensor::synth::{generate, GradientShape};
use hipress::tensor::Tensor;
use hipress_bench::{banner, pct, Recorder};

const REPS: usize = 7;
const BUDGET_PCT: f64 = 5.0;
const MAX_ATTEMPTS: usize = 3;

fn grads(nodes: usize, sizes: &[usize]) -> Vec<Vec<Tensor>> {
    (0..nodes)
        .map(|w| {
            sizes
                .iter()
                .enumerate()
                .map(|(g, &n)| {
                    generate(
                        n,
                        GradientShape::Gaussian { std_dev: 1.0 },
                        (w * 7919 + g) as u64,
                    )
                })
                .collect()
        })
        .collect()
}

/// User+system CPU time this process has consumed so far, in clock
/// ticks, from `/proc/self/stat`. Includes reaped worker threads, so
/// a delta around a sync run captures every node thread's work.
fn cpu_ticks() -> u64 {
    let stat = std::fs::read_to_string("/proc/self/stat").expect("/proc/self/stat");
    // The comm field may contain spaces; fields resume after ')'.
    // utime and stime are overall fields 14 and 15 (1-based), i.e.
    // 11 and 12 after the parenthesized comm.
    let rest = stat.rsplit(')').next().expect("stat format");
    let fields: Vec<&str> = rest.split_whitespace().collect();
    let utime: u64 = fields[11].parse().expect("utime");
    let stime: u64 = fields[12].parse().expect("stime");
    utime + stime
}

/// One cell's measurements, per path: the median CPU cost of a run,
/// the median *paired* extra CPU of the envelope run over the fast
/// run it was interleaved with, the best wall time, and the outcome
/// that produced it.
struct Measured {
    cpu_fast: i64,
    cpu_delta: i64,
    wall_fast_ns: u64,
    wall_env_ns: u64,
    out_fast: SyncOutcome,
    out_env: SyncOutcome,
}

fn median(mut v: Vec<i64>) -> i64 {
    v.sort_unstable();
    v[v.len() / 2]
}

/// Runs fast/envelope interleaved back to back [`REPS`] times.
/// Background load here comes in multi-second bursts, so the two
/// runs of a pair see the same ambient conditions; the per-pair CPU
/// delta cancels the drift that makes absolute CPU (let alone wall
/// clock) swing by double digits. The median over pairs discards the
/// reps a burst boundary still splits.
fn measure_pair(fast: &HiPress, envelope: &HiPress, workers: &[Vec<Tensor>]) -> Measured {
    let mut cpu_f = Vec::new();
    let mut deltas = Vec::new();
    let mut best: [Option<(u64, SyncOutcome)>; 2] = [None, None];
    for rep in 0..REPS {
        // Alternate which path goes first so warmup and frequency
        // drift cannot systematically favor one side.
        let mut order = [(fast, 0usize), (envelope, 1usize)];
        if rep % 2 == 1 {
            order.swap(0, 1);
        }
        let mut spent = [0i64; 2];
        for (builder, slot) in order {
            let before = cpu_ticks();
            let out = builder.sync(workers).expect("sync");
            spent[slot] = (cpu_ticks() - before) as i64;
            let wall = out.report.as_ref().expect("thread backend reports").wall_ns;
            if best[slot].as_ref().is_none_or(|(b, _)| wall < *b) {
                best[slot] = Some((wall, out));
            }
        }
        cpu_f.push(spent[0]);
        deltas.push(spent[1] - spent[0]);
    }
    let [f, e] = best;
    let (wall_fast_ns, out_fast) = f.expect("REPS > 0");
    let (wall_env_ns, out_env) = e.expect("REPS > 0");
    Measured {
        cpu_fast: median(cpu_f),
        cpu_delta: median(deltas),
        wall_fast_ns,
        wall_env_ns,
        out_fast,
        out_env,
    }
}

fn main() {
    banner(
        "chaos_overhead",
        "fault-free cost of the envelope protocol vs the fast path",
    );
    let rec = Recorder::new("chaos_overhead");
    // Two node threads: more would oversubscribe small CI hosts and
    // inflate even the CPU-time comparison with contention.
    let nodes = 2;
    // Multi-megabyte gradients, the scale the paper's models ship:
    // long runs amortize the 10ms granularity of the CPU-tick clock
    // the gate reads, and large payloads are where checksum cost
    // would show if it were material.
    let sizes = [1 << 23, 1 << 20, 65536];
    let workers = grads(nodes, &sizes);
    println!(
        "\n{nodes} node threads, {} tensors, {REPS} interleaved runs per cell; \
         gate: compressed rows < {BUDGET_PCT}% extra CPU\n",
        sizes.len()
    );
    // One measurement attempt can still be spoiled by a long burst of
    // background load (the paired-delta estimator cancels short
    // bursts, not ones spanning many reps); the gate trips only when
    // every attempt exceeds the budget.
    let mut aggregate = f64::MAX;
    for attempt in 1..=MAX_ATTEMPTS {
        println!(
            "{:>12} {:>10} {:>11} {:>11} {:>10} {:>10}",
            "strategy", "algorithm", "fast", "envelope", "cpu ovhd", "wall ovhd"
        );
        let mut gated_delta = 0i64;
        let mut gated_base = 0i64;
        let att = attempt.to_string();
        for strategy in [Strategy::CaSyncPs, Strategy::CaSyncRing] {
            for alg in [
                Algorithm::None,
                Algorithm::OneBit,
                Algorithm::TernGrad { bitwidth: 2 },
            ] {
                let fast = HiPress::new(strategy)
                    .algorithm(alg)
                    .partitions(4)
                    .backend(Backend::Threads(nodes));
                let envelope = fast
                    .clone()
                    .fault_tolerance(FaultTolerance::default())
                    .chaos(&FaultPlan::none(0));
                let m = measure_pair(&fast, &envelope, &workers);
                // Hardening must be invisible to the results, not just
                // cheap: both paths install the same bits.
                for (a, b) in m.out_fast.flows.iter().zip(&m.out_env.flows) {
                    assert_eq!(a.per_node, b.per_node, "envelope path changed the result");
                }
                // Injections must be zero; retries are allowed to be
                // non-zero (a busy receiver acking late is honest
                // protocol bookkeeping, not a fault).
                assert!(
                    m.out_env
                        .report
                        .as_ref()
                        .is_some_and(|r| r.faults.total_injected() == 0),
                    "an empty fault plan injected something"
                );
                let cpu_overhead = 100.0 * m.cpu_delta as f64 / m.cpu_fast as f64;
                let wall_overhead = pct(m.wall_env_ns as f64, m.wall_fast_ns as f64);
                let alg_label = alg.label();
                let labels = [
                    ("strategy", strategy.label()),
                    ("algorithm", alg_label.as_str()),
                    ("attempt", att.as_str()),
                ];
                rec.record(
                    "wall_ns",
                    &[labels[0], labels[1], labels[2], ("path", "fast")],
                    m.wall_fast_ns as f64,
                    None,
                );
                rec.record(
                    "wall_ns",
                    &[labels[0], labels[1], labels[2], ("path", "envelope")],
                    m.wall_env_ns as f64,
                    None,
                );
                rec.record("chaos_overhead_pct", &labels, cpu_overhead, None);
                let gated = alg != Algorithm::None;
                if gated {
                    gated_delta += m.cpu_delta;
                    gated_base += m.cpu_fast;
                }
                println!(
                    "{:>12} {:>10} {:>9.2}ms {:>9.2}ms {:>+9.1}% {:>+9.1}%{}",
                    format!("{strategy:?}"),
                    alg.label(),
                    m.wall_fast_ns as f64 / 1e6,
                    m.wall_env_ns as f64 / 1e6,
                    cpu_overhead,
                    wall_overhead,
                    if gated { "" } else { "  (not gated)" }
                );
            }
            println!();
        }
        aggregate = 100.0 * gated_delta as f64 / gated_base as f64;
        rec.record(
            "chaos_overhead_pct",
            &[("scope", "gated-aggregate"), ("attempt", att.as_str())],
            aggregate,
            None,
        );
        if aggregate < BUDGET_PCT {
            break;
        }
        println!(
            "attempt {attempt}/{MAX_ATTEMPTS}: aggregate CPU overhead {aggregate:+.1}% \
         over budget — remeasuring\n"
        );
    }
    assert!(
        aggregate < BUDGET_PCT,
        "envelope CPU overhead {aggregate:.1}% blows the {BUDGET_PCT}% budget \
         on every attempt"
    );
    println!(
        "aggregate CPU overhead over compressed cells: {aggregate:+.1}% (< {BUDGET_PCT}% budget)"
    );
    rec.finish();
}

//! Overhead of the live telemetry plane on the pipelined thread
//! engine: the same multi-iteration CaSync-Ring sync, with and without
//! a [`Telemetry`] hub attached — and, when attached, a bound
//! [`Server`] with a live `/events` NDJSON subscriber streaming every
//! record out over loopback TCP. The progress hook fires once per
//! retired iteration and must stay cheap enough to leave on for any
//! job an operator might want to watch, so the gate requires the whole
//! plane (hook + watchdog + ring + server + streaming client) to cost
//! under 5% extra CPU.
//!
//! Like `recorder_overhead`, the gate compares process CPU time, not
//! wall clock: identical runs on a shared host vary multi-x in wall
//! time with background load, while CPU time measures the work the
//! telemetry plane actually adds. Runs are interleaved in pairs and
//! the *paired* delta is taken, which cancels ambient drift; the
//! median over pairs discards the reps a load burst still splits.

use hipress::obs::{serve, Server, Telemetry, WatchConfig};
use hipress::prelude::*;
use hipress::tensor::synth::{generate, GradientShape};
use hipress::tensor::Tensor;
use hipress_bench::{banner, Recorder};

const REPS: usize = 7;
const BUDGET_PCT: f64 = 5.0;
const MAX_ATTEMPTS: usize = 3;
const NODES: usize = 2;
/// Iterations per run; with [`ELEMS`] sized so one run costs a good
/// fraction of a second of CPU, making a single 10ms tick of the CPU
/// clock the gate reads fine enough to resolve the 5% budget — while
/// still retiring enough iterations that the per-retirement hook cost
/// is what dominates the telemetry side of the delta.
const ITERS: u32 = 96;
const WINDOW: u32 = 2;
const ELEMS: [usize; 2] = [131072, 16384];

/// User+system CPU time this process has consumed so far, in clock
/// ticks, from `/proc/self/stat`. Includes reaped worker, server, and
/// client threads, so a delta around a run captures the whole plane.
fn cpu_ticks() -> u64 {
    let stat = std::fs::read_to_string("/proc/self/stat").expect("/proc/self/stat");
    let rest = stat.rsplit(')').next().expect("stat format");
    let fields: Vec<&str> = rest.split_whitespace().collect();
    let utime: u64 = fields[11].parse().expect("utime");
    let stime: u64 = fields[12].parse().expect("stime");
    utime + stime
}

/// One full sync on the pipelined thread engine. With `telemetry`,
/// the run publishes every retired iteration into a hub served over
/// a real socket, with an `/events` subscriber consuming the stream
/// end to end; returns the records published (0 when detached).
fn run_sync(grads: &[Vec<Tensor>], telemetry: bool) -> u64 {
    let builder = HiPress::new(Strategy::CaSyncRing)
        .algorithm(Algorithm::OneBit)
        .partitions(2)
        .seed(3)
        .backend(Backend::Threads(NODES))
        .iterations(ITERS)
        .pipeline_window(WINDOW);
    if !telemetry {
        builder.sync(grads).expect("bare sync");
        return 0;
    }
    let hub = Telemetry::new(Registry::new(), WatchConfig::default());
    let server = Server::bind("127.0.0.1:0", hub.clone()).expect("bind telemetry");
    let addr = server.addr().to_string();
    let client = std::thread::spawn(move || serve::fetch(&addr, "/events", None));
    builder.telemetry(&hub).sync(grads).expect("telemetry sync");
    hub.mark_done();
    let (status, body) = client
        .join()
        .expect("events client")
        .expect("events stream");
    assert_eq!(status, 200);
    let streamed = body.lines().count() as u64;
    server.stop();
    let published = hub.records_published();
    assert_eq!(
        streamed, published,
        "the /events subscriber must see every published record"
    );
    published
}

fn median(mut v: Vec<i64>) -> i64 {
    v.sort_unstable();
    v[v.len() / 2]
}

fn main() {
    banner(
        "telemetry_overhead",
        "cost of the live telemetry plane on the pipelined engine",
    );
    let rec = Recorder::new("telemetry_overhead");
    let grads: Vec<Vec<Tensor>> = (0..NODES)
        .map(|w| {
            ELEMS
                .iter()
                .enumerate()
                .map(|(g, &n)| {
                    generate(
                        n,
                        GradientShape::Gaussian { std_dev: 1.0 },
                        (w * 1000 + g) as u64,
                    )
                })
                .collect()
        })
        .collect();
    println!(
        "\n{NODES} threads x {ITERS} iterations (window {WINDOW}), {} gradients, {REPS} \
         interleaved pairs per attempt; gate: telemetry plane < {BUDGET_PCT}% extra CPU\n",
        ELEMS.len()
    );
    let mut aggregate = f64::MAX;
    for attempt in 1..=MAX_ATTEMPTS {
        let mut bare = Vec::new();
        let mut deltas = Vec::new();
        let mut records = 0u64;
        for rep in 0..REPS {
            // Alternate which path goes first so warmup and frequency
            // drift cannot systematically favor one side.
            let mut order = [(false, 0usize), (true, 1usize)];
            if rep % 2 == 1 {
                order.swap(0, 1);
            }
            let mut spent = [0i64; 2];
            for (telemetry, slot) in order {
                let before = cpu_ticks();
                let published = run_sync(&grads, telemetry);
                spent[slot] = (cpu_ticks() - before) as i64;
                if telemetry {
                    assert_eq!(
                        published,
                        u64::from(ITERS) * NODES as u64,
                        "every retired iteration must publish one record"
                    );
                    records = published;
                }
            }
            bare.push(spent[0]);
            deltas.push(spent[1] - spent[0]);
        }
        let base = median(bare).max(1);
        let delta = median(deltas);
        aggregate = 100.0 * delta as f64 / base as f64;
        let att = attempt.to_string();
        rec.record(
            "telemetry_overhead_pct",
            &[("attempt", att.as_str())],
            aggregate,
            None,
        );
        println!(
            "attempt {attempt}: median CPU bare {base} ticks, telemetry delta {delta:+} \
             ticks ({aggregate:+.1}%), {records} records streamed per run"
        );
        if aggregate < BUDGET_PCT {
            break;
        }
        if attempt < MAX_ATTEMPTS {
            println!("  over budget — remeasuring");
        }
    }
    assert!(
        aggregate < BUDGET_PCT,
        "telemetry plane CPU overhead {aggregate:.1}% blows the {BUDGET_PCT}% budget \
         on every attempt"
    );
    println!("telemetry CPU overhead: {aggregate:+.1}% (< {BUDGET_PCT}% budget)");
    rec.finish();
}

//! Overhead of the always-on flight recorder on the TCP fabric: the
//! same two-rank message exchange over a real loopback mesh, with and
//! without a recorder attached. The recorder is the crash-forensics
//! ring every process-backend worker keeps hot — it must be cheap
//! enough to never turn off, so the gate requires its aggregate CPU
//! cost to stay under 5%.
//!
//! Like `chaos_overhead`, the gate compares process CPU time, not
//! wall clock: identical runs on a shared host vary multi-x in wall
//! time with background load, while CPU time measures the work the
//! recorder actually adds. Runs are interleaved in pairs and the
//! *paired* delta is taken, which cancels ambient drift; the median
//! over pairs discards the reps a load burst still splits.

use hipress_bench::banner;
use hipress_bench::Recorder;
use hipress_fabric::tcp::{connect_mesh, MeshConfig};
use hipress_fabric::{DecodeError, FlightRecorder, Link, Reader, WireMsg, Writer};
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::time::{Duration, Instant};

const REPS: usize = 7;
const BUDGET_PCT: f64 = 5.0;
const MAX_ATTEMPTS: usize = 3;
/// Messages each rank sends per run; with [`PAYLOAD`] sized so one
/// run costs close to a second of CPU, making a single 10ms tick of
/// the CPU clock the gate reads worth ~1% — fine enough to resolve
/// the 5% budget. Frames stay well under the loopback socket buffers
/// because the exchange is lockstep (at most one data frame and one
/// ack in flight per direction).
const MSGS: usize = 16384;
const PAYLOAD: usize = 8 * 1024;

/// An opaque payload; encoding is a length-prefixed copy, so the run
/// measures the fabric (framing, checksums, acks, recording), not an
/// application codec.
struct Blob(Vec<u8>);

impl WireMsg for Blob {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(&self.0);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Blob(r.bytes()?.to_vec()))
    }
}

/// User+system CPU time this process has consumed so far, in clock
/// ticks, from `/proc/self/stat`. Includes reaped reader threads, so
/// a delta around a run captures both endpoints' work.
fn cpu_ticks() -> u64 {
    let stat = std::fs::read_to_string("/proc/self/stat").expect("/proc/self/stat");
    let rest = stat.rsplit(')').next().expect("stat format");
    let fields: Vec<&str> = rest.split_whitespace().collect();
    let utime: u64 = fields[11].parse().expect("utime");
    let stime: u64 = fields[12].parse().expect("stime");
    utime + stime
}

/// One full exchange: build a fresh two-rank loopback mesh (rank 1 on
/// a helper thread), have both ranks send [`MSGS`] blobs and receive
/// as many, tear the mesh down. Returns the events the recorder
/// captured (0 when recording was off).
fn run_exchange(record: bool) -> u64 {
    let recorders: Vec<Option<Arc<FlightRecorder>>> = (0..2)
        .map(|_| record.then(|| Arc::new(FlightRecorder::new(Instant::now()))))
        .collect();
    let listeners: Vec<TcpListener> = (0..2)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind"))
        .collect();
    let addrs: Vec<SocketAddr> = listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr"))
        .collect();
    let config = |rec: &Option<Arc<FlightRecorder>>| MeshConfig {
        recorder: rec.clone(),
        ..MeshConfig::default()
    };

    let mut handles = Vec::new();
    for (rank, listener) in listeners.into_iter().enumerate() {
        let peers = addrs.clone();
        let cfg = config(&recorders[rank]);
        handles.push(std::thread::spawn(move || {
            let mut link = connect_mesh::<Blob>(rank, 2, listener, &peers, &cfg).expect("mesh");
            // Lockstep: send one, wait for the peer's one. Both sides
            // send first, so the exchange cannot deadlock, and at
            // most one data frame (plus its ack) is in flight per
            // direction — far below the loopback socket buffers.
            for _ in 0..MSGS {
                link.send(1 - rank, Blob(vec![rank as u8; PAYLOAD]))
                    .expect("send");
                let msg = loop {
                    match link.recv_timeout(Duration::from_secs(10)).expect("recv") {
                        Some(msg) => break msg,
                        None => panic!("rank {rank}: peer silent mid-exchange"),
                    }
                };
                assert_eq!(msg.0.len(), PAYLOAD);
            }
            assert_eq!(link.counters().frames, MSGS as u64);
        }));
    }
    for h in handles {
        h.join().expect("rank thread panicked");
    }
    recorders.iter().flatten().map(|r| r.recorded()).sum()
}

fn median(mut v: Vec<i64>) -> i64 {
    v.sort_unstable();
    v[v.len() / 2]
}

fn main() {
    banner(
        "recorder_overhead",
        "cost of the always-on flight recorder on the TCP fabric",
    );
    let rec = Recorder::new("recorder_overhead");
    println!(
        "\n2 ranks x {MSGS} messages x {}KiB over loopback TCP, {REPS} interleaved \
         pairs per attempt; gate: recorder < {BUDGET_PCT}% extra CPU\n",
        PAYLOAD / 1024
    );
    let mut aggregate = f64::MAX;
    for attempt in 1..=MAX_ATTEMPTS {
        let mut bare = Vec::new();
        let mut deltas = Vec::new();
        let mut events = 0u64;
        for rep in 0..REPS {
            // Alternate which path goes first so warmup and frequency
            // drift cannot systematically favor one side.
            let mut order = [(false, 0usize), (true, 1usize)];
            if rep % 2 == 1 {
                order.swap(0, 1);
            }
            let mut spent = [0i64; 2];
            for (record, slot) in order {
                let before = cpu_ticks();
                let captured = run_exchange(record);
                spent[slot] = (cpu_ticks() - before) as i64;
                if record {
                    assert!(captured > 0, "recorder attached but captured nothing");
                    events = captured;
                }
            }
            bare.push(spent[0]);
            deltas.push(spent[1] - spent[0]);
        }
        let base = median(bare).max(1);
        let delta = median(deltas);
        aggregate = 100.0 * delta as f64 / base as f64;
        let att = attempt.to_string();
        rec.record(
            "recorder_overhead_pct",
            &[("attempt", att.as_str())],
            aggregate,
            None,
        );
        println!(
            "attempt {attempt}: median CPU bare {base} ticks, recorder delta {delta:+} \
             ticks ({aggregate:+.1}%), ring held {events} events"
        );
        if aggregate < BUDGET_PCT {
            break;
        }
        if attempt < MAX_ATTEMPTS {
            println!("  over budget — remeasuring");
        }
    }
    assert!(
        aggregate < BUDGET_PCT,
        "flight recorder CPU overhead {aggregate:.1}% blows the {BUDGET_PCT}% budget \
         on every attempt"
    );
    println!("recorder CPU overhead: {aggregate:+.1}% (< {BUDGET_PCT}% budget)");
    rec.finish();
}

//! Figure 13: convergence validation — real data-parallel training
//! to a target metric, with the wall-clock axis derived from the
//! throughput simulator, comparing no-compression against
//! CompLL-style DGC and TernGrad.
//!
//! Left panel analogue: an LSTM language model racing to a target
//! perplexity. Right panel analogue: a classifier racing to a target
//! accuracy. The paper's claim: compression converges to the same
//! quality in up to 28.6% less time.

use hipress::compress::Algorithm;
use hipress::prelude::*;
use hipress::train::convergence::{run_data_parallel, ConvergenceConfig};
use hipress::train::nn::data::{Classification, MarkovText};
use hipress::train::nn::{LstmLm, Mlp};
use hipress_bench::{banner, Recorder};

/// Per-iteration wall-clock cost of the synchronization pattern this
/// algorithm would produce on the local cluster, from the simulator.
fn iter_ms(alg: Algorithm) -> f64 {
    let cluster = ClusterConfig::local(16);
    // LSTM is the paper's left panel; its per-iteration time is what
    // the time axis uses.
    let job =
        TrainingJob::hipress(DnnModel::Lstm, cluster, Strategy::CaSyncRing).with_algorithm(alg);
    simulate(&job).expect("simulation runs").iteration_ns as f64 / 1e6
}

fn lstm_panel(rec: &Recorder) {
    println!("\n--- LSTM language model: time to target perplexity ---");
    let workers = 4;
    let text = MarkovText::generate(40_000, 16, 8.0, 31);
    // Shard the token stream (contiguous slices).
    let shard_len = text.tokens.len() / workers;
    let target = 9.0;
    println!(
        "{:<22} {:>12} {:>12} {:>10} {:>14}",
        "algorithm", "final ppl", "iters@tgt", "ms/iter", "time-to-tgt"
    );
    let mut times = Vec::new();
    for alg in [
        Algorithm::None,
        Algorithm::Dgc { rate: 0.05 },
        Algorithm::TernGrad { bitwidth: 2 },
    ] {
        let mut replicas: Vec<LstmLm> = (0..workers)
            .map(|w| {
                let shard = MarkovText {
                    vocab: text.vocab,
                    tokens: text.tokens[w * shard_len..(w + 1) * shard_len].to_vec(),
                };
                LstmLm::new(8, 24, 10, shard, 7)
            })
            .collect();
        let cfg = ConvergenceConfig {
            workers,
            batch_per_worker: 6,
            lr: 0.5,
            momentum: 0.5,
            algorithm: alg,
            iterations: 220,
            eval_every: 10,
            seed: 13,
        };
        let r = run_data_parallel(
            &cfg,
            &mut replicas,
            |m| m.data().len() - m.seq_len - 1,
            |m| m.perplexity(12),
        )
        .expect("training runs");
        let ms = iter_ms(alg);
        let tti = r.iterations_to_target(target, false).map(|i| i as f64 * ms);
        println!(
            "{:<22} {:>12.2} {:>12} {:>10.1} {:>14}",
            alg.label(),
            r.final_metric,
            r.iterations_to_target(target, false)
                .map(|i| i.to_string())
                .unwrap_or_else(|| "-".into()),
            ms,
            tti.map(|t| format!("{t:.0} ms"))
                .unwrap_or_else(|| "-".into()),
        );
        let alg_label = alg.label();
        let labels = [("panel", "lstm"), ("algorithm", &alg_label)];
        rec.record("final_perplexity", &labels, r.final_metric, None);
        if let Some(t) = tti {
            rec.record("time_to_target_ns", &labels, t * 1e6, None);
        }
        times.push((alg.label(), r.final_metric, tti));
    }
    let baseline_ppl = times[0].1;
    for (label, ppl, _) in &times[1..] {
        assert!(
            *ppl < baseline_ppl * 1.15,
            "{label} must converge near the baseline perplexity ({ppl} vs {baseline_ppl})"
        );
    }
}

fn classifier_panel(rec: &Recorder) {
    println!("\n--- classifier: time to target accuracy ---");
    let workers = 4;
    let full = Classification::gaussian_mixture(600 * workers + 800, 16, 10, 2.2, 77);
    let mut shards = full.split(workers + 1);
    let eval = shards.pop().unwrap();
    let target = 0.80;
    println!(
        "{:<22} {:>12} {:>12} {:>10} {:>14}",
        "algorithm", "final acc", "iters@tgt", "ms/iter", "time-to-tgt"
    );
    let mut rows = Vec::new();
    for alg in [
        Algorithm::None,
        Algorithm::Dgc { rate: 0.01 },
        Algorithm::TernGrad { bitwidth: 2 },
    ] {
        let mut replicas: Vec<Mlp> = shards
            .iter()
            .map(|s| Mlp::new(&[16, 48, 10], s.clone(), 5))
            .collect();
        let cfg = ConvergenceConfig {
            workers,
            batch_per_worker: 32,
            lr: 0.05,
            momentum: 0.9,
            algorithm: alg,
            iterations: 200,
            eval_every: 5,
            seed: 3,
        };
        let r = run_data_parallel(
            &cfg,
            &mut replicas,
            |m| m.data().len(),
            |m| m.accuracy(&eval),
        )
        .expect("training runs");
        // Time axis: ResNet50-analogue iteration times.
        let cluster = ClusterConfig::local(16);
        let ms = simulate(
            &TrainingJob::hipress(DnnModel::ResNet50, cluster, Strategy::CaSyncPs)
                .with_algorithm(alg),
        )
        .expect("simulation runs")
        .iteration_ns as f64
            / 1e6;
        let tti = r.iterations_to_target(target, true).map(|i| i as f64 * ms);
        println!(
            "{:<22} {:>11.1}% {:>12} {:>10.1} {:>14}",
            alg.label(),
            r.final_metric * 100.0,
            r.iterations_to_target(target, true)
                .map(|i| i.to_string())
                .unwrap_or_else(|| "-".into()),
            ms,
            tti.map(|t| format!("{t:.0} ms"))
                .unwrap_or_else(|| "-".into()),
        );
        let alg_label = alg.label();
        let labels = [("panel", "classifier"), ("algorithm", &alg_label)];
        rec.record("final_accuracy", &labels, r.final_metric, None);
        if let Some(t) = tti {
            rec.record("time_to_target_ns", &labels, t * 1e6, None);
        }
        rows.push((alg.label(), r.final_metric));
    }
    let baseline_acc = rows[0].1;
    for (label, acc) in &rows[1..] {
        assert!(
            *acc > baseline_acc - 0.06,
            "{label} must reach comparable accuracy ({acc} vs {baseline_acc})"
        );
    }
}

fn main() {
    banner(
        "Figure 13",
        "convergence validation: same quality, less time (paper: up to 28.6% less)",
    );
    let rec = Recorder::new("fig13");
    lstm_panel(&rec);
    classifier_panel(&rec);
    rec.finish();
}

//! Figure 10: training speedups in the 16-node local cluster
//! (2 × GTX 1080 Ti per node, 56 Gbps RDMA), normalized to BytePS,
//! for Bert-base and VGG19 with the onebit algorithm.
//!
//! The paper's surprise: BytePS(OSS-onebit) can run *slower* than the
//! uncompressed Ring baseline here, while HiPress beats everything by
//! up to 133.1% / 53.3%.

use hipress::prelude::*;
use hipress_bench::{banner, pct, Recorder};

fn main() {
    banner(
        "Figure 10",
        "local-cluster speedups normalized to BytePS (16 nodes x 2 GTX 1080 Ti, 56 Gbps)",
    );
    let cluster = ClusterConfig::local(16);
    let rec = Recorder::new("fig10");
    for model in [DnnModel::BertBase, DnnModel::Vgg19] {
        let run = |j: TrainingJob| simulate(&j).expect("simulation runs").throughput;
        let byteps = run(TrainingJob::baseline(model, cluster, Strategy::BytePs));
        let ring = run(TrainingJob::baseline(model, cluster, Strategy::HorovodRing));
        let byteps_onebit = run(TrainingJob::baseline(model, cluster, Strategy::BytePs)
            .with_algorithm(Algorithm::OneBit));
        let hip_ps = run(TrainingJob::hipress(model, cluster, Strategy::CaSyncPs));
        let hip_ring = run(TrainingJob::hipress(model, cluster, Strategy::CaSyncRing));
        println!("\n--- {} (normalized to BytePS = 1.0) ---", model.name());
        for (label, v) in [
            ("BytePS", byteps),
            ("Ring", ring),
            ("BytePS(OSS-onebit)", byteps_onebit),
            ("HiPress-CaSync-PS(CompLL-onebit)", hip_ps),
            ("HiPress-CaSync-Ring(CompLL-onebit)", hip_ring),
        ] {
            println!("{label:<36} {:.2}x", v / byteps);
            rec.record(
                "normalized_throughput",
                &[("model", model.name()), ("system", label)],
                v / byteps,
                None,
            );
        }
        let hip = hip_ps.max(hip_ring);
        println!(
            "HiPress over non-compression baselines: +{:.1}% (paper: up to +133.1%)",
            pct(hip, byteps.max(ring))
        );
        println!(
            "HiPress over BytePS(OSS-onebit): +{:.1}% (paper: up to +53.3%)",
            pct(hip, byteps_onebit)
        );
        assert!(hip > byteps.max(ring), "HiPress must win on {model:?}");
        assert!(hip >= byteps_onebit, "HiPress must beat the OSS baseline");
        rec.record(
            "hipress_gain_pct",
            &[("model", model.name()), ("over", "no-compression")],
            pct(hip, byteps.max(ring)),
            None,
        );
    }
    rec.finish();
}

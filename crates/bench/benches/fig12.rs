//! Figure 12: sensitivity studies.
//!
//! * 12a — network bandwidth: HiPress's throughput with identical
//!   GPUs on fast vs slow fabrics (100/25 Gbps EC2; 56/10 Gbps
//!   local). The paper's point: HiPress delivers similar speedups
//!   without high-end networks.
//! * 12b — compression rate: TernGrad bitwidth 2/4/8 and DGC rate
//!   0.1%/1%/5% on VGG19 via CaSync-PS; weaker compression costs
//!   some throughput but CaSync stays fast.

use hipress::prelude::*;
use hipress_bench::{banner, pct, Recorder};

fn main() {
    banner(
        "Figure 12a",
        "impact of network bandwidth (Bert-base, HiPress-CaSync-PS onebit)",
    );
    let rec = Recorder::new("fig12");
    let mut ratios = Vec::new();
    for (name, cluster, slow_link) in [
        ("EC2 V100", ClusterConfig::ec2(16), LinkSpec::gbps25()),
        ("local 1080Ti", ClusterConfig::local(16), LinkSpec::gbps10()),
    ] {
        let fast = simulate(&TrainingJob::hipress(
            DnnModel::BertBase,
            cluster,
            Strategy::CaSyncPs,
        ))
        .expect("simulation runs");
        let slow = simulate(&TrainingJob::hipress(
            DnnModel::BertBase,
            cluster.with_link(slow_link),
            Strategy::CaSyncPs,
        ))
        .expect("simulation runs");
        let ratio = slow.throughput / fast.throughput;
        ratios.push(ratio);
        println!(
            "{name:<14} fast {:>9.0} samples/s, slow {:>9.0} samples/s -> slow/fast = {:.2}",
            fast.throughput, slow.throughput, ratio
        );
        rec.record("slow_fast_ratio", &[("cluster", name)], ratio, None);
    }
    // Paper: similar speedups on both networks — the slow fabric
    // loses little because compression removes the bandwidth
    // bottleneck.
    assert!(
        ratios.iter().all(|&r| r > 0.6),
        "HiPress must retain most of its throughput on slow networks: {ratios:?}"
    );
    println!(
        "(paper: near-identical speedups on both bandwidths — compression removes the bottleneck)"
    );

    banner(
        "Figure 12b",
        "impact of compression rate on synchronization time (VGG19, CaSync-PS, local cluster)",
    );
    // Backward overlap hides small differences in our simulator, so
    // report the isolated synchronization time (what the compression
    // rate directly dilates); the paper reports end-to-end throughput
    // but the direction and ordering are the same.
    let cluster = ClusterConfig::local(16);
    let sync_ms = |alg: Algorithm| {
        hipress::train::sync_only_ns(
            &TrainingJob::hipress(DnnModel::Vgg19, cluster, Strategy::CaSyncPs).with_algorithm(alg),
        )
        .expect("simulation runs") as f64
            / 1e6
    };
    let tern2 = sync_ms(Algorithm::TernGrad { bitwidth: 2 });
    let tern4 = sync_ms(Algorithm::TernGrad { bitwidth: 4 });
    let tern8 = sync_ms(Algorithm::TernGrad { bitwidth: 8 });
    println!(
        "TernGrad sync: 2-bit {tern2:>7.1}ms  4-bit {tern4:>7.1}ms ({:+.1}%)  8-bit {tern8:>7.1}ms ({:+.1}%)",
        pct(tern4, tern2),
        pct(tern8, tern2)
    );
    println!("  (paper throughput deltas: 4-bit -12.8%, 8-bit -23.6% vs 2-bit)");
    let dgc01 = sync_ms(Algorithm::Dgc { rate: 0.001 });
    let dgc1 = sync_ms(Algorithm::Dgc { rate: 0.01 });
    let dgc5 = sync_ms(Algorithm::Dgc { rate: 0.05 });
    println!(
        "DGC sync: 0.1% {dgc01:>7.1}ms  1% {dgc1:>7.1}ms ({:+.1}%)  5% {dgc5:>7.1}ms ({:+.1}%)",
        pct(dgc1, dgc01),
        pct(dgc5, dgc01)
    );
    println!("  (paper throughput deltas: 1% -6.7%, 5% -11.3% vs 0.1%)");
    // Shape: weaker compression costs synchronization time.
    assert!(tern8 > tern4 && tern4 > tern2, "{tern2} {tern4} {tern8}");
    assert!(dgc5 > dgc1 && dgc1 > dgc01, "{dgc01} {dgc1} {dgc5}");
    for (alg, ms) in [
        ("terngrad-2bit", tern2),
        ("terngrad-4bit", tern4),
        ("terngrad-8bit", tern8),
        ("dgc-0.1pct", dgc01),
        ("dgc-1pct", dgc1),
        ("dgc-5pct", dgc5),
    ] {
        rec.record("sync_only_ns", &[("algorithm", alg)], ms * 1e6, None);
    }
    rec.finish();
}

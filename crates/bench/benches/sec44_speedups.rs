//! §4.4 "Compression performance": wall-clock encode/decode speed of
//! the optimized implementations versus the deliberately naive OSS
//! baselines, measured for real on this machine's CPU.
//!
//! The paper reports CompLL-TBQ >12× faster than OSS-TBQ,
//! CompLL-DGC up to 5.1× faster than OSS-DGC, and CompLL-onebit up
//! to 35.6× faster than the CPU-only OSS-onebit. Our optimized/naive
//! pairs reproduce the *existence and direction* of those gaps (the
//! exact factors depend on the host).

use hipress::compress::{Algorithm, Compressor};
use hipress::tensor::synth::{generate, GradientShape};
use hipress_bench::{banner, Recorder};
use std::time::Instant;

fn time_encode(c: &dyn Compressor, grad: &[f32], reps: usize) -> f64 {
    // Warm up.
    let _ = c.encode(grad, 0);
    let start = Instant::now();
    for seed in 0..reps as u64 {
        std::hint::black_box(c.encode(std::hint::black_box(grad), seed));
    }
    start.elapsed().as_secs_f64() / reps as f64
}

fn main() {
    banner(
        "SS4.4",
        "optimized vs OSS encode speed (wall clock, 8 MiB gradient)",
    );
    let grad = generate(2 << 20, GradientShape::default_dnn(), 3); // 2M elems = 8 MiB.
    println!(
        "{:<12} {:>14} {:>14} {:>10}",
        "algorithm", "optimized", "OSS", "speedup"
    );
    let pairs = [
        Algorithm::OneBit,
        Algorithm::Tbq { tau: 0.001 },
        Algorithm::TernGrad { bitwidth: 2 },
        Algorithm::Dgc { rate: 0.001 },
    ];
    let rec = Recorder::new("sec44");
    for alg in pairs {
        let opt = alg.build().expect("builds");
        let oss = alg.build_oss().expect("OSS exists for these four");
        let reps = if matches!(alg, Algorithm::Dgc { .. }) {
            3
        } else {
            8
        };
        let t_opt = time_encode(opt.as_ref(), grad.as_slice(), reps);
        let t_oss = time_encode(oss.as_ref(), grad.as_slice(), reps);
        println!(
            "{:<12} {:>11.2} ms {:>11.2} ms {:>9.1}x",
            opt.name(),
            t_opt * 1e3,
            t_oss * 1e3,
            t_oss / t_opt
        );
        rec.record(
            "encode_wallclock_speedup",
            &[("algorithm", opt.name())],
            t_oss / t_opt,
            None,
        );
    }
    // The authoritative gap is the GPU-kernel cost ratio the cluster
    // simulation charges (the paper's numbers are GPU measurements);
    // host wall-clock above is indicative only.
    for alg in pairs {
        let opt = alg.build().unwrap().cost_profile();
        let oss = alg.build_oss().unwrap().cost_profile();
        assert!(
            oss.encode_passes > opt.encode_passes,
            "{}: the OSS kernel must cost more",
            alg.label()
        );
    }
    println!("\nsimulated-GPU kernel cost ratios (what the cluster simulation charges):");
    for alg in pairs {
        let opt = alg.build().unwrap().cost_profile();
        let oss = alg.build_oss().unwrap().cost_profile();
        println!(
            "{:<12} encode passes {:>5.1} vs {:>5.1}  ({:.1}x)",
            alg.label(),
            opt.encode_passes,
            oss.encode_passes,
            oss.encode_passes / opt.encode_passes
        );
        let alg_label = alg.label();
        rec.record(
            "kernel_cost_ratio",
            &[("algorithm", &alg_label)],
            oss.encode_passes / opt.encode_passes,
            None,
        );
    }
    println!("(paper factors: TBQ >12x, DGC up to 5.1x, onebit-on-CPU 35.6x)");
    rec.finish();
}

//! Table 1: scaling efficiency and communication ratio of the
//! baseline systems (Bert-large on BytePS±onebit, Transformer on
//! Ring±DGC) at 16 nodes × 8 V100, 100 Gbps.

use hipress::prelude::*;
use hipress_bench::{banner, row, Recorder};

fn main() {
    banner(
        "Table 1",
        "scaling efficiency & communication ratio, 16 nodes x 8 V100, 100 Gbps",
    );
    let ec2 = ClusterConfig::ec2(16);
    // (label, job, paper scaling efficiency, paper comm ratio)
    let rows: Vec<(&str, TrainingJob, f64, f64)> = vec![
        (
            "Ring-allreduce w/o compression (Transformer)",
            TrainingJob::baseline(DnnModel::Transformer, ec2, Strategy::HorovodRing),
            0.47,
            0.768,
        ),
        (
            "Ring-allreduce w/ DGC (Transformer)",
            TrainingJob::baseline(DnnModel::Transformer, ec2, Strategy::HorovodRing)
                .with_algorithm(Algorithm::Dgc { rate: 0.001 }),
            0.61,
            0.703,
        ),
        (
            "BytePS w/o compression (Bert-large)",
            TrainingJob::baseline(DnnModel::BertLarge, ec2.with_tcp(), Strategy::BytePs),
            0.71,
            0.636,
        ),
        (
            "BytePS w/ onebit (Bert-large)",
            TrainingJob::baseline(DnnModel::BertLarge, ec2.with_tcp(), Strategy::BytePs)
                .with_algorithm(Algorithm::OneBit),
            0.76,
            0.609,
        ),
    ];
    println!(
        "{:<46} {:>22} {:>24}",
        "system configuration", "scaling eff (paper)", "comm ratio (paper)"
    );
    let rec = Recorder::new("table1");
    let mut shapes_ok = true;
    let mut measured = Vec::new();
    for (label, job, p_eff, p_comm) in rows {
        let r = simulate(&job).expect("simulation runs");
        measured.push((r.scaling_efficiency, r.comm_ratio));
        let labels = [("system", label)];
        rec.record(
            "scaling_efficiency",
            &labels,
            r.scaling_efficiency,
            Some(p_eff),
        );
        rec.record("comm_ratio", &labels, r.comm_ratio, Some(p_comm));
        row(
            &[
                format!("{label:<46}"),
                format!("{:.2} ({:.2})", r.scaling_efficiency, p_eff),
                format!("{:.0}% ({:.0}%)", r.comm_ratio * 100.0, p_comm * 100.0),
            ],
            &[46, 22, 24],
        );
    }
    // Shape checks the paper's Table 1 makes:
    // compression improves scaling efficiency for both systems...
    shapes_ok &= measured[1].0 >= measured[0].0;
    shapes_ok &= measured[3].0 >= measured[2].0;
    // ...and lowers (or keeps) the communication ratio.
    shapes_ok &= measured[1].1 <= measured[0].1 + 0.02;
    shapes_ok &= measured[3].1 <= measured[2].1 + 0.02;
    println!(
        "\nshape check (compression raises efficiency, lowers comm ratio): {}",
        if shapes_ok { "PASS" } else { "FAIL" }
    );
    assert!(shapes_ok, "Table 1 shape must hold");
    rec.finish();
}

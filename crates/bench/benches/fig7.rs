//! Figure 7: training throughput of the computer vision models
//! (VGG19 with onebit, ResNet50 with DGC, UGATIT with TernGrad) as
//! the EC2 cluster scales from 8 to 128 GPUs.

use hipress::prelude::*;
use hipress_bench::{banner, pct, Recorder};

fn sweep(rec: &Recorder, model: DnnModel, alg: Algorithm, ring_for_oss: bool) {
    println!("\n--- {} ({}) ---", model.name(), alg.label());
    println!(
        "{:>5} {:>12} {:>12} {:>14} {:>14} {:>14}",
        "GPUs", "BytePS", "Ring", "OSS-coupled", "HiPress-PS", "HiPress-Ring"
    );
    let mut last: Option<(f64, f64)> = None;
    for nodes in [1usize, 2, 4, 8, 16] {
        let cluster = ClusterConfig::ec2(nodes);
        let gpus = cluster.total_gpus();
        if nodes == 1 {
            let t = model.spec().compute(GpuClass::V100).single_gpu_throughput() * gpus as f64;
            println!("{gpus:>5} {t:>12.0} {t:>12.0} {t:>14.0} {t:>14.0} {t:>14.0}");
            continue;
        }
        let run = |j: TrainingJob| simulate(&j).expect("simulation runs").throughput;
        let byteps = run(TrainingJob::baseline(
            model,
            cluster.with_tcp(),
            Strategy::BytePs,
        ));
        let ring = run(TrainingJob::baseline(model, cluster, Strategy::HorovodRing));
        // The compression-enabled baseline: BytePS(OSS-onebit) for
        // MXNet models, Ring(OSS-DGC) for TensorFlow models (§6.2).
        let oss = if ring_for_oss {
            run(TrainingJob::baseline(model, cluster, Strategy::HorovodRing).with_algorithm(alg))
        } else {
            run(
                TrainingJob::baseline(model, cluster.with_tcp(), Strategy::BytePs)
                    .with_algorithm(alg),
            )
        };
        let hip_ps =
            run(TrainingJob::hipress(model, cluster, Strategy::CaSyncPs).with_algorithm(alg));
        let hip_ring =
            run(TrainingJob::hipress(model, cluster, Strategy::CaSyncRing).with_algorithm(alg));
        println!(
            "{gpus:>5} {byteps:>12.0} {ring:>12.0} {oss:>14.0} {hip_ps:>14.0} {hip_ring:>14.0}"
        );
        let gpus_str = gpus.to_string();
        for (system, v) in [
            ("BytePS", byteps),
            ("Ring", ring),
            ("OSS-coupled", oss),
            ("HiPress-PS", hip_ps),
            ("HiPress-Ring", hip_ring),
        ] {
            rec.record(
                "throughput_samples_per_sec",
                &[
                    ("model", model.name()),
                    ("system", system),
                    ("gpus", &gpus_str),
                ],
                v,
                None,
            );
        }
        if nodes == 16 {
            last = Some((hip_ps.max(hip_ring), byteps.min(ring)));
            let best_base = byteps.max(ring).max(oss);
            println!(
                "      HiPress at 128 GPUs: +{:.1}% over the best baseline, +{:.1}% over the worst",
                pct(hip_ps.max(hip_ring), best_base),
                pct(hip_ps.max(hip_ring), byteps.min(ring))
            );
            rec.record(
                "hipress_gain_pct",
                &[("model", model.name()), ("over", "best-baseline")],
                pct(hip_ps.max(hip_ring), best_base),
                None,
            );
        }
    }
    let (hip, worst) = last.expect("16-node row ran");
    assert!(hip > worst, "HiPress must beat the baselines at 128 GPUs");
}

fn main() {
    banner(
        "Figure 7",
        "computer vision model throughput vs GPU count (paper: HiPress wins by 17.3%-110.5%)",
    );
    let rec = Recorder::new("fig7");
    sweep(&rec, DnnModel::Vgg19, Algorithm::OneBit, false); // Fig 7a (MXNet).
    sweep(
        &rec,
        DnnModel::ResNet50,
        Algorithm::Dgc { rate: 0.001 },
        true,
    ); // Fig 7b (TF).
    sweep(
        &rec,
        DnnModel::Ugatit,
        Algorithm::TernGrad { bitwidth: 2 },
        false,
    ); // Fig 7c (PyTorch).
    rec.finish();
}

//! Figure 11: the optimization ablation — stacking CompLL's on-GPU
//! code generation, CaSync pipelining, compression-aware bulk
//! synchronization, and selective compression & partitioning, one at
//! a time, on the 16-node local cluster.
//!
//! VGG19 synchronizes via (CaSync-)PS and Bert-base via
//! (CaSync-)Ring, as in the paper.

use hipress::casync::ExecConfig;
use hipress::prelude::*;
use hipress_bench::{banner, pct, Recorder};

struct Rung {
    label: &'static str,
    job: TrainingJob,
}

fn ladder(model: DnnModel, casync: Strategy, baseline: Strategy) -> Vec<Rung> {
    let cluster = ClusterConfig::local(16);
    let alg = Algorithm::OneBit;
    let mut rungs = Vec::new();
    // Default: the best no-compression baseline runtime.
    rungs.push(Rung {
        label: "Default (no compression)",
        job: TrainingJob::baseline(model, cluster, baseline),
    });
    // on-CPU: the open-source on-CPU onebit bolted onto the baseline.
    rungs.push(Rung {
        label: "+ on-CPU OSS onebit",
        job: {
            let mut j = TrainingJob::baseline(model, cluster, baseline).with_algorithm(alg);
            j.exec = j.exec.with_cpu_codec();
            j
        },
    });
    // on-GPU: CompLL's generated kernels, but no CaSync pipeline yet
    // (coarse-grained serial execution).
    rungs.push(Rung {
        label: "+ on-GPU CompLL onebit",
        job: {
            let mut j = TrainingJob::hipress(model, cluster, casync).with_algorithm(alg);
            j.selective = false;
            j.exec = ExecConfig::baseline().without_pipelining();
            j
        },
    });
    // + pipelining.
    rungs.push(Rung {
        label: "+ pipelining",
        job: {
            let mut j = TrainingJob::hipress(model, cluster, casync).with_algorithm(alg);
            j.selective = false;
            j.exec = ExecConfig::baseline();
            j
        },
    });
    // + bulk synchronization (coordinator batching + batched kernels).
    rungs.push(Rung {
        label: "+ bulk synchronization",
        job: {
            let mut j = TrainingJob::hipress(model, cluster, casync).with_algorithm(alg);
            j.selective = false;
            j
        },
    });
    // + SeCoPa: the full HiPress.
    rungs.push(Rung {
        label: "+ selective compression & partitioning",
        job: TrainingJob::hipress(model, cluster, casync).with_algorithm(alg),
    });
    rungs
}

fn run_ladder(rec: &Recorder, model: DnnModel, casync: Strategy, baseline: Strategy) {
    println!("\n--- {} via {} ---", model.name(), casync.label());
    println!(
        "{:<42} {:>12} {:>12} {:>10}",
        "configuration", "compute ms", "sync ms", "scaling"
    );
    let mut prev_sync: Option<f64> = None;
    let mut stack = Vec::new();
    for rung in ladder(model, casync, baseline) {
        let r = simulate(&rung.job).expect("simulation runs");
        // The isolated synchronization cost (all gradients ready at
        // t=0), like the paper's latency breakdown bars.
        let sync_ms =
            hipress::train::sync_only_ns(&rung.job).expect("simulation runs") as f64 / 1e6;
        let delta = prev_sync
            .map(|p| format!(" ({:+.1}%)", pct(sync_ms, p)))
            .unwrap_or_default();
        println!(
            "{:<42} {:>12.1} {:>9.1}{:<6} {:>7.2}",
            rung.label,
            r.compute_ns as f64 / 1e6,
            sync_ms,
            delta,
            r.scaling_efficiency
        );
        let labels = [("model", model.name()), ("config", rung.label)];
        rec.record("sync_only_ns", &labels, sync_ms * 1e6, None);
        rec.record("scaling_efficiency", &labels, r.scaling_efficiency, None);
        prev_sync = Some(sync_ms);
        stack.push((rung.label, r));
    }
    // Shape checks from §6.3: the full stack beats Default, and the
    // on-CPU rung is the worst compression configuration.
    let default_iter = stack[0].1.iteration_ns;
    let cpu_iter = stack[1].1.iteration_ns;
    let full_iter = stack.last().unwrap().1.iteration_ns;
    assert!(
        full_iter < default_iter,
        "full HiPress must beat the default baseline"
    );
    assert!(
        stack[2].1.iteration_ns < cpu_iter,
        "on-GPU must beat on-CPU compression"
    );
    println!(
        "full stack vs Default: {:+.1}% throughput (paper: VGG19 +133.1%, Bert-base +28.6%)",
        pct(default_iter as f64, full_iter as f64)
    );
}

fn main() {
    banner(
        "Figure 11",
        "optimization ablation on the local cluster (each rung stacks one optimization)",
    );
    let rec = Recorder::new("fig11");
    run_ladder(&rec, DnnModel::Vgg19, Strategy::CaSyncPs, Strategy::BytePs);
    run_ladder(
        &rec,
        DnnModel::BertBase,
        Strategy::CaSyncRing,
        Strategy::HorovodRing,
    );
    rec.finish();
}

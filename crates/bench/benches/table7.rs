//! Table 7: the selective compression and partitioning plans
//! `<compress?, K>` produced for CompLL-onebit at three gradient
//! sizes, two strategies, and two cluster scales.

use hipress::prelude::*;
use hipress_bench::{banner, Recorder};

fn plan_str(p: GradPlan) -> String {
    format!(
        "<{}, {}>",
        if p.compress { "yes" } else { "no" },
        p.partitions
    )
}

fn main() {
    banner(
        "Table 7",
        "compression and partitioning plans (CompLL-onebit)",
    );
    // Paper tuples: (size, PS@4, PS@16, Ring@4, Ring@16).
    let paper: [(&str, u64, &str, &str, &str, &str); 3] = [
        ("4MB", 4 << 20, "<yes,2>", "<yes,1>", "<yes,1>", "<no,16>"),
        ("16MB", 16 << 20, "<yes,4>", "<yes,6>", "<yes,4>", "<yes,5>"),
        (
            "392MB",
            392 << 20,
            "<yes,12>",
            "<yes,16>",
            "<yes,4>",
            "<yes,16>",
        ),
    ];
    let mut planners = Vec::new();
    for strategy in [Strategy::CaSyncPs, Strategy::CaSyncRing] {
        for nodes in [4usize, 16] {
            planners.push((
                strategy,
                nodes,
                Planner::profile(&ClusterConfig::ec2(nodes), strategy, Algorithm::OneBit)
                    .expect("profiling succeeds"),
            ));
        }
    }
    println!(
        "{:<8} {:>18} {:>18} {:>18} {:>18}",
        "size", "PS 4n (paper)", "PS 16n (paper)", "Ring 4n (paper)", "Ring 16n (paper)"
    );
    let rec = Recorder::new("table7");
    for (label, bytes, p_ps4, p_ps16, p_r4, p_r16) in paper {
        let cells: Vec<String> = planners
            .iter()
            .map(|(strategy, nodes, pl)| {
                let plan = pl.plan_gradient(bytes);
                let nodes_str = nodes.to_string();
                let labels = [
                    ("size", label),
                    ("strategy", strategy.label()),
                    ("nodes", &nodes_str),
                ];
                rec.record("plan_partitions", &labels, plan.partitions as f64, None);
                rec.record(
                    "plan_compress",
                    &labels,
                    if plan.compress { 1.0 } else { 0.0 },
                    None,
                );
                plan_str(plan)
            })
            .collect();
        println!(
            "{:<8} {:>9} {:>8} {:>9} {:>8} {:>9} {:>8} {:>9} {:>8}",
            label, cells[0], p_ps4, cells[1], p_ps16, cells[2], p_r4, cells[3], p_r16
        );
    }
    // Shape checks: large gradients always compressed and partitioned;
    // partition counts grow with gradient size.
    for (strategy, nodes, pl) in &planners {
        let p392 = pl.plan_gradient(392 << 20);
        assert!(p392.compress, "{strategy:?}@{nodes}");
        assert!(p392.partitions >= 4, "{strategy:?}@{nodes}");
        let p16 = pl.plan_gradient(16 << 20);
        assert!(p16.compress, "{strategy:?}@{nodes}");
        assert!(
            p392.partitions >= p16.partitions,
            "{strategy:?}@{nodes}: K must grow with size"
        );
    }
    println!("\nshape check (compress large gradients, K grows with size): PASS");
    let threshold = Planner::profile(
        &ClusterConfig::ec2(16),
        Strategy::CaSyncPs,
        Algorithm::OneBit,
    )
    .unwrap()
    .compression_threshold();
    println!(
        "selective threshold at 16 nodes (paper: compress gradients larger than 4MB): {}",
        hipress::util::units::fmt_bytes(threshold)
    );
    rec.record(
        "compression_threshold_bytes",
        &[("strategy", Strategy::CaSyncPs.label()), ("nodes", "16")],
        threshold as f64,
        Some((4 << 20) as f64),
    );
    rec.finish();
}

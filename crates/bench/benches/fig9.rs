//! Figure 9: GPU utilization timelines — the DNN-computation busy
//! fraction over several training iterations for the no-compression
//! Ring baseline versus the best HiPress configuration.
//!
//! The paper's observation: both peak at ~100%, but Ring's usage is
//! "sparse" (GPUs idle during long gradient transmissions) while
//! HiPress keeps the GPU doing useful work.

use hipress::prelude::*;
use hipress::simevent::{SimTime, Timeline};
use hipress_bench::{banner, Recorder};

/// Renders `iters` iterations of a configuration as an ASCII strip
/// ('#' = GPU busy with DNN compute) and returns the utilization.
fn strip(job: &TrainingJob, iters: usize) -> (String, f64) {
    let r = simulate(job).expect("simulation runs");
    let compute = job.model.spec().compute(job.gpu_class);
    let busy = compute.iteration_ns();
    let iter = r.iteration_ns;
    let mut tl = Timeline::new();
    let track = tl.track("gpu");
    for i in 0..iters as u64 {
        let start = i * iter;
        // Forward+backward occupy the GPU back to back; the sync tail
        // (if any) leaves it idle until the next iteration.
        tl.record(
            track,
            SimTime::from_ns(start),
            SimTime::from_ns(start + busy),
        );
    }
    let horizon = SimTime::from_ns(iter * iters as u64);
    (
        tl.ascii_strip(track, horizon, 72),
        tl.utilization(track, horizon),
    )
}

fn compare(rec: &Recorder, model: DnnModel, alg: Algorithm, strategy: Strategy) {
    let cluster = ClusterConfig::ec2(16);
    let ring = TrainingJob::baseline(model, cluster, Strategy::HorovodRing);
    let hipress = TrainingJob::hipress(model, cluster, strategy).with_algorithm(alg);
    let (ring_strip, ring_util) = strip(&ring, 4);
    let (hip_strip, hip_util) = strip(&hipress, 4);
    println!("\n--- {} ---", model.name());
    println!("Ring     [{ring_strip}] {:.0}% util", ring_util * 100.0);
    println!("HiPress  [{hip_strip}] {:.0}% util", hip_util * 100.0);
    for (system, util) in [("Ring", ring_util), ("HiPress", hip_util)] {
        rec.record(
            "gpu_utilization",
            &[("model", model.name()), ("system", system)],
            util,
            None,
        );
    }
    assert!(
        hip_util >= ring_util,
        "HiPress must keep the GPU at least as busy"
    );
}

fn main() {
    banner(
        "Figure 9",
        "GPU utilization over 4 iterations, Ring vs HiPress ('#'=busy, '.'=idle)",
    );
    let rec = Recorder::new("fig9");
    compare(
        &rec,
        DnnModel::BertLarge,
        Algorithm::OneBit,
        Strategy::CaSyncRing,
    );
    compare(
        &rec,
        DnnModel::Ugatit,
        Algorithm::TernGrad { bitwidth: 2 },
        Strategy::CaSyncPs,
    );
    println!(
        "\n(paper: Ring's utilization drops to zero during transmissions; HiPress stays busy)"
    );
    rec.finish();
}

//! Criterion micro-benchmarks for the compression kernels: encode
//! and decode throughput of every algorithm (optimized, OSS, and
//! CompLL-generated) across gradient sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hipress::compll::algorithms;
use hipress::compress::{Algorithm, Compressor};
use hipress::tensor::synth::{generate, GradientShape};

fn algorithms_under_test() -> Vec<(String, Box<dyn Compressor>)> {
    let mut v: Vec<(String, Box<dyn Compressor>)> = Vec::new();
    for alg in [
        Algorithm::OneBit,
        Algorithm::Tbq { tau: 0.001 },
        Algorithm::TernGrad { bitwidth: 2 },
        Algorithm::Dgc { rate: 0.001 },
        Algorithm::GradDrop { rate: 0.01 },
    ] {
        let c = alg.build().expect("builds");
        v.push((format!("opt/{}", c.name()), c));
        if let Some(oss) = alg.build_oss() {
            v.push((format!("oss/{}", oss.name()), oss));
        }
    }
    // The DSL-compiled algorithms run through the CompLL interpreter;
    // include one as the integration sanity point.
    v.push((
        "compll/onebit".into(),
        Box::new(algorithms::onebit().expect("compiles")),
    ));
    v
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode");
    group.sample_size(10);
    for elems in [1usize << 14, 1 << 18] {
        let grad = generate(elems, GradientShape::default_dnn(), 3);
        for (name, alg) in algorithms_under_test() {
            group.throughput(Throughput::Bytes(grad.byte_size()));
            group.bench_with_input(
                BenchmarkId::new(name, elems * 4),
                grad.as_slice(),
                |b, data| {
                    b.iter(|| alg.encode(std::hint::black_box(data), 1));
                },
            );
        }
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode");
    group.sample_size(10);
    let elems = 1usize << 18;
    let grad = generate(elems, GradientShape::default_dnn(), 3);
    for (name, alg) in algorithms_under_test() {
        let stream = alg.encode(grad.as_slice(), 1);
        group.throughput(Throughput::Bytes(grad.byte_size()));
        group.bench_with_input(BenchmarkId::new(name, elems * 4), &stream, |b, data| {
            b.iter(|| alg.decode(std::hint::black_box(data)).expect("decodes"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode);
criterion_main!(benches);

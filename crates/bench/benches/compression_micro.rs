//! Micro-benchmarks for the compression kernels: encode and decode
//! throughput of every algorithm (optimized, OSS, and
//! CompLL-generated) across gradient sizes, on the plain harness.

use hipress::compll::algorithms;
use hipress::compress::{Algorithm, Compressor};
use hipress::tensor::synth::{generate, GradientShape};
use hipress_bench::banner;
use std::time::Instant;

fn algorithms_under_test() -> Vec<(String, Box<dyn Compressor>)> {
    let mut v: Vec<(String, Box<dyn Compressor>)> = Vec::new();
    for alg in [
        Algorithm::OneBit,
        Algorithm::Tbq { tau: 0.001 },
        Algorithm::TernGrad { bitwidth: 2 },
        Algorithm::Dgc { rate: 0.001 },
        Algorithm::GradDrop { rate: 0.01 },
    ] {
        let c = alg.build().expect("builds");
        v.push((format!("opt/{}", c.name()), c));
        if let Some(oss) = alg.build_oss() {
            v.push((format!("oss/{}", oss.name()), oss));
        }
    }
    // The DSL-compiled algorithms run through the CompLL interpreter;
    // include one as the integration sanity point.
    v.push((
        "compll/onebit".into(),
        Box::new(algorithms::onebit().expect("compiles")),
    ));
    v
}

/// Times `f` over `iters` runs after one warmup, returning the best
/// per-iteration time in seconds (criterion-style minimum, robust to
/// scheduler noise).
fn best_of<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    f(); // Warmup.
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn throughput(bytes: u64, secs: f64) -> f64 {
    bytes as f64 / secs / 1e9
}

fn main() {
    banner(
        "compression_micro",
        "encode/decode throughput per algorithm (GB/s, best of 10)",
    );
    const ITERS: usize = 10;
    println!(
        "\n{:<16} {:>10} {:>12} {:>12}",
        "algorithm", "bytes", "enc GB/s", "dec GB/s"
    );
    for elems in [1usize << 14, 1 << 18] {
        let grad = generate(elems, GradientShape::default_dnn(), 3);
        let data = grad.as_slice();
        println!();
        for (name, alg) in algorithms_under_test() {
            let enc = best_of(ITERS, || {
                std::hint::black_box(alg.encode(std::hint::black_box(data), 1));
            });
            let stream = alg.encode(data, 1);
            let dec = best_of(ITERS, || {
                std::hint::black_box(alg.decode(std::hint::black_box(&stream)).expect("decodes"));
            });
            println!(
                "{:<16} {:>10} {:>12.2} {:>12.2}",
                name,
                grad.byte_size(),
                throughput(grad.byte_size(), enc),
                throughput(grad.byte_size(), dec)
            );
        }
    }
}

//! Wall-clock benchmark of the CaSync-RT thread engine: uncompressed
//! vs. compressed synchronization of a multi-tensor gradient set on
//! real OS threads, per strategy and algorithm.

use hipress::prelude::*;
use hipress::tensor::synth::{generate, GradientShape};
use hipress::tensor::Tensor;
use hipress_bench::banner;

fn grads(nodes: usize, sizes: &[usize]) -> Vec<Vec<Tensor>> {
    (0..nodes)
        .map(|w| {
            sizes
                .iter()
                .enumerate()
                .map(|(g, &n)| {
                    generate(
                        n,
                        GradientShape::Gaussian { std_dev: 1.0 },
                        (w * 7919 + g) as u64,
                    )
                })
                .collect()
        })
        .collect()
}

fn main() {
    banner(
        "runtime_sync",
        "CaSync-RT wall clock: thread backend, real codecs, mpsc fabric",
    );
    let nodes = 4;
    let sizes = [1 << 20, 1 << 18, 1 << 16, 4096];
    let total_mib = sizes.iter().sum::<usize>() as f64 * 4.0 / (1 << 20) as f64;
    let workers = grads(nodes, &sizes);
    println!(
        "\n{nodes} node threads, {} tensors, {total_mib:.1} MiB of gradients per worker\n",
        sizes.len()
    );
    println!(
        "{:>12} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "strategy", "algorithm", "wall", "wire", "savings", "speedup"
    );
    for strategy in [Strategy::CaSyncPs, Strategy::CaSyncRing] {
        let mut baseline: Option<RuntimeReport> = None;
        for alg in [
            Algorithm::None,
            Algorithm::OneBit,
            Algorithm::Tbq { tau: 0.05 },
            Algorithm::TernGrad { bitwidth: 2 },
            Algorithm::Dgc { rate: 0.001 },
        ] {
            let out = HiPress::new(strategy)
                .algorithm(alg)
                .partitions(4)
                .backend(Backend::Threads(nodes))
                .sync(&workers)
                .expect("runtime sync");
            assert!(out.replicas_consistent(), "replica divergence");
            let report = out.report.expect("thread backend reports");
            let speedup = baseline.as_ref().map_or_else(
                || "1.00x".into(),
                |b| format!("{:.2}x", report.speedup_vs(b)),
            );
            println!(
                "{:>12} {:>10} {:>9.1}ms {:>9.2}MiB {:>8.1}x {:>9}",
                format!("{strategy:?}"),
                alg.label(),
                report.wall_ns as f64 / 1e6,
                report.bytes_wire as f64 / (1 << 20) as f64,
                report.compression_savings(),
                speedup
            );
            if alg == Algorithm::None {
                baseline = Some(report);
            }
        }
        println!();
    }
}

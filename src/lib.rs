//! # HiPress-rs
//!
//! A from-scratch Rust reproduction of **"Gradient Compression
//! Supercharged High-Performance Data Parallel DNN Training"**
//! (SOSP 2021): the HiPress framework, built from the **CaSync**
//! compression-aware gradient synchronization architecture and the
//! **CompLL** gradient-compression toolkit.
//!
//! ## Crate map
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`compress`] | `hipress-compress` | onebit, TBQ, TernGrad, DGC, GradDrop (+ OSS baselines, error feedback) |
//! | [`compll`] | `hipress-compll` | the compression DSL: lexer → parser → type checker → interpreter → CUDA emitter |
//! | [`casync`] | `hipress-core` | five-primitive task graphs, strategies (CaSync-PS/Ring, BytePS, Horovod-Ring), coordinator, executor, protocol interpreter |
//! | [`planner`] | `hipress-planner` | selective compression & partitioning (§3.3 cost model, Table 7) |
//! | [`runtime`] | `hipress-runtime` | CaSync-RT: the protocol on real OS threads, cross-validated against the interpreter |
//! | [`lint`] | `hipress-lint` | static plan verification for CaSync task graphs (single-iteration and pipelined) + dataflow analysis for CompLL programs |
//! | [`verify`] | `hipress-verify` | bounded model checking of the CaSync-RT wire/fault-tolerance protocol |
//! | [`metrics`] | `hipress-metrics` | live metric registry, machine-readable snapshots, regression diffs |
//! | [`train`] | `hipress-train` | cluster throughput simulation + real MLP/LSTM data-parallel training |
//! | [`models`] | `hipress-models` | the Table 6 model zoo |
//! | [`sim`](mod@simevent) / [`simnet`] / [`simgpu`] | substrates | discrete-event engine, network fabric, GPU cost models |
//!
//! ## Quickstart
//!
//! ```
//! use hipress::prelude::*;
//!
//! // Train Bert-large with HiPress (CaSync-PS + CompLL-onebit) on a
//! // 4-node EC2-like cluster, and compare against the BytePS
//! // baseline.
//! let cluster = ClusterConfig::ec2(4);
//! let hipress = simulate(&TrainingJob::hipress(
//!     DnnModel::BertLarge,
//!     cluster,
//!     Strategy::CaSyncPs,
//! ))
//! .unwrap();
//! let byteps = simulate(&TrainingJob::baseline(
//!     DnnModel::BertLarge,
//!     cluster.with_tcp(),
//!     Strategy::BytePs,
//! ))
//! .unwrap();
//! assert!(hipress.throughput > byteps.throughput);
//! ```

#![forbid(unsafe_code)]

pub mod sync;

pub use hipress_chaos as chaos;
pub use hipress_compll as compll;
pub use hipress_compress as compress;
pub use hipress_core as casync;
pub use hipress_fabric as fabric;
pub use hipress_lint as lint;
pub use hipress_metrics as metrics;
pub use hipress_models as models;
pub use hipress_obs as obs;
pub use hipress_planner as planner;
pub use hipress_runtime as runtime;
pub use hipress_simevent as simevent;
pub use hipress_simgpu as simgpu;
pub use hipress_simnet as simnet;
pub use hipress_tensor as tensor;
pub use hipress_trace as trace;
pub use hipress_train as train;
pub use hipress_util as util;
pub use hipress_verify as verify;

/// The most common imports for experiments.
pub mod prelude {
    pub use hipress_chaos::FaultPlan;
    pub use hipress_compress::{Algorithm, Compressor, ErrorFeedback};
    pub use hipress_core::{ClusterConfig, ExecConfig, Executor, GradPlan, Strategy};
    pub use hipress_metrics::{MetricsDiff, MetricsSnapshot, Registry, Scope};
    pub use hipress_models::{DnnModel, GpuClass};
    pub use hipress_obs::{Telemetry, WatchConfig};
    pub use hipress_planner::Planner;
    pub use hipress_runtime::{
        DegradePolicy, FaultTolerance, PipelineConfig, ProcessConfig, RuntimeConfig, RuntimeReport,
    };
    pub use hipress_simnet::LinkSpec;
    pub use hipress_trace::{chrome, TraceDiff, Tracer};
    pub use hipress_train::{simulate, simulate_with_tracer, SimResult, TrainingJob};

    pub use crate::sync::{Backend, HiPress, SyncOutcome};
}

//! The `hipress` command-line interface: run throughput simulations,
//! inspect planner decisions, compile CompLL DSL programs, and browse
//! the model zoo without writing Rust.
//!
//! ```text
//! hipress models
//! hipress sim --model VGG19 --nodes 16 --strategy casync-ps --algorithm onebit
//! hipress run --nodes 4 --algorithm onebit --trace rt.json
//! hipress compare --model Bert-large --nodes 16
//! hipress plan --model VGG19 --nodes 16 --strategy casync-ps --algorithm onebit
//! hipress compile path/to/algorithm.dsl
//! hipress trace-diff sim.json rt.json
//! ```

use hipress::compll::{param_values, CompiledAlgorithm};
use hipress::prelude::*;
use hipress::trace::view;
use hipress::trace::Trace;
use hipress::util::units::{fmt_bytes, fmt_duration_ns};
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
        return ExitCode::FAILURE;
    };
    let flags = parse_flags(&args[1..]);
    let result = match cmd.as_str() {
        "models" => cmd_models(),
        "sim" => cmd_sim(&flags),
        "run" => cmd_run(&flags),
        "compare" => cmd_compare(&flags),
        "plan" => cmd_plan(&flags),
        "compile" => cmd_compile(args.get(1).map(String::as_str)),
        "trace-diff" => cmd_trace_diff(
            args.get(1)
                .filter(|a| !a.starts_with("--"))
                .map(String::as_str),
            args.get(2)
                .filter(|a| !a.starts_with("--"))
                .map(String::as_str),
        ),
        "lint" => cmd_lint(
            &flags,
            args.get(1)
                .filter(|a| !a.starts_with("--"))
                .map(String::as_str),
        ),
        "help" | "--help" | "-h" => {
            usage();
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "hipress — compression-aware data parallel DNN training (SOSP'21 reproduction)

USAGE:
  hipress models
      List the Table 6 model zoo.
  hipress sim --model <name> [--nodes N] [--local] [--strategy S] [--algorithm A] [--baseline] [--trace out.json]
      Simulate one training configuration.
  hipress run [--nodes N] [--strategy S] [--algorithm A] [--partitions K] [--elems E1,E2,...] [--seed S] [--trace out.json]
      Synchronize synthetic gradients for real on CaSync-RT (one OS
      thread per node) and print the measured runtime report.
  hipress compare --model <name> [--nodes N] [--local]
      Simulate HiPress against all baselines.
  hipress plan --model <name> [--nodes N] [--strategy S] [--algorithm A]
      Show the selective compression & partitioning plan per gradient.
  hipress compile <file.dsl>
      Compile a CompLL DSL program; print its LoC report and CUDA output.
  hipress lint [file.dsl] [--strategy S] [--algorithm A] [--nodes N]
      Statically verify CaSync task graphs across the strategy x
      algorithm x cluster matrix and dataflow-check the shipped CompLL
      programs; with a file, dataflow-check that program instead.
  hipress trace-diff <a.json> <b.json>
      Compare two exported traces (e.g. a simulated vs a measured run
      of one plan): per-category latency table plus side-by-side
      utilization bars.

FLAGS:
  --model      VGG19 | ResNet50 | UGATIT | UGATIT-light | Bert-base | Bert-large | LSTM | Transformer
  --nodes      cluster size (default 16; `run` defaults to 4)
  --local      use the 1080Ti/56Gbps local-cluster preset (default: EC2 V100/100Gbps)
  --strategy   casync-ps | casync-ring | byteps | ring (default casync-ps)
  --algorithm  none | onebit | tbq | terngrad[:bits] | dgc[:rate] | graddrop[:rate] (default onebit)
  --baseline   run the strategy with its baseline runtime (no CaSync optimizations)
  --trace      export a Chrome trace-event JSON (chrome://tracing, ui.perfetto.dev)
               and print utilization bars + per-category latencies
  --partitions gradient partition count for `run` (default 2)
  --elems      comma-separated gradient element counts for `run` (default 65536,4096,512)
  --seed       stochastic-codec seed for `run` (default 1)"
    );
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--") {
            let takes_value = !matches!(name, "local" | "baseline" | "no-selective");
            if takes_value && i + 1 < args.len() {
                flags.insert(name.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.insert(name.to_string(), "true".to_string());
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    flags
}

fn parse_model(flags: &HashMap<String, String>) -> Result<DnnModel, String> {
    let name = flags
        .get("model")
        .ok_or_else(|| "--model is required".to_string())?;
    DnnModel::by_name(name).ok_or_else(|| format!("unknown model '{name}' (try `hipress models`)"))
}

fn parse_cluster(flags: &HashMap<String, String>) -> Result<ClusterConfig, String> {
    let nodes: usize = flags
        .get("nodes")
        .map(|n| n.parse().map_err(|_| format!("bad --nodes '{n}'")))
        .transpose()?
        .unwrap_or(16);
    Ok(if flags.contains_key("local") {
        ClusterConfig::local(nodes)
    } else {
        ClusterConfig::ec2(nodes)
    })
}

fn parse_strategy(flags: &HashMap<String, String>) -> Result<Strategy, String> {
    match flags.get("strategy").map(String::as_str) {
        None | Some("casync-ps") => Ok(Strategy::CaSyncPs),
        Some("casync-ring") => Ok(Strategy::CaSyncRing),
        Some("byteps") => Ok(Strategy::BytePs),
        Some("ring") => Ok(Strategy::HorovodRing),
        Some(other) => Err(format!("unknown strategy '{other}'")),
    }
}

fn parse_algorithm(flags: &HashMap<String, String>) -> Result<Algorithm, String> {
    let spec = flags
        .get("algorithm")
        .map(String::as_str)
        .unwrap_or("onebit");
    let (name, param) = match spec.split_once(':') {
        Some((n, p)) => (n, Some(p)),
        None => (spec, None),
    };
    match (name, param) {
        ("none", _) => Ok(Algorithm::None),
        ("onebit", _) => Ok(Algorithm::OneBit),
        ("tbq", p) => Ok(Algorithm::Tbq {
            tau: p
                .map(|v| v.parse().map_err(|_| "bad tau"))
                .transpose()?
                .unwrap_or(0.05),
        }),
        ("terngrad", p) => Ok(Algorithm::TernGrad {
            bitwidth: p
                .map(|v| v.parse().map_err(|_| "bad bitwidth"))
                .transpose()?
                .unwrap_or(2),
        }),
        ("dgc", p) => Ok(Algorithm::Dgc {
            rate: p
                .map(|v| v.parse().map_err(|_| "bad rate"))
                .transpose()?
                .unwrap_or(0.001),
        }),
        ("graddrop", p) => Ok(Algorithm::GradDrop {
            rate: p
                .map(|v| v.parse().map_err(|_| "bad rate"))
                .transpose()?
                .unwrap_or(0.01),
        }),
        (other, _) => Err(format!("unknown algorithm '{other}'")),
    }
}

fn cmd_models() -> Result<(), String> {
    println!(
        "{:<14} {:>12} {:>14} {:>11} {:>16}",
        "model", "total", "max gradient", "#gradients", "V100 samples/s"
    );
    for m in DnnModel::all() {
        let spec = m.spec();
        println!(
            "{:<14} {:>12} {:>14} {:>11} {:>16.1}",
            m.name(),
            fmt_bytes(spec.total_bytes()),
            fmt_bytes(spec.max_gradient_bytes()),
            spec.num_gradients(),
            spec.compute(GpuClass::V100).single_gpu_throughput()
        );
    }
    Ok(())
}

fn job_from_flags(flags: &HashMap<String, String>) -> Result<TrainingJob, String> {
    let model = parse_model(flags)?;
    let cluster = parse_cluster(flags)?;
    let strategy = parse_strategy(flags)?;
    let algorithm = parse_algorithm(flags)?;
    let mut job = if flags.contains_key("baseline") || !strategy.is_casync() {
        let cluster = if strategy == Strategy::BytePs && !flags.contains_key("local") {
            cluster.with_tcp()
        } else {
            cluster
        };
        TrainingJob::baseline(model, cluster, strategy)
    } else {
        TrainingJob::hipress(model, cluster, strategy)
    };
    job = job.with_algorithm(algorithm);
    if flags.contains_key("no-selective") {
        job.selective = false;
    }
    Ok(job)
}

fn cmd_sim(flags: &HashMap<String, String>) -> Result<(), String> {
    let job = job_from_flags(flags)?;
    let tracer = flags.get("trace").map(|_| Tracer::new("sim"));
    let r = match &tracer {
        Some(tr) => simulate_with_tracer(&job, tr),
        None => simulate(&job),
    }
    .map_err(|e| e.to_string())?;
    println!("model:              {}", job.model.name());
    println!(
        "cluster:            {} nodes x {} {} ({:.0} Gbps)",
        job.cluster.nodes,
        job.cluster.gpus_per_node,
        job.cluster.gpu.name,
        job.cluster.link.bandwidth.as_gbps()
    );
    println!("strategy:           {}", job.strategy.label());
    println!("algorithm:          {}", job.algorithm.label());
    println!("iteration:          {}", fmt_duration_ns(r.iteration_ns));
    println!("  compute:          {}", fmt_duration_ns(r.compute_ns));
    println!(
        "  sync finish:      {} (from backward start)",
        fmt_duration_ns(r.sync_finish_ns)
    );
    println!("throughput:         {:.0} samples/s", r.throughput);
    println!("scaling efficiency: {:.3}", r.scaling_efficiency);
    println!(
        "communication:      {:.1}% of iteration",
        r.comm_ratio * 100.0
    );
    println!(
        "coordinator:        {} link batches, {} batched kernel launches",
        r.stats.link_flushes, r.stats.comp_batch_launches
    );
    if let (Some(path), Some(tr)) = (flags.get("trace"), tracer) {
        export_trace(&tr.finish(), path)?;
    }
    Ok(())
}

/// Synchronizes synthetic gradients on the thread engine and prints
/// the measured report (plus, with `--trace`, the exported timeline).
fn cmd_run(flags: &HashMap<String, String>) -> Result<(), String> {
    use hipress::tensor::synth::{generate, GradientShape};
    use hipress::tensor::Tensor;
    let nodes: usize = flags
        .get("nodes")
        .map(|n| n.parse().map_err(|_| format!("bad --nodes '{n}'")))
        .transpose()?
        .unwrap_or(4);
    let strategy = parse_strategy(flags)?;
    let algorithm = parse_algorithm(flags)?;
    let partitions: usize = flags
        .get("partitions")
        .map(|k| k.parse().map_err(|_| format!("bad --partitions '{k}'")))
        .transpose()?
        .unwrap_or(2);
    let seed: u64 = flags
        .get("seed")
        .map(|s| s.parse().map_err(|_| format!("bad --seed '{s}'")))
        .transpose()?
        .unwrap_or(1);
    let elems: Vec<usize> = match flags.get("elems") {
        Some(spec) => spec
            .split(',')
            .map(|e| e.trim().parse().map_err(|_| format!("bad --elems '{e}'")))
            .collect::<Result<_, _>>()?,
        None => vec![65536, 4096, 512],
    };
    let grads: Vec<Vec<Tensor>> = (0..nodes)
        .map(|w| {
            elems
                .iter()
                .enumerate()
                .map(|(g, &n)| {
                    generate(
                        n,
                        GradientShape::Gaussian { std_dev: 1.0 },
                        (w * 1000 + g) as u64,
                    )
                })
                .collect()
        })
        .collect();
    let tracer = flags.get("trace").map(|_| Tracer::new("casync-rt"));
    let mut builder = HiPress::new(strategy)
        .algorithm(algorithm)
        .partitions(partitions)
        .seed(seed)
        .backend(Backend::Threads(nodes));
    if let Some(tr) = &tracer {
        builder = builder.trace(tr);
    }
    let out = builder.sync(&grads).map_err(|e| e.to_string())?;
    println!(
        "synchronized {} gradients x {nodes} nodes on CaSync-RT ({} / {})",
        elems.len(),
        strategy.label(),
        algorithm.label()
    );
    println!("replicas consistent: {}", out.replicas_consistent());
    let report = out.report.expect("thread backend always reports");
    println!("{report}");
    if let (Some(path), Some(tr)) = (flags.get("trace"), tracer) {
        let trace = tr.finish();
        // The trace is a second bookkeeping of the same run; deriving
        // the report from it must reproduce the measured one exactly.
        if RuntimeReport::from_trace(&trace) != report {
            return Err("trace-derived report diverged from the measured one".into());
        }
        export_trace(&trace, path)?;
    }
    Ok(())
}

/// Validates, writes, and read-backs a trace; prints the textual
/// utilization and latency views.
fn export_trace(trace: &Trace, path: &str) -> Result<(), String> {
    trace
        .validate()
        .map_err(|empty| format!("trace has empty tracks: {}", empty.join(", ")))?;
    let json = hipress::trace::chrome::export(trace);
    std::fs::write(path, &json).map_err(|e| format!("{path}: {e}"))?;
    // Read back through the crate's own parser: what was written is
    // exactly what a viewer will load.
    let back = hipress::trace::chrome::import(&json).map_err(|e| e.to_string())?;
    if &back != trace {
        return Err(format!("{path}: export/import round trip lost data"));
    }
    println!(
        "\ntrace: {} events on {} tracks -> {path} (load in chrome://tracing or ui.perfetto.dev)",
        trace.len(),
        trace.tracks().len()
    );
    println!("\n{}", view::utilization_bars(trace, 60));
    println!("{}", view::latency_summary(trace));
    Ok(())
}

fn load_trace(path: &str) -> Result<Trace, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    hipress::trace::chrome::import(&json).map_err(|e| format!("{path}: {e}"))
}

/// Compares two exported traces: per-category latency diff plus
/// side-by-side utilization bars on a common time scale.
fn cmd_trace_diff(a: Option<&str>, b: Option<&str>) -> Result<(), String> {
    let usage = "usage: hipress trace-diff <a.json> <b.json>";
    let (pa, pb) = (a.ok_or(usage)?, b.ok_or(usage)?);
    let (ta, tb) = (load_trace(pa)?, load_trace(pb)?);
    let diff = TraceDiff::compare(&ta, &tb);
    println!("{diff}");
    println!("{}", view::side_by_side(&ta, &tb, 60));
    Ok(())
}

fn cmd_compare(flags: &HashMap<String, String>) -> Result<(), String> {
    let model = parse_model(flags)?;
    let cluster = parse_cluster(flags)?;
    println!("{:<36} {:>13} {:>9}", "system", "samples/s", "scaling");
    let alg = parse_algorithm(flags)?;
    let alg = if alg == Algorithm::None {
        Algorithm::OneBit
    } else {
        alg
    };
    let byteps_cluster = if flags.contains_key("local") {
        cluster
    } else {
        cluster.with_tcp()
    };
    let jobs: Vec<(String, TrainingJob)> = vec![
        (
            "BytePS".into(),
            TrainingJob::baseline(model, byteps_cluster, Strategy::BytePs),
        ),
        (
            "Ring".into(),
            TrainingJob::baseline(model, cluster, Strategy::HorovodRing),
        ),
        (
            format!("BytePS(OSS-{})", alg.label()),
            TrainingJob::baseline(model, byteps_cluster, Strategy::BytePs).with_algorithm(alg),
        ),
        (
            format!("HiPress-CaSync-PS({})", alg.label()),
            TrainingJob::hipress(model, cluster, Strategy::CaSyncPs).with_algorithm(alg),
        ),
        (
            format!("HiPress-CaSync-Ring({})", alg.label()),
            TrainingJob::hipress(model, cluster, Strategy::CaSyncRing).with_algorithm(alg),
        ),
    ];
    for (label, job) in jobs {
        let r = simulate(&job).map_err(|e| e.to_string())?;
        println!(
            "{label:<36} {:>13.0} {:>9.2}",
            r.throughput, r.scaling_efficiency
        );
    }
    Ok(())
}

fn cmd_plan(flags: &HashMap<String, String>) -> Result<(), String> {
    let model = parse_model(flags)?;
    let cluster = parse_cluster(flags)?;
    let strategy = parse_strategy(flags)?;
    let algorithm = parse_algorithm(flags)?;
    if algorithm == Algorithm::None {
        return Err("planning needs a compression algorithm".into());
    }
    let planner = Planner::profile(&cluster, strategy, algorithm).map_err(|e| e.to_string())?;
    println!(
        "selective compression threshold: {}",
        fmt_bytes(planner.compression_threshold())
    );
    println!(
        "{:<28} {:>12} {:>10} {:>6}",
        "gradient", "size", "compress", "K"
    );
    let spec = model.spec();
    for layer in &spec.layers {
        let plan = planner.plan_gradient(layer.bytes);
        println!(
            "{:<28} {:>12} {:>10} {:>6}",
            layer.name,
            fmt_bytes(layer.bytes),
            if plan.compress { "yes" } else { "no" },
            plan.partitions
        );
    }
    Ok(())
}

fn cmd_lint(flags: &HashMap<String, String>, file: Option<&str>) -> Result<(), String> {
    use hipress::casync::{CompressionSpec, GradPlan, IterationSpec, SyncGradient};
    use hipress::compll::algorithms as algs;

    // A single DSL file: dataflow-check it and stop.
    if let Some(path) = file {
        let source = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let report = hipress::lint::check_source(&source).map_err(|e| e.to_string())?;
        if !report.is_clean() {
            println!("{}", report.render());
        }
        println!(
            "{path}: {} error(s), {} warning(s)",
            report.error_count(),
            report.warning_count()
        );
        return if report.error_count() == 0 {
            Ok(())
        } else {
            Err(format!("{path}: lint errors"))
        };
    }

    // Plan verification across strategy x algorithm x cluster size x
    // partitioning, over a gradient mix with large, medium, and tiny
    // (zero-chunk-producing) gradients.
    let strategies: Vec<Strategy> = match flags.get("strategy") {
        Some(_) => vec![parse_strategy(flags)?],
        None => Strategy::all().to_vec(),
    };
    let algorithms: Vec<Algorithm> = match flags.get("algorithm") {
        Some(_) => vec![parse_algorithm(flags)?],
        None => vec![
            Algorithm::None,
            Algorithm::OneBit,
            Algorithm::Tbq { tau: 0.05 },
            Algorithm::TernGrad { bitwidth: 2 },
            Algorithm::Dgc { rate: 0.001 },
            Algorithm::GradDrop { rate: 0.01 },
        ],
    };
    let node_counts: Vec<usize> = match flags.get("nodes") {
        Some(n) => vec![n.parse().map_err(|_| format!("bad --nodes '{n}'"))?],
        None => vec![2, 3, 5],
    };
    let sizes: [u64; 3] = [4096, 65536, 260];
    let mut graphs = 0usize;
    let mut errors = 0usize;
    let mut warnings = 0usize;
    for &strat in &strategies {
        for algorithm in &algorithms {
            let compressor = algorithm.build();
            for &nodes in &node_counts {
                for partitions in [1usize, 3] {
                    let cluster = ClusterConfig::ec2(nodes);
                    let iter = IterationSpec {
                        gradients: sizes
                            .iter()
                            .enumerate()
                            .map(|(g, &bytes)| SyncGradient {
                                name: format!("g{g}"),
                                bytes,
                                ready_offset_ns: (sizes.len() - g) as u64 * 1000,
                                plan: GradPlan {
                                    compress: compressor.is_some(),
                                    partitions,
                                },
                            })
                            .collect(),
                        compression: compressor.as_deref().map(CompressionSpec::of),
                    };
                    let graph = strat
                        .build(&cluster, &iter)
                        .map_err(|e| format!("{strat:?}/{nodes} nodes: {e}"))?;
                    let report = hipress::lint::verify_graph(&graph, nodes);
                    graphs += 1;
                    errors += report.error_count();
                    warnings += report.warning_count();
                    if !report.is_clean() {
                        println!(
                            "{} x {} x {nodes} nodes x K={partitions} ({} tasks):",
                            strat.label(),
                            algorithm.label(),
                            graph.len()
                        );
                        println!("{}", report.render());
                    }
                }
            }
        }
    }

    // Dataflow analysis of every shipped CompLL program.
    let programs: Vec<(String, String)> = vec![
        ("onebit".into(), algs::ONEBIT_DSL.to_string()),
        ("tbq".into(), algs::TBQ_DSL.to_string()),
        ("dgc".into(), algs::DGC_DSL.to_string()),
        ("graddrop".into(), algs::GRADDROP_DSL.to_string()),
        ("adacomp".into(), algs::ADACOMP_DSL.to_string()),
        (
            "terngrad:1".into(),
            algs::TERNGRAD_DSL_TEMPLATE.replace("{U}", "uint1"),
        ),
        (
            "terngrad:2".into(),
            algs::TERNGRAD_DSL_TEMPLATE.replace("{U}", "uint2"),
        ),
        (
            "terngrad:4".into(),
            algs::TERNGRAD_DSL_TEMPLATE.replace("{U}", "uint4"),
        ),
        (
            "terngrad:8".into(),
            algs::TERNGRAD_DSL_TEMPLATE.replace("{U}", "uint8"),
        ),
    ];
    for (name, source) in &programs {
        let report = hipress::lint::check_source(source)
            .map_err(|e| format!("shipped program {name}: {e}"))?;
        errors += report.error_count();
        warnings += report.warning_count();
        if !report.is_clean() {
            println!("{name}:");
            println!("{}", report.render());
        }
    }

    println!(
        "linted {graphs} task graphs and {} CompLL programs: {errors} error(s), {warnings} warning(s)",
        programs.len()
    );
    // The builder matrix and shipped programs must be warning-clean,
    // not merely error-free — ci.sh relies on this.
    if errors > 0 || warnings > 0 {
        return Err(format!("{errors} lint error(s), {warnings} warning(s)"));
    }
    Ok(())
}

fn cmd_compile(path: Option<&str>) -> Result<(), String> {
    let path = path.ok_or("usage: hipress compile <file.dsl>")?;
    let source = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let alg =
        CompiledAlgorithm::new("cli", &source, param_values(&[])).map_err(|e| e.to_string())?;
    let report = alg.loc_report();
    println!(
        "compiled OK: {} logic lines, {} udf lines, operators {:?}, integration 0",
        report.logic, report.udf, report.operators
    );
    println!("\n--- generated CUDA ---\n{}", alg.cuda_source());
    Ok(())
}
